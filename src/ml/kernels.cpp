#include "ml/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#define MFW_KERNELS_X86 1
#include <immintrin.h>
#endif

namespace mfw::ml::kernels {

namespace {
std::atomic<bool>& naive_flag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("MFW_ML_NAIVE_KERNELS");
    return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
  }();
  return flag;
}

// One C row tile + one B row tile fit comfortably in a 32 KiB L1 with room
// for the streamed A scalars.
constexpr std::size_t kNBlock = 1024;
}  // namespace

bool use_naive() { return naive_flag().load(std::memory_order_relaxed); }
void set_use_naive(bool on) {
  naive_flag().store(on, std::memory_order_relaxed);
}

void sgemm(std::size_t m, std::size_t n, std::size_t k, const float* a,
           const float* b, float* c, bool accumulate) {
  for (std::size_t n0 = 0; n0 < n; n0 += kNBlock) {
    const std::size_t nw = std::min(kNBlock, n - n0);
    for (std::size_t i = 0; i < m; ++i) {
      float* __restrict crow = c + i * n + n0;
      if (!accumulate) std::memset(crow, 0, nw * sizeof(float));
      const float* arow = a + i * k;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = arow[p];
        const float* __restrict brow = b + p * n + n0;
        for (std::size_t j = 0; j < nw; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

void transpose(std::size_t rows, std::size_t cols, const float* in,
               float* out) {
  // Simple tiled transpose; both matrices here are small enough (K x N of a
  // single convolution) that 32x32 tiles keep each pass in L1.
  constexpr std::size_t kTile = 32;
  for (std::size_t r0 = 0; r0 < rows; r0 += kTile) {
    const std::size_t r1 = std::min(rows, r0 + kTile);
    for (std::size_t c0 = 0; c0 < cols; c0 += kTile) {
      const std::size_t c1 = std::min(cols, c0 + kTile);
      for (std::size_t r = r0; r < r1; ++r)
        for (std::size_t c = c0; c < c1; ++c) out[c * rows + r] = in[r * cols + c];
    }
  }
}

std::size_t im2col_rows(int channels, int kernel) {
  return static_cast<std::size_t>(channels) * kernel * kernel;
}

int conv_out_dim(int in_dim, int kernel, int stride, int pad) {
  return (in_dim + 2 * pad - kernel) / stride + 1;
}

namespace {
// Shared unfold body: the fp32 and int8 patch matrices have identical
// geometry (zero padding is exactly 0 in both domains).
template <typename T>
void im2col_t(const T* input, int channels, int in_h, int in_w, int kernel,
              int stride, int pad, T* col) {
  const int out_h = conv_out_dim(in_h, kernel, stride, pad);
  const int out_w = conv_out_dim(in_w, kernel, stride, pad);
  const std::size_t out_n = static_cast<std::size_t>(out_h) * out_w;
  // "Same" geometry (stride 1, out == in): all in-bounds rows of one
  // (c, kh, kw) patch row are contiguous in both the plane and the patch
  // matrix with equal strides, so they collapse into a single memcpy; the
  // column fringes the copy drags in are re-zeroed after. This replaces
  // out_h tiny per-row memcpys with one large one — the per-call overhead
  // dominated the unfold on RICC's 3x3/s1/p1 stages.
  const bool same_geometry =
      stride == 1 && out_h == in_h && out_w == in_w && pad > 0;
  if (same_geometry) {
    T* row = col;
    for (int c = 0; c < channels; ++c) {
      const T* plane = input + static_cast<std::size_t>(c) * in_h * in_w;
      for (int kh = 0; kh < kernel; ++kh) {
        const int oh0 = std::max(0, pad - kh);           // first in-bounds row
        const int oh1 = std::min(out_h, in_h + pad - kh);  // one past last
        for (int kw = 0; kw < kernel; ++kw, row += out_n) {
          const int iw0 = kw - pad;
          const int lead = std::clamp(-iw0, 0, out_w);
          const int tail_start = std::clamp(in_w - iw0, 0, out_w);
          if (oh0 > 0)
            std::memset(row, 0,
                        static_cast<std::size_t>(oh0) * out_w * sizeof(T));
          if (oh1 < out_h)
            std::memset(row + static_cast<std::size_t>(oh1) * out_w, 0,
                        static_cast<std::size_t>(out_h - oh1) * out_w *
                            sizeof(T));
          if (oh1 > oh0 && tail_start > lead) {
            const std::size_t span =
                static_cast<std::size_t>(oh1 - oh0 - 1) * out_w +
                static_cast<std::size_t>(tail_start - lead);
            std::memcpy(row + static_cast<std::size_t>(oh0) * out_w + lead,
                        plane +
                            static_cast<std::size_t>(oh0 + kh - pad) * in_w +
                            iw0 + lead,
                        span * sizeof(T));
          }
          if (lead > 0 || tail_start < out_w) {
            for (int oh = oh0; oh < oh1; ++oh) {
              T* dst = row + static_cast<std::size_t>(oh) * out_w;
              for (int ow = 0; ow < lead; ++ow) dst[ow] = T{};
              for (int ow = tail_start; ow < out_w; ++ow) dst[ow] = T{};
            }
          }
        }
      }
    }
    return;
  }
  T* row = col;
  for (int c = 0; c < channels; ++c) {
    const T* plane = input + static_cast<std::size_t>(c) * in_h * in_w;
    for (int kh = 0; kh < kernel; ++kh) {
      for (int kw = 0; kw < kernel; ++kw, row += out_n) {
        for (int oh = 0; oh < out_h; ++oh) {
          const int ih = oh * stride - pad + kh;
          T* dst = row + static_cast<std::size_t>(oh) * out_w;
          if (ih < 0 || ih >= in_h) {
            std::memset(dst, 0, static_cast<std::size_t>(out_w) * sizeof(T));
            continue;
          }
          const T* src = plane + static_cast<std::size_t>(ih) * in_w;
          const int iw0 = -pad + kw;
          if (stride == 1) {
            // Contiguous middle segment with zero fringes.
            const int lead = std::clamp(-iw0, 0, out_w);
            const int tail_start = std::clamp(in_w - iw0, 0, out_w);
            for (int ow = 0; ow < lead; ++ow) dst[ow] = T{};
            if (tail_start > lead)
              std::memcpy(dst + lead, src + iw0 + lead,
                          static_cast<std::size_t>(tail_start - lead) *
                              sizeof(T));
            for (int ow = tail_start; ow < out_w; ++ow) dst[ow] = T{};
          } else {
            for (int ow = 0; ow < out_w; ++ow) {
              const int iw = iw0 + ow * stride;
              dst[ow] = (iw < 0 || iw >= in_w) ? T{} : src[iw];
            }
          }
        }
      }
    }
  }
}
}  // namespace

void im2col(const float* input, int channels, int in_h, int in_w, int kernel,
            int stride, int pad, float* col) {
  im2col_t(input, channels, in_h, in_w, kernel, stride, pad, col);
}

void im2col_s8(const std::int8_t* input, int channels, int in_h, int in_w,
               int kernel, int stride, int pad, std::int8_t* col) {
  im2col_t(input, channels, in_h, in_w, kernel, stride, pad, col);
}

// ---------------------------------------------------------- int8 substrate

namespace {

bool detect_avx2() {
#ifdef MFW_KERNELS_X86
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}
const bool kHaveAvx2 = detect_avx2();

#ifdef MFW_KERNELS_X86
// Repacks B's rows into interleaved k-pairs for vpmaddwd: packed row
// pr = p/2 holds (b[p][j], b[p+1][j]) adjacent, so after sign extension to
// int16 each 32-bit lane carries one column's pair and a single madd
// accumulates both k taps. Odd k pads the final pair with 0. 16 columns per
// iteration via byte unpack of the two source rows.
__attribute__((target("avx2"))) void pack_b_pairs_s8_avx2(
    std::size_t n, std::size_t k, const std::int8_t* b, std::int8_t* packed) {
  const std::size_t pairs = (k + 1) / 2;
  const __m128i zero = _mm_setzero_si128();
  for (std::size_t pr = 0; pr < pairs; ++pr) {
    const std::int8_t* b0 = b + (2 * pr) * n;
    const std::int8_t* b1 = (2 * pr + 1 < k) ? b0 + n : nullptr;
    std::int8_t* dst = packed + pr * 2 * n;
    std::size_t j = 0;
    for (; j + 16 <= n; j += 16) {
      const __m128i r0 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(b0 + j));
      const __m128i r1 =
          b1 ? _mm_loadu_si128(reinterpret_cast<const __m128i*>(b1 + j))
             : zero;
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 2 * j),
                       _mm_unpacklo_epi8(r0, r1));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 2 * j + 16),
                       _mm_unpackhi_epi8(r0, r1));
    }
    for (; j < n; ++j) {
      dst[2 * j] = b0[j];
      dst[2 * j + 1] = b1 ? b1[j] : std::int8_t{0};
    }
  }
}

__attribute__((target("avx2"))) void gemm_s8_avx2(
    std::size_t m, std::size_t n, std::size_t k, const std::int8_t* a,
    const std::int8_t* packed, std::int32_t* c) {
  const std::size_t pairs = (k + 1) / 2;
#define MFW_PAIR_BROADCAST(e0, e1)                                          \
  _mm256_set1_epi32(static_cast<int>(                                       \
      (static_cast<std::uint32_t>(static_cast<std::uint16_t>(e1)) << 16) |  \
      static_cast<std::uint16_t>(e0)))
#define MFW_TAP(idx) ((idx) < k ? std::int16_t{arow[(idx)]} : std::int16_t{0})
  for (std::size_t i = 0; i < m; ++i) {
    const std::int8_t* arow = a + i * k;
    std::int32_t* crow = c + i * n;
    std::memset(crow, 0, n * sizeof(std::int32_t));
    std::size_t pr = 0;
    // Two packed rows (four k taps) per pass over C halves the dominant
    // cost — the accumulator row's load/store traffic.
    for (; pr + 2 <= pairs; pr += 2) {
      const std::int16_t a0 = MFW_TAP(2 * pr);
      const std::int16_t a1 = MFW_TAP(2 * pr + 1);
      const std::int16_t a2 = MFW_TAP(2 * pr + 2);
      const std::int16_t a3 = MFW_TAP(2 * pr + 3);
      if (a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0) continue;
      const __m256i av01 = MFW_PAIR_BROADCAST(a0, a1);
      const __m256i av23 = MFW_PAIR_BROADCAST(a2, a3);
      const std::int8_t* prow0 = packed + pr * 2 * n;
      const std::int8_t* prow1 = prow0 + 2 * n;
      std::size_t j = 0;
      for (; j + 16 <= n; j += 16) {
        const __m256i raw0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(prow0 + 2 * j));
        const __m256i raw1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(prow1 + 2 * j));
        __m256i c0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(crow + j));
        __m256i c1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(crow + j + 8));
        c0 = _mm256_add_epi32(
            c0, _mm256_madd_epi16(
                    _mm256_cvtepi8_epi16(_mm256_castsi256_si128(raw0)), av01));
        c1 = _mm256_add_epi32(
            c1,
            _mm256_madd_epi16(
                _mm256_cvtepi8_epi16(_mm256_extracti128_si256(raw0, 1)),
                av01));
        c0 = _mm256_add_epi32(
            c0, _mm256_madd_epi16(
                    _mm256_cvtepi8_epi16(_mm256_castsi256_si128(raw1)), av23));
        c1 = _mm256_add_epi32(
            c1,
            _mm256_madd_epi16(
                _mm256_cvtepi8_epi16(_mm256_extracti128_si256(raw1, 1)),
                av23));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow + j), c0);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow + j + 8), c1);
      }
      for (; j < n; ++j)
        crow[j] += static_cast<std::int32_t>(a0) * prow0[2 * j] +
                   static_cast<std::int32_t>(a1) * prow0[2 * j + 1] +
                   static_cast<std::int32_t>(a2) * prow1[2 * j] +
                   static_cast<std::int32_t>(a3) * prow1[2 * j + 1];
    }
    for (; pr < pairs; ++pr) {
      const std::int16_t a0 = MFW_TAP(2 * pr);
      const std::int16_t a1 = MFW_TAP(2 * pr + 1);
      if (a0 == 0 && a1 == 0) continue;  // zero weights contribute nothing
      const __m256i av = MFW_PAIR_BROADCAST(a0, a1);
      const std::int8_t* prow = packed + pr * 2 * n;
      std::size_t j = 0;
      for (; j + 16 <= n; j += 16) {
        const __m256i raw = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(prow + 2 * j));
        const __m256i lo =
            _mm256_cvtepi8_epi16(_mm256_castsi256_si128(raw));
        const __m256i hi =
            _mm256_cvtepi8_epi16(_mm256_extracti128_si256(raw, 1));
        __m256i c0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(crow + j));
        __m256i c1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(crow + j + 8));
        c0 = _mm256_add_epi32(c0, _mm256_madd_epi16(lo, av));
        c1 = _mm256_add_epi32(c1, _mm256_madd_epi16(hi, av));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow + j), c0);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow + j + 8), c1);
      }
      for (; j < n; ++j)
        crow[j] += static_cast<std::int32_t>(a0) * prow[2 * j] +
                   static_cast<std::int32_t>(a1) * prow[2 * j + 1];
    }
  }
}
#undef MFW_PAIR_BROADCAST
#undef MFW_TAP
// Vectorized symmetric quantization: 32 floats per iteration. vcvtps2dq
// rounds per MXCSR (nearest-even by default), the same mode lrintf uses in
// the scalar tail, so both produce identical int8 for any value the clamp
// keeps (packs saturate to [-128,127]; the explicit ±127 clamp runs first).
__attribute__((target("avx2"))) void quantize_s8_avx2(const float* x,
                                                      std::size_t n, float inv,
                                                      std::int8_t* q) {
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256i lo = _mm256_set1_epi32(-127);
  const __m256i hi = _mm256_set1_epi32(127);
  // packs interleaves 128-bit lanes; this permutation restores element order.
  const __m256i order = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i q0 = _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(x + i), vinv));
    __m256i q1 =
        _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(x + i + 8), vinv));
    __m256i q2 =
        _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(x + i + 16), vinv));
    __m256i q3 =
        _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(x + i + 24), vinv));
    q0 = _mm256_min_epi32(_mm256_max_epi32(q0, lo), hi);
    q1 = _mm256_min_epi32(_mm256_max_epi32(q1, lo), hi);
    q2 = _mm256_min_epi32(_mm256_max_epi32(q2, lo), hi);
    q3 = _mm256_min_epi32(_mm256_max_epi32(q3, lo), hi);
    const __m256i p16a = _mm256_packs_epi32(q0, q1);
    const __m256i p16b = _mm256_packs_epi32(q2, q3);
    const __m256i p8 =
        _mm256_permutevar8x32_epi32(_mm256_packs_epi16(p16a, p16b), order);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(q + i), p8);
  }
  for (; i < n; ++i) {
    long v = std::lrintf(x[i] * inv);
    if (v > 127) v = 127;
    if (v < -127) v = -127;
    q[i] = static_cast<std::int8_t>(v);
  }
}

__attribute__((target("avx2"))) void dequant_bias_leaky_s32_avx2(
    const std::int32_t* acc, std::size_t n, float scale, float bias,
    float slope, float* out) {
  const __m256 vscale = _mm256_set1_ps(scale);
  const __m256 vbias = _mm256_set1_ps(bias);
  const __m256 vslope = _mm256_set1_ps(slope);
  const __m256 zero = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_add_ps(
        _mm256_mul_ps(_mm256_cvtepi32_ps(_mm256_loadu_si256(
                          reinterpret_cast<const __m256i*>(acc + i))),
                      vscale),
        vbias);
    const __m256 neg = _mm256_mul_ps(v, vslope);
    const __m256 mask = _mm256_cmp_ps(v, zero, _CMP_LT_OQ);
    _mm256_storeu_ps(out + i, _mm256_blendv_ps(v, neg, mask));
  }
  for (; i < n; ++i) {
    const float v = static_cast<float>(acc[i]) * scale + bias;
    out[i] = v < 0.0f ? v * slope : v;
  }
}
#endif  // MFW_KERNELS_X86

}  // namespace

bool gemm_s8_vectorized() { return kHaveAvx2; }

void quantize_s8(const float* x, std::size_t n, float scale, std::int8_t* q) {
  const float inv = 1.0f / scale;
#ifdef MFW_KERNELS_X86
  if (kHaveAvx2) {
    quantize_s8_avx2(x, n, inv, q);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    long v = std::lrintf(x[i] * inv);
    if (v > 127) v = 127;
    if (v < -127) v = -127;
    q[i] = static_cast<std::int8_t>(v);
  }
}

void dequant_bias_leaky_s32(const std::int32_t* acc, std::size_t n,
                            float scale, float bias, float slope, float* out) {
#ifdef MFW_KERNELS_X86
  if (kHaveAvx2) {
    dequant_bias_leaky_s32_avx2(acc, n, scale, bias, slope, out);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    const float v = static_cast<float>(acc[i]) * scale + bias;
    out[i] = v < 0.0f ? v * slope : v;
  }
}

void dequantize_s8(const std::int8_t* q, std::size_t n, float scale,
                   float* x) {
  for (std::size_t i = 0; i < n; ++i)
    x[i] = static_cast<float>(q[i]) * scale;
}

void gemm_s8(std::size_t m, std::size_t n, std::size_t k,
             const std::int8_t* a, const std::int8_t* b, std::int32_t* c) {
#ifdef MFW_KERNELS_X86
  if (kHaveAvx2 && n >= 16 && k >= 2) {
    // B is repacked once per call into a per-thread workspace (O(k*n), the
    // same order as the im2col that produced it) and reused for all m rows.
    thread_local std::vector<std::int8_t> packed;
    const std::size_t pairs = (k + 1) / 2;
    packed.resize(pairs * 2 * n);
    pack_b_pairs_s8_avx2(n, k, b, packed.data());
    gemm_s8_avx2(m, n, k, a, packed.data(), c);
    return;
  }
#endif
  // Scalar fallback: blocked like sgemm; integer arithmetic is exact, so
  // this produces the same values as the vector path.
  for (std::size_t n0 = 0; n0 < n; n0 += kNBlock) {
    const std::size_t nw = std::min(kNBlock, n - n0);
    for (std::size_t i = 0; i < m; ++i) {
      std::int32_t* __restrict crow = c + i * n + n0;
      std::memset(crow, 0, nw * sizeof(std::int32_t));
      const std::int8_t* arow = a + i * k;
      for (std::size_t p = 0; p < k; ++p) {
        const std::int32_t av = arow[p];
        if (av == 0) continue;
        const std::int8_t* __restrict brow = b + p * n + n0;
        for (std::size_t j = 0; j < nw; ++j)
          crow[j] += av * static_cast<std::int32_t>(brow[j]);
      }
    }
  }
}

// ----------------------------------------------------------- fused fp32 op

void conv2d_bias_leaky_f32(const float* input, int in_c, int in_h, int in_w,
                           const float* weight, const float* bias, int out_c,
                           int kernel, int stride, int pad, float slope,
                           float* col, float* out) {
  const int out_h = conv_out_dim(in_h, kernel, stride, pad);
  const int out_w = conv_out_dim(in_w, kernel, stride, pad);
  const std::size_t out_n = static_cast<std::size_t>(out_h) * out_w;
  const std::size_t patch = im2col_rows(in_c, kernel);
  im2col(input, in_c, in_h, in_w, kernel, stride, pad, col);
  for (int oc = 0; oc < out_c; ++oc) {
    const float b = bias[oc];
    float* orow = out + static_cast<std::size_t>(oc) * out_n;
    for (std::size_t i = 0; i < out_n; ++i) orow[i] = b;
  }
  sgemm(static_cast<std::size_t>(out_c), out_n, patch, weight, col, out,
        /*accumulate=*/true);
  const std::size_t total = static_cast<std::size_t>(out_c) * out_n;
  for (std::size_t i = 0; i < total; ++i)
    if (out[i] < 0.0f) out[i] *= slope;
}

void col2im(const float* col, int channels, int in_h, int in_w, int kernel,
            int stride, int pad, float* grad_input) {
  const int out_h = conv_out_dim(in_h, kernel, stride, pad);
  const int out_w = conv_out_dim(in_w, kernel, stride, pad);
  const std::size_t out_n = static_cast<std::size_t>(out_h) * out_w;
  const float* row = col;
  for (int c = 0; c < channels; ++c) {
    float* plane = grad_input + static_cast<std::size_t>(c) * in_h * in_w;
    for (int kh = 0; kh < kernel; ++kh) {
      for (int kw = 0; kw < kernel; ++kw, row += out_n) {
        for (int oh = 0; oh < out_h; ++oh) {
          const int ih = oh * stride - pad + kh;
          if (ih < 0 || ih >= in_h) continue;
          const float* src = row + static_cast<std::size_t>(oh) * out_w;
          float* dst = plane + static_cast<std::size_t>(ih) * in_w;
          for (int ow = 0; ow < out_w; ++ow) {
            const int iw = ow * stride - pad + kw;
            if (iw < 0 || iw >= in_w) continue;
            dst[iw] += src[ow];
          }
        }
      }
    }
  }
}

}  // namespace mfw::ml::kernels
