#include "ml/ricc.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "ml/kernels.hpp"
#include "ml/loss.hpp"
#include "ml/optim.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace mfw::ml {

namespace {
constexpr const char* kComponent = "ricc";

Tensor tensor_from_dataset(const storage::Dataset& ds) {
  const auto values = ds.as_f32();
  std::vector<int> shape;
  shape.reserve(ds.shape.size());
  for (auto dim : ds.shape) shape.push_back(static_cast<int>(dim));
  return Tensor(std::move(shape), std::vector<float>(values.begin(), values.end()));
}

storage::Dataset dataset_from_tensor(std::string name, const Tensor& t) {
  std::vector<std::uint64_t> shape;
  shape.reserve(t.rank());
  for (auto dim : t.shape()) shape.push_back(static_cast<std::uint64_t>(dim));
  return storage::Dataset::f32(std::move(name), std::move(shape), t.span());
}
}  // namespace

void RiccConfig::validate() const {
  if (tile_size <= 0 || channels <= 0 || base_channels <= 0 ||
      latent_dim <= 0 || num_classes <= 0 || conv_blocks <= 0)
    throw std::invalid_argument("RiccConfig: all dimensions must be positive");
  if (tile_size % (1 << conv_blocks) != 0)
    throw std::invalid_argument(
        "RiccConfig: tile_size must be divisible by 2^conv_blocks");
}

int RiccConfig::top_channels() const {
  return base_channels << (conv_blocks - 1);
}

int RiccConfig::top_size() const { return tile_size >> conv_blocks; }

RiccModel::RiccModel(const RiccConfig& config) : config_(config) {
  config_.validate();
  util::Rng rng(config_.seed);
  // Encoder: conv_blocks x [conv 3x3 (stride 1, pad 1), LeakyReLU, pool 2x2],
  // then flatten + dense to the latent.
  int ch = config_.channels;
  int out_ch = config_.base_channels;
  for (int b = 0; b < config_.conv_blocks; ++b) {
    encoder_.emplace<Conv2d>(ch, out_ch, 3, 1, 1, rng);
    encoder_.emplace<LeakyReLU>();
    encoder_.emplace<MaxPool2x2>();
    ch = out_ch;
    if (b + 1 < config_.conv_blocks) out_ch *= 2;
  }
  const int top = config_.top_size();
  encoder_.emplace<Flatten>();
  encoder_.emplace<Dense>(ch * top * top, config_.latent_dim, rng);

  // Decoder mirrors the encoder with nearest-neighbour upsampling.
  decoder_.emplace<Dense>(config_.latent_dim, ch * top * top, rng);
  decoder_.emplace<LeakyReLU>();
  decoder_.emplace<Reshape>(std::vector<int>{ch, top, top});
  for (int b = 0; b < config_.conv_blocks; ++b) {
    const bool last = b + 1 == config_.conv_blocks;
    const int next_ch = last ? config_.channels : ch / 2;
    decoder_.emplace<UpsampleNearest2x>();
    decoder_.emplace<Conv2d>(ch, next_ch, 3, 1, 1, rng);
    if (!last) decoder_.emplace<LeakyReLU>();
    ch = next_ch;
  }
}

RiccModel::EncodePath RiccModel::parse_encode_path(std::string_view name) {
  if (name == "layers") return EncodePath::kLayers;
  if (name == "fused") return EncodePath::kFused;
  if (name == "int8") return EncodePath::kInt8;
  throw std::invalid_argument("unknown encode path '" + std::string(name) +
                              "' (expected layers|fused|int8)");
}

RiccModel::EncodePath RiccModel::active_path() const {
  // The naive-kernel oracle compares against the original layer path; the
  // fused/int8 plans would bypass it, so they yield while it is active.
  if (kernels::use_naive()) return EncodePath::kLayers;
  return encode_path_;
}

void RiccModel::set_encode_path(EncodePath path) {
  if (path == EncodePath::kFused) {
    fused_ = FusedEncoder::build(encoder_, config_.tile_size);
  } else if (path == EncodePath::kInt8 && !int8_ready()) {
    throw std::logic_error(
        "RiccModel::set_encode_path(kInt8): calibrate_int8() first");
  }
  encode_path_ = path;
}

void RiccModel::calibrate_int8(std::span<const Tensor> sample) {
  int8_ = QuantizedEncoder::build(encoder_, config_.tile_size, sample);
}

Tensor RiccModel::encode(const Tensor& tile) {
  if (auto& metrics = obs::MetricsRegistry::instance(); metrics.enabled())
    metrics.counter_add("mfw.ml.encode_tiles_total", 1.0);
  switch (active_path()) {
    case EncodePath::kFused:
      return fused_->encode(tile, scratch_);
    case EncodePath::kInt8:
      return int8_->encode(tile, scratch_);
    case EncodePath::kLayers:
      break;
  }
  return encoder_.forward(tile);
}

std::vector<Tensor> RiccModel::encode_batch(std::span<const Tensor> tiles,
                                            util::ThreadPool* pool) {
  std::vector<Tensor> out(tiles.size());
  obs::SpanId span;
  if (auto& rec = obs::TraceRecorder::instance(); rec.enabled())
    span = rec.begin_span("ml/encode", "ml", "ml.encode",
                          {{"tiles", std::to_string(tiles.size())}});
  const EncodePath path = active_path();
  auto encode_range = [&](std::size_t begin, std::size_t end,
                          EncodeScratch& scratch) {
    switch (path) {
      case EncodePath::kFused:
        for (std::size_t i = begin; i < end; ++i)
          out[i] = fused_->encode(tiles[i], scratch);
        break;
      case EncodePath::kInt8:
        for (std::size_t i = begin; i < end; ++i)
          out[i] = int8_->encode(tiles[i], scratch);
        break;
      case EncodePath::kLayers:
        break;  // handled below (needs a Sequential, not scratch)
    }
  };
  if (pool == nullptr || tiles.size() < 2) {
    if (path == EncodePath::kLayers) {
      for (std::size_t i = 0; i < tiles.size(); ++i)
        out[i] = encoder_.forward(tiles[i]);
    } else {
      encode_range(0, tiles.size(), scratch_);
    }
  } else {
    // Every tile writes only its own slot, so the output is bitwise
    // independent of the thread count. The layer path needs one encoder
    // replica per dispatched chunk (forward mutates layer caches); the
    // fused/int8 plans are const and shared, with per-chunk scratch.
    const std::size_t chunk = std::max<std::size_t>(
        1, (tiles.size() + pool->thread_count()) / (pool->thread_count() + 1));
    util::parallel_for(*pool, tiles.size(), chunk,
                       [&](std::size_t begin, std::size_t end) {
                         if (path == EncodePath::kLayers) {
                           Sequential replica = encoder_.clone_net();
                           for (std::size_t i = begin; i < end; ++i)
                             out[i] = replica.forward(tiles[i]);
                         } else {
                           EncodeScratch scratch;
                           encode_range(begin, end, scratch);
                         }
                       });
  }
  if (auto& metrics = obs::MetricsRegistry::instance(); metrics.enabled())
    metrics.counter_add("mfw.ml.encode_tiles_total",
                        static_cast<double>(tiles.size()));
  obs::TraceRecorder::instance().end_span(span);
  return out;
}

Tensor RiccModel::reconstruct(const Tensor& tile) {
  return decoder_.forward(encoder_.forward(tile));
}

void RiccModel::set_centroids(Tensor centroids) {
  if (centroids.rank() != 2 || centroids.dim(0) != config_.num_classes ||
      centroids.dim(1) != config_.latent_dim)
    throw std::invalid_argument("centroids must be [num_classes][latent_dim]");
  centroids_ = std::move(centroids);
}

int RiccModel::predict(const Tensor& tile) {
  if (!has_centroids())
    throw std::logic_error("RiccModel::predict requires fitted centroids");
  const Tensor z = encode(tile);
  return nearest_centroid(centroids_, z.span());
}

storage::HdflFile RiccModel::save() {
  storage::HdflFile file;
  auto& attrs = file.attrs();
  attrs["model"] = "ricc";
  attrs["tile_size"] = std::to_string(config_.tile_size);
  attrs["channels"] = std::to_string(config_.channels);
  attrs["base_channels"] = std::to_string(config_.base_channels);
  attrs["conv_blocks"] = std::to_string(config_.conv_blocks);
  attrs["latent_dim"] = std::to_string(config_.latent_dim);
  attrs["num_classes"] = std::to_string(config_.num_classes);
  attrs["seed"] = std::to_string(config_.seed);
  int index = 0;
  for (Param* p : encoder_.params())
    file.add(dataset_from_tensor("encoder/" + std::to_string(index++) + "/" +
                                     p->name,
                                 p->value));
  index = 0;
  for (Param* p : decoder_.params())
    file.add(dataset_from_tensor("decoder/" + std::to_string(index++) + "/" +
                                     p->name,
                                 p->value));
  if (has_centroids()) file.add(dataset_from_tensor("centroids", centroids_));
  return file;
}

RiccModel RiccModel::load(const storage::HdflFile& file) {
  const auto& attrs = file.attrs();
  auto get = [&](const char* key) {
    const auto it = attrs.find(key);
    if (it == attrs.end())
      throw storage::FormatError(std::string("ricc model missing attr ") + key);
    return std::stoll(it->second);
  };
  RiccConfig config;
  config.tile_size = static_cast<int>(get("tile_size"));
  config.channels = static_cast<int>(get("channels"));
  config.base_channels = static_cast<int>(get("base_channels"));
  config.conv_blocks = static_cast<int>(get("conv_blocks"));
  config.latent_dim = static_cast<int>(get("latent_dim"));
  config.num_classes = static_cast<int>(get("num_classes"));
  config.seed = static_cast<std::uint64_t>(get("seed"));
  RiccModel model(config);
  auto load_params = [&](Sequential& net, const std::string& prefix) {
    int index = 0;
    for (Param* p : net.params()) {
      const std::string name =
          prefix + "/" + std::to_string(index++) + "/" + p->name;
      const Tensor stored = tensor_from_dataset(file.dataset(name));
      if (stored.shape() != p->value.shape())
        throw storage::FormatError("ricc model: shape mismatch in " + name);
      p->value = stored;
    }
  };
  load_params(model.encoder_, "encoder");
  load_params(model.decoder_, "decoder");
  if (file.has("centroids"))
    model.set_centroids(tensor_from_dataset(file.dataset("centroids")));
  return model;
}

RiccTrainReport train_autoencoder(RiccModel& model,
                                  std::span<const Tensor> tiles,
                                  const RiccTrainOptions& options) {
  if (tiles.empty())
    throw std::invalid_argument("train_autoencoder needs tiles");
  if (options.epochs <= 0 || options.batch_size <= 0)
    throw std::invalid_argument("train_autoencoder: bad options");
  RiccTrainReport report;
  report.invariance_score_before = rotation_invariance_score(model, tiles);

  auto params = model.encoder().params();
  for (Param* p : model.decoder().params()) params.push_back(p);
  Adam optimizer(params, options.learning_rate);
  util::Rng shuffle_rng(model.config().seed ^ 0xdecafULL);

  std::vector<std::size_t> order(tiles.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  // Parallel path: each mini-batch is cut into fixed kGradChunk-sample
  // chunks regardless of thread count, each chunk runs forward/backward on
  // its own model replica, and chunk gradients/losses are reduced in chunk
  // index order — so the result is a function of the data only, not of how
  // chunks land on threads.
  constexpr std::size_t kGradChunk = 4;
  struct ChunkOut {
    std::vector<Tensor> grads;  // one per param, in `params` order
    double recon = 0.0;
    double inv = 0.0;
  };
  auto run_chunk = [&](std::span<const std::size_t> sample_ids, ChunkOut& out) {
    Sequential enc = model.encoder().clone_net();
    Sequential dec = model.decoder().clone_net();
    auto rep_params = enc.params();
    for (Param* p : dec.params()) rep_params.push_back(p);
    for (Param* p : rep_params) {
      float* g = p->grad.data();
      std::fill(g, g + p->grad.span().size(), 0.0f);
    }
    for (const std::size_t sample : sample_ids) {
      const Tensor& x = tiles[sample];
      const Tensor z = enc.forward(x);
      const Tensor y = dec.forward(z);
      const LossGrad rec = mse_loss(y, x);
      out.recon += rec.loss;
      const Tensor grad_z = dec.backward(rec.grad);
      enc.backward(grad_z);
      for (int r = 1; r <= options.rotations; ++r) {
        const Tensor zr = enc.forward(rotate90(x, r));
        const LossGrad inv = latent_consistency_loss(zr, z);
        out.inv += inv.loss;
        Tensor scaled = inv.grad;
        scaled *= options.lambda_invariance;
        enc.backward(scaled);
      }
    }
    out.grads.reserve(rep_params.size());
    for (Param* p : rep_params) out.grads.push_back(std::move(p->grad));
  };

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    obs::SpanId epoch_span;
    if (auto& rec = obs::TraceRecorder::instance(); rec.enabled())
      epoch_span = rec.begin_span("ml/train", "ml", "ml.train.epoch",
                                  {{"epoch", std::to_string(epoch)}});
    // Fisher-Yates shuffle for stochasticity.
    for (std::size_t i = order.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          shuffle_rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(order[i - 1], order[j]);
    }
    double recon_sum = 0.0;
    double inv_sum = 0.0;
    if (options.pool == nullptr) {
      // Sample-sequential path: the original (seed) numerics, exactly.
      std::size_t in_batch = 0;
      for (std::size_t idx = 0; idx < order.size(); ++idx) {
        const Tensor& x = tiles[order[idx]];
        // Reconstruction pass.
        const Tensor z = model.encoder().forward(x);
        const Tensor y = model.decoder().forward(z);
        const LossGrad rec = mse_loss(y, x);
        recon_sum += rec.loss;
        const Tensor grad_z = model.decoder().backward(rec.grad);
        model.encoder().backward(grad_z);
        // Rotation-consistency passes (stop-gradient on z).
        for (int r = 1; r <= options.rotations; ++r) {
          const Tensor zr = model.encoder().forward(rotate90(x, r));
          const LossGrad inv = latent_consistency_loss(zr, z);
          inv_sum += inv.loss;
          Tensor scaled = inv.grad;
          scaled *= options.lambda_invariance;
          model.encoder().backward(scaled);
        }
        if (++in_batch == static_cast<std::size_t>(options.batch_size) ||
            idx + 1 == order.size()) {
          optimizer.step(in_batch);
          in_batch = 0;
        }
      }
    } else {
      for (std::size_t b0 = 0; b0 < order.size();
           b0 += static_cast<std::size_t>(options.batch_size)) {
        const std::size_t b1 =
            std::min(order.size(),
                     b0 + static_cast<std::size_t>(options.batch_size));
        const std::size_t batch_n = b1 - b0;
        const std::size_t chunks = (batch_n + kGradChunk - 1) / kGradChunk;
        std::vector<ChunkOut> outs(chunks);
        util::parallel_for(
            *options.pool, batch_n, kGradChunk,
            [&](std::size_t begin, std::size_t end) {
              run_chunk(std::span<const std::size_t>(order)
                            .subspan(b0 + begin, end - begin),
                        outs[begin / kGradChunk]);
            });
        // Ordered reduction into the live model's grad accumulators.
        for (const ChunkOut& out : outs) {
          recon_sum += out.recon;
          inv_sum += out.inv;
          for (std::size_t pi = 0; pi < params.size(); ++pi) {
            float* dst = params[pi]->grad.data();
            const float* src = out.grads[pi].data();
            const std::size_t sz = params[pi]->grad.span().size();
            for (std::size_t e = 0; e < sz; ++e) dst[e] += src[e];
          }
        }
        optimizer.step(batch_n);
      }
    }
    const auto n = static_cast<double>(tiles.size());
    report.epoch_reconstruction_loss.push_back(static_cast<float>(recon_sum / n));
    report.epoch_invariance_loss.push_back(static_cast<float>(
        options.rotations ? inv_sum / (n * options.rotations) : 0.0));
    MFW_DEBUG(kComponent, "epoch ", epoch, " recon=", recon_sum / n,
              " inv=", inv_sum / n);
    obs::TraceRecorder::instance().end_span(
        epoch_span, {{"recon_loss", std::to_string(recon_sum / n)},
                     {"inv_loss", std::to_string(inv_sum / n)}});
  }
  report.final_loss = report.epoch_reconstruction_loss.back();
  report.invariance_score_after = rotation_invariance_score(model, tiles);
  return report;
}

ClusterResult fit_centroids(RiccModel& model, std::span<const Tensor> tiles,
                            util::ThreadPool* pool) {
  if (tiles.size() < static_cast<std::size_t>(model.config().num_classes))
    throw std::invalid_argument("fit_centroids needs >= num_classes tiles");
  const auto d = static_cast<std::size_t>(model.config().latent_dim);
  const std::vector<Tensor> zs = model.encode_batch(tiles, pool);
  std::vector<float> latents(tiles.size() * d);
  for (std::size_t i = 0; i < tiles.size(); ++i)
    std::memcpy(latents.data() + i * d, zs[i].data(), d * sizeof(float));
  ClusterResult result = agglomerative_ward(latents, tiles.size(), d,
                                            model.config().num_classes, pool);
  model.set_centroids(result.centroids);
  return result;
}

double rotation_invariance_score(RiccModel& model,
                                 std::span<const Tensor> tiles) {
  if (tiles.empty()) return 0.0;
  const std::size_t n = std::min<std::size_t>(tiles.size(), 64);
  std::vector<Tensor> latents;
  latents.reserve(n);
  double rotation_disp = 0.0;
  std::size_t rotation_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    latents.push_back(model.encode(tiles[i]));
    for (int r = 1; r <= 3; ++r) {
      const Tensor zr = model.encode(rotate90(tiles[i], r));
      rotation_disp +=
          std::sqrt(squared_distance(zr.span(), latents.back().span()));
      ++rotation_count;
    }
  }
  double pairwise = 0.0;
  std::size_t pair_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      pairwise += std::sqrt(squared_distance(latents[i].span(), latents[j].span()));
      ++pair_count;
    }
  }
  if (pair_count == 0 || pairwise <= 0.0) return 0.0;
  const double mean_rot = rotation_disp / static_cast<double>(rotation_count);
  const double mean_pair = pairwise / static_cast<double>(pair_count);
  return mean_rot / mean_pair;
}

RiccTrainReport train_ricc(RiccModel& model, std::span<const Tensor> tiles,
                           const RiccTrainOptions& options) {
  RiccTrainReport report = train_autoencoder(model, tiles, options);
  const ClusterResult clusters = fit_centroids(model, tiles, options.pool);
  const auto d = static_cast<std::size_t>(model.config().latent_dim);
  const std::vector<Tensor> zs = model.encode_batch(tiles, options.pool);
  std::vector<float> latents(tiles.size() * d);
  for (std::size_t i = 0; i < tiles.size(); ++i)
    std::memcpy(latents.data() + i * d, zs[i].data(), d * sizeof(float));
  report.silhouette = silhouette(latents, tiles.size(), d, clusters.labels,
                                 clusters.k);
  return report;
}

}  // namespace mfw::ml
