// RICC: Rotationally Invariant Cloud Clustering (Kurihana et al., TGRS 2021)
// and the AICCA atlas built on it (Remote Sensing 2022).
//
// The model is a convolutional autoencoder whose encoder is trained to be
// invariant to tile rotation, plus a set of cluster centroids (42 for AICCA)
// in latent space obtained by Ward agglomerative clustering of encoded
// training tiles. Inference = encode tile -> nearest centroid -> class id.
//
// Training objective (per tile x):
//     L = MSE(D(E(x)), x) + lambda * (1/3) sum_{r=1..3} ||E(rot_r x) - sg(E(x))||^2 / latent_dim
// where sg() is stop-gradient: the un-rotated latent acts as the consistency
// target. This is a simplification of the paper's transform-invariant loss
// that preserves its effect (rotated copies of a tile map to nearby
// latents) while keeping the layer cache machinery single-pass; the
// `rotation_invariance_score` metric verifies the effect directly and is
// exercised by tests and the ricc_training example.
#pragma once

#include <optional>
#include <span>
#include <string_view>

#include "ml/cluster.hpp"
#include "ml/layers.hpp"
#include "ml/quant.hpp"
#include "storage/hdfl.hpp"

namespace mfw::ml {

struct RiccConfig {
  int tile_size = 32;    // H == W; must be divisible by 2^conv_blocks
  int channels = 6;      // input channels (the 6 RICC bands)
  int base_channels = 8; // channels after the first conv block
  int conv_blocks = 3;   // each block halves resolution and doubles channels
  int latent_dim = 32;
  int num_classes = 42;  // AICCA's class count
  std::uint64_t seed = 7;

  void validate() const;
  /// Channels after the last conv block.
  int top_channels() const;
  /// Spatial size after the last conv block.
  int top_size() const;
};

/// Encoder + decoder + centroids. Each inference worker owns a replica
/// (forward passes mutate layer caches).
class RiccModel {
 public:
  explicit RiccModel(const RiccConfig& config);

  const RiccConfig& config() const { return config_; }
  Sequential& encoder() { return encoder_; }
  Sequential& decoder() { return decoder_; }

  /// Encodes a [channels][tile][tile] tile to a [latent_dim] vector.
  Tensor encode(const Tensor& tile);
  /// Encodes many tiles. With a pool, tiles are fanned out in fixed-size
  /// chunks, each run on its own encoder replica (layer caches make an
  /// instance non-reentrant); every tile's latent is independent and lands
  /// in its own slot, so the result is bitwise identical at any thread
  /// count, including the sequential pool == nullptr path.
  std::vector<Tensor> encode_batch(std::span<const Tensor> tiles,
                                   util::ThreadPool* pool = nullptr);
  /// Full autoencoder pass (for reconstruction-quality evaluation).
  Tensor reconstruct(const Tensor& tile);

  bool has_centroids() const { return !centroids_.empty(); }
  const Tensor& centroids() const { return centroids_; }
  /// Sets [num_classes][latent_dim] centroids.
  void set_centroids(Tensor centroids);

  /// Class id in [0, num_classes) for a tile; requires centroids.
  int predict(const Tensor& tile);

  /// Which encoder implementation encode/encode_batch/predict run
  /// (DESIGN.md §13). kLayers is the default layer-by-layer path and the
  /// fp32 oracle; kFused is the fused fp32 plan (bitwise identical to
  /// kLayers on the same weights); kInt8 is the quantized plan and needs
  /// calibrate_int8() first. Plans snapshot the weights when selected /
  /// calibrated — after retraining or loading new weights, re-select the
  /// path to rebuild them. When kernels::use_naive() is set (the
  /// MFW_ML_NAIVE_KERNELS oracle toggle), inference falls back to kLayers
  /// regardless of the selected path.
  enum class EncodePath { kLayers, kFused, kInt8 };

  /// Maps "layers" / "fused" / "int8" (the config-file spellings) to the
  /// enum; throws std::invalid_argument on anything else.
  static EncodePath parse_encode_path(std::string_view name);

  EncodePath encode_path() const { return encode_path_; }
  /// The path inference actually takes right now (kLayers when the naive
  /// oracle override is active).
  EncodePath active_path() const;
  /// Selects the inference path. kFused (re)builds the fused plan from the
  /// current weights; kInt8 throws std::logic_error unless int8_ready().
  void set_encode_path(EncodePath path);
  /// Builds the int8 plan: quantizes the current weights and calibrates
  /// activation scales by running `sample` (non-empty) through the fp32
  /// reference. Does not switch the path by itself.
  void calibrate_int8(std::span<const Tensor> sample);
  bool int8_ready() const { return int8_.has_value(); }

  /// Serializes config + weights + centroids into an hdfl container — the
  /// "pretrained model" artifact the inference stage loads.
  storage::HdflFile save();
  static RiccModel load(const storage::HdflFile& file);

 private:
  RiccConfig config_;
  Sequential encoder_;
  Sequential decoder_;
  Tensor centroids_;  // [num_classes][latent_dim], empty until clustering
  EncodePath encode_path_ = EncodePath::kLayers;
  std::optional<FusedEncoder> fused_;   // built by set_encode_path(kFused)
  std::optional<QuantizedEncoder> int8_;  // built by calibrate_int8()
  EncodeScratch scratch_;  // single-tile encode buffers (plans are const)
};

struct RiccTrainOptions {
  int epochs = 10;
  int batch_size = 16;
  float learning_rate = 1e-3f;
  float lambda_invariance = 0.5f;
  /// Rotations per sample used for the consistency term (0 disables it).
  int rotations = 3;
  /// Optional data-parallel substrate. nullptr trains sample-sequentially
  /// (the original numerics). With a pool, each mini-batch is split into
  /// fixed 4-sample chunks run on cloned model replicas and the gradients
  /// are reduced in chunk index order — results are reproducible at any
  /// thread count (but differ from the sequential path in FP summation
  /// order).
  util::ThreadPool* pool = nullptr;
};

struct RiccTrainReport {
  std::vector<float> epoch_reconstruction_loss;
  std::vector<float> epoch_invariance_loss;
  float final_loss = 0.0f;
  double invariance_score_before = 0.0;
  double invariance_score_after = 0.0;
  double silhouette = 0.0;
};

/// Trains the autoencoder on tiles with the rotation-consistency objective.
RiccTrainReport train_autoencoder(RiccModel& model,
                                  std::span<const Tensor> tiles,
                                  const RiccTrainOptions& options);

/// Stage 2 of the AICCA workflow: encode all tiles, run Ward clustering,
/// and install the resulting centroids. Returns the clustering result.
/// A pool parallelises the encode fan-out and the Ward distance fill.
ClusterResult fit_centroids(RiccModel& model, std::span<const Tensor> tiles,
                            util::ThreadPool* pool = nullptr);

/// Mean latent displacement under rotation, normalized by the mean pairwise
/// latent distance (0 = perfectly invariant, ~1 = rotation moves a tile as
/// far as to another random tile). Used for cluster evaluation.
double rotation_invariance_score(RiccModel& model,
                                 std::span<const Tensor> tiles);

/// End-to-end "RICC training" stage: train AE, cluster, install centroids.
RiccTrainReport train_ricc(RiccModel& model, std::span<const Tensor> tiles,
                           const RiccTrainOptions& options);

}  // namespace mfw::ml
