#include "ml/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>

#include "ml/kernels.hpp"
#include "util/thread_pool.hpp"

namespace mfw::ml {

namespace {

void check_inputs(std::span<const float> data, std::size_t n, std::size_t d,
                  int k) {
  if (n == 0 || d == 0) throw std::invalid_argument("clustering needs data");
  if (data.size() != n * d)
    throw std::invalid_argument("clustering data size != n*d");
  if (k < 1 || static_cast<std::size_t>(k) > n)
    throw std::invalid_argument("clustering needs 1 <= k <= n");
}

Tensor centroids_from_labels(std::span<const float> data, std::size_t n,
                             std::size_t d, std::span<const int> labels, int k) {
  Tensor centroids({k, static_cast<int>(d)});
  std::vector<std::size_t> counts(static_cast<std::size_t>(k), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto label = static_cast<std::size_t>(labels[i]);
    ++counts[label];
    for (std::size_t j = 0; j < d; ++j)
      centroids[label * d + j] += data[i * d + j];
  }
  for (std::size_t c = 0; c < static_cast<std::size_t>(k); ++c) {
    if (counts[c] == 0) continue;
    for (std::size_t j = 0; j < d; ++j)
      centroids[c * d + j] /= static_cast<float>(counts[c]);
  }
  return centroids;
}

}  // namespace

ClusterResult agglomerative_ward(std::span<const float> data, std::size_t n,
                                 std::size_t d, int k,
                                 util::ThreadPool* pool) {
  check_inputs(data, n, d, k);
  // Ward distances held as squared merge costs in a full n x n matrix.
  // dist(i, j) = (|i||j| / (|i|+|j|)) * ||mu_i - mu_j||^2; for singletons
  // that is ||x_i - x_j||^2 / 2. Updates use the Lance-Williams recurrence.
  std::vector<double> dist(n * n, 0.0);
  const auto fill_rows = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double d2 = squared_distance(data.subspan(i * d, d),
                                           data.subspan(j * d, d));
        // Row i owns (i, j) and column i of rows j > i: disjoint across i.
        dist[i * n + j] = dist[j * n + i] = d2 / 2.0;
      }
    }
  };
  if (pool != nullptr && n > 1) {
    util::parallel_for(*pool, n, /*chunk=*/16, fill_rows);
  } else {
    fill_rows(0, n);
  }
  std::vector<std::size_t> size(n, 1);
  std::vector<bool> active(n, true);
  // Dendrogram bookkeeping: parent chain resolved at the end.
  std::vector<std::size_t> merged_into(n);
  for (std::size_t i = 0; i < n; ++i) merged_into[i] = i;
  struct Merge {
    std::size_t a, b;  // b absorbed into a
    double cost;
  };
  std::vector<Merge> merges;
  merges.reserve(n - 1);

  // Nearest-neighbour chain: amortized O(n^2). Per-cluster cached NN —
  // Ward linkage is reducible, so d(a∪b, j) >= min(d(a,j), d(b,j)) >=
  // nn_d[j]: a merge can only invalidate caches that pointed AT one of the
  // merged clusters, never create a closer neighbour elsewhere. Recomputes
  // scan in the same ascending index order as the original full rescan, so
  // the merge sequence is identical (up to exact FP ties).
  const bool cache_nn = !kernels::use_naive();
  std::vector<std::size_t> nn_of(n, 0);
  std::vector<double> nn_d(n, 0.0);
  std::vector<char> nn_valid(n, 0);
  std::vector<std::size_t> chain;
  chain.reserve(n);
  std::size_t n_active = n;
  auto nearest = [&](std::size_t c) {
    if (cache_nn && nn_valid[c]) return std::make_pair(nn_of[c], nn_d[c]);
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_j = c;
    for (std::size_t j = 0; j < n; ++j) {
      if (!active[j] || j == c) continue;
      if (dist[c * n + j] < best) {
        best = dist[c * n + j];
        best_j = j;
      }
    }
    if (cache_nn) {
      nn_of[c] = best_j;
      nn_d[c] = best;
      nn_valid[c] = 1;
    }
    return std::make_pair(best_j, best);
  };

  while (n_active > 1) {
    if (chain.empty()) {
      for (std::size_t i = 0; i < n; ++i) {
        if (active[i]) {
          chain.push_back(i);
          break;
        }
      }
    }
    while (true) {
      const std::size_t top = chain.back();
      const auto [nn, cost] = nearest(top);
      if (chain.size() >= 2 && nn == chain[chain.size() - 2]) {
        // Reciprocal nearest neighbours: merge nn into top's slot.
        chain.pop_back();
        chain.pop_back();
        const std::size_t a = top;
        const std::size_t b = nn;
        merges.push_back(Merge{a, b, cost});
        // Lance-Williams Ward update for all other active clusters. The
        // loop already walks a's whole row in ascending order, so the merged
        // cluster's new nearest neighbour falls out for free — same scan
        // order and strict-< tie-break as the full rescan in nearest().
        const double na = static_cast<double>(size[a]);
        const double nb = static_cast<double>(size[b]);
        double a_best = std::numeric_limits<double>::infinity();
        std::size_t a_best_j = a;
        for (std::size_t j = 0; j < n; ++j) {
          if (!active[j] || j == a || j == b) continue;
          const double nj = static_cast<double>(size[j]);
          const double total = na + nb + nj;
          const double updated = ((na + nj) * dist[a * n + j] +
                                  (nb + nj) * dist[b * n + j] -
                                  nj * dist[a * n + b]) /
                                 total;
          dist[a * n + j] = dist[j * n + a] = updated;
          if (updated < a_best) {
            a_best = updated;
            a_best_j = j;
          }
        }
        active[b] = false;
        merged_into[b] = a;
        size[a] += size[b];
        --n_active;
        if (cache_nn) {
          // a's cache comes from the update pass above; any cache pointing
          // at a or b is stale. Everyone else keeps theirs (reducibility).
          nn_of[a] = a_best_j;
          nn_d[a] = a_best;
          nn_valid[a] = n_active > 1 ? 1 : 0;
          for (std::size_t j = 0; j < n; ++j) {
            if (j != a && nn_valid[j] && (nn_of[j] == a || nn_of[j] == b))
              nn_valid[j] = 0;
          }
        }
        break;
      }
      chain.push_back(nn);
    }
  }

  // Cut the dendrogram at k clusters: replay merges, stopping when n-k
  // merges have been applied; the union-find below resolves final roots.
  std::vector<std::size_t> root(n);
  for (std::size_t i = 0; i < n; ++i) root[i] = i;
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (root[x] != x) {
      root[x] = root[root[x]];
      x = root[x];
    }
    return x;
  };
  const std::size_t merges_to_apply = n - static_cast<std::size_t>(k);
  for (std::size_t m = 0; m < merges_to_apply; ++m)
    root[find(merges[m].b)] = find(merges[m].a);

  ClusterResult result;
  result.k = k;
  result.dim = d;
  result.labels.resize(n);
  std::vector<std::size_t> root_to_label;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t r = find(i);
    auto it = std::find(root_to_label.begin(), root_to_label.end(), r);
    if (it == root_to_label.end()) {
      root_to_label.push_back(r);
      it = root_to_label.end() - 1;
    }
    result.labels[i] =
        static_cast<int>(std::distance(root_to_label.begin(), it));
  }
  result.centroids = centroids_from_labels(data, n, d, result.labels, k);
  return result;
}

ClusterResult agglomerative_ward(std::span<const float> data, std::size_t n,
                                 std::size_t d, int k) {
  return agglomerative_ward(data, n, d, k, nullptr);
}

ClusterResult kmeans(std::span<const float> data, std::size_t n, std::size_t d,
                     int k, util::Rng& rng, int max_iters) {
  check_inputs(data, n, d, k);
  // k-means++ seeding.
  Tensor centroids({k, static_cast<int>(d)});
  std::vector<double> min_d2(n, std::numeric_limits<double>::infinity());
  const std::size_t first = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  for (std::size_t j = 0; j < d; ++j) centroids[j] = data[first * d + j];
  for (int c = 1; c < k; ++c) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d2 = squared_distance(
          data.subspan(i * d, d),
          std::span<const float>(centroids.data() + (c - 1) * d, d));
      min_d2[i] = std::min(min_d2[i], d2);
      total += min_d2[i];
    }
    double pick = rng.uniform() * total;
    std::size_t chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      pick -= min_d2[i];
      if (pick <= 0) {
        chosen = i;
        break;
      }
    }
    for (std::size_t j = 0; j < d; ++j)
      centroids[static_cast<std::size_t>(c) * d + j] = data[chosen * d + j];
  }

  ClusterResult result;
  result.k = k;
  result.dim = d;
  result.labels.assign(n, 0);
  for (int iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      const int label = nearest_centroid(centroids, data.subspan(i * d, d));
      if (label != result.labels[i]) {
        result.labels[i] = label;
        changed = true;
      }
    }
    centroids = centroids_from_labels(data, n, d, result.labels, k);
    if (!changed) break;
  }
  result.centroids = std::move(centroids);
  return result;
}

double silhouette(std::span<const float> data, std::size_t n, std::size_t d,
                  std::span<const int> labels, int k) {
  if (labels.size() != n) throw std::invalid_argument("labels size != n");
  if (k < 2 || n < 2) return 0.0;
  std::vector<std::size_t> counts(static_cast<std::size_t>(k), 0);
  for (std::size_t i = 0; i < n; ++i)
    ++counts[static_cast<std::size_t>(labels[i])];
  double total = 0.0;
  std::size_t scored = 0;
  std::vector<double> mean_to_cluster(static_cast<std::size_t>(k));
  for (std::size_t i = 0; i < n; ++i) {
    std::fill(mean_to_cluster.begin(), mean_to_cluster.end(), 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double dij = std::sqrt(squared_distance(data.subspan(i * d, d),
                                                    data.subspan(j * d, d)));
      mean_to_cluster[static_cast<std::size_t>(labels[j])] += dij;
    }
    const auto own = static_cast<std::size_t>(labels[i]);
    if (counts[own] <= 1) continue;  // silhouette undefined for singletons
    double a = mean_to_cluster[own] / static_cast<double>(counts[own] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < static_cast<std::size_t>(k); ++c) {
      if (c == own || counts[c] == 0) continue;
      b = std::min(b, mean_to_cluster[c] / static_cast<double>(counts[c]));
    }
    if (!std::isfinite(b)) continue;
    total += (b - a) / std::max(a, b);
    ++scored;
  }
  return scored ? total / static_cast<double>(scored) : 0.0;
}

double within_cluster_ss(std::span<const float> data, std::size_t n,
                         std::size_t d, const ClusterResult& result) {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto label = static_cast<std::size_t>(result.labels[i]);
    total += squared_distance(
        data.subspan(i * d, d),
        std::span<const float>(result.centroids.data() + label * d, d));
  }
  return total;
}

int nearest_centroid(const Tensor& centroids, std::span<const float> point) {
  const auto k = static_cast<std::size_t>(centroids.dim(0));
  const auto d = static_cast<std::size_t>(centroids.dim(1));
  if (point.size() != d)
    throw std::invalid_argument("nearest_centroid dimension mismatch");
  int best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < k; ++c) {
    const double d2 = squared_distance(
        std::span<const float>(centroids.data() + c * d, d), point);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = static_cast<int>(c);
    }
  }
  return best;
}

}  // namespace mfw::ml
