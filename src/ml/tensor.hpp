// Minimal dense float tensor for the RICC substrate.
//
// Row-major, owning, up to 4 dimensions. This is all the inference and
// training stack needs; no views/broadcasting — clarity over generality.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace mfw::ml {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape);
  Tensor(std::vector<int> shape, std::vector<float> data);

  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }
  static Tensor full(std::vector<int> shape, float value);
  /// He-normal initialisation for conv/dense weights (fan_in derived from
  /// all but the first dimension).
  static Tensor he_normal(std::vector<int> shape, util::Rng& rng);

  const std::vector<int>& shape() const { return shape_; }
  int dim(std::size_t axis) const { return shape_.at(axis); }
  std::size_t rank() const { return shape_.size(); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return data_; }
  std::span<const float> span() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  // Indexed access (bounds unchecked in release; asserts in debug).
  float& at2(int i, int j);
  float at2(int i, int j) const;
  float& at3(int c, int h, int w);
  float at3(int c, int h, int w) const;

  /// Same data, new shape; element counts must match.
  Tensor reshaped(std::vector<int> shape) const;

  void fill(float value);
  void zero() { fill(0.0f); }

  /// Elementwise in-place operations.
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float scalar);

  /// L2 norm of all elements.
  float norm() const;
  float mean() const;

  std::string shape_str() const;

 private:
  void check_same_shape(const Tensor& other) const;

  std::vector<int> shape_;
  std::vector<float> data_;
};

/// Rotates a [C][H][W] tensor by 90° * quarter_turns counter-clockwise.
/// Requires H == W for quarter_turns odd.
Tensor rotate90(const Tensor& chw, int quarter_turns);

/// Mean squared error between same-shaped tensors.
float mse(const Tensor& a, const Tensor& b);

/// Squared Euclidean distance between flat tensors.
float squared_distance(std::span<const float> a, std::span<const float> b);

}  // namespace mfw::ml
