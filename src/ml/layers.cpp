#include "ml/layers.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "ml/kernels.hpp"

namespace mfw::ml {

namespace {
void expect_rank(const Tensor& t, std::size_t rank, const char* who) {
  if (t.rank() != rank)
    throw std::invalid_argument(std::string(who) + ": expected rank " +
                                std::to_string(rank) + " input, got " +
                                t.shape_str());
}
}  // namespace

// ---------------------------------------------------------------- Conv2d --

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride,
               int pad, util::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad) {
  if (in_channels <= 0 || out_channels <= 0 || kernel <= 0 || stride <= 0 ||
      pad < 0)
    throw std::invalid_argument("Conv2d: bad hyperparameters");
  weight_ = Param{"weight",
                  Tensor::he_normal({out_channels, in_channels, kernel, kernel}, rng),
                  Tensor::zeros({out_channels, in_channels, kernel, kernel})};
  bias_ = Param{"bias", Tensor::zeros({out_channels}),
                Tensor::zeros({out_channels})};
}

int Conv2d::out_height(int in_height) const {
  return (in_height + 2 * pad_ - kernel_) / stride_ + 1;
}
int Conv2d::out_width(int in_width) const {
  return (in_width + 2 * pad_ - kernel_) / stride_ + 1;
}

Tensor Conv2d::forward(const Tensor& input) {
  expect_rank(input, 3, "Conv2d");
  if (input.dim(0) != in_channels_)
    throw std::invalid_argument("Conv2d: channel mismatch");
  input_ = input;
  const int in_h = input.dim(1);
  const int in_w = input.dim(2);
  const int out_h = out_height(in_h);
  const int out_w = out_width(in_w);
  if (out_h <= 0 || out_w <= 0)
    throw std::invalid_argument("Conv2d: output would be empty");
  if (kernels::use_naive()) {
    col_.clear();
    return forward_naive(input, out_h, out_w);
  }
  // GEMM path: out[oc][oh*ow] = W[oc][ic*k*k] * col[ic*k*k][oh*ow] + bias.
  // The weight tensor's [out][in][k][k] layout *is* the [M][K] gemm operand.
  const std::size_t patch = kernels::im2col_rows(in_channels_, kernel_);
  const std::size_t out_n = static_cast<std::size_t>(out_h) * out_w;
  col_.resize(patch * out_n);
  kernels::im2col(input.data(), in_channels_, in_h, in_w, kernel_, stride_,
                  pad_, col_.data());
  Tensor out({out_channels_, out_h, out_w});
  float* odata = out.data();
  for (int oc = 0; oc < out_channels_; ++oc) {
    const float b = bias_.value[static_cast<std::size_t>(oc)];
    float* orow = odata + static_cast<std::size_t>(oc) * out_n;
    for (std::size_t i = 0; i < out_n; ++i) orow[i] = b;
  }
  kernels::sgemm(static_cast<std::size_t>(out_channels_), out_n, patch,
                 weight_.value.data(), col_.data(), odata, /*accumulate=*/true);
  return out;
}

Tensor Conv2d::forward_naive(const Tensor& input, int out_h, int out_w) const {
  const int in_h = input.dim(1);
  const int in_w = input.dim(2);
  Tensor out({out_channels_, out_h, out_w});
  const float* wdata = weight_.value.data();
  for (int oc = 0; oc < out_channels_; ++oc) {
    const float b = bias_.value[static_cast<std::size_t>(oc)];
    for (int oh = 0; oh < out_h; ++oh) {
      for (int ow = 0; ow < out_w; ++ow) {
        float acc = b;
        const int h0 = oh * stride_ - pad_;
        const int w0 = ow * stride_ - pad_;
        for (int ic = 0; ic < in_channels_; ++ic) {
          for (int kh = 0; kh < kernel_; ++kh) {
            const int ih = h0 + kh;
            if (ih < 0 || ih >= in_h) continue;
            for (int kw = 0; kw < kernel_; ++kw) {
              const int iw = w0 + kw;
              if (iw < 0 || iw >= in_w) continue;
              const std::size_t widx =
                  ((static_cast<std::size_t>(oc) * in_channels_ + ic) * kernel_ +
                   kh) *
                      kernel_ +
                  kw;
              acc += wdata[widx] * input.at3(ic, ih, iw);
            }
          }
        }
        out.at3(oc, oh, ow) = acc;
      }
    }
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  expect_rank(grad_output, 3, "Conv2d::backward");
  if (kernels::use_naive()) return backward_naive(grad_output);
  const int in_h = input_.dim(1);
  const int in_w = input_.dim(2);
  const int out_h = grad_output.dim(1);
  const int out_w = grad_output.dim(2);
  const std::size_t patch = kernels::im2col_rows(in_channels_, kernel_);
  const std::size_t out_n = static_cast<std::size_t>(out_h) * out_w;
  const auto m = static_cast<std::size_t>(out_channels_);
  if (col_.size() != patch * out_n) {
    // forward ran on the naive path (flag flipped mid-step); rebuild.
    col_.resize(patch * out_n);
    kernels::im2col(input_.data(), in_channels_, in_h, in_w, kernel_, stride_,
                    pad_, col_.data());
  }
  const float* g = grad_output.data();
  // Bias grad: row sums of dY.
  for (std::size_t oc = 0; oc < m; ++oc) {
    float acc = 0.0f;
    const float* grow = g + oc * out_n;
    for (std::size_t i = 0; i < out_n; ++i) acc += grow[i];
    bias_.grad[oc] += acc;
  }
  // Weight grad: dW[oc][p] += sum_n dY[oc][n] * col[p][n]  — expressed as the
  // nn gemm dY[M][N] * colT[N][K] so the inner loop stays contiguous.
  std::vector<float> scratch(std::max(out_n * patch, patch * m));
  kernels::transpose(patch, out_n, col_.data(), scratch.data());
  kernels::sgemm(m, patch, out_n, g, scratch.data(), weight_.grad.data(),
                 /*accumulate=*/true);
  // Input grad: dcol[p][n] = sum_oc W[oc][p] * dY[oc][n], then scatter-add.
  kernels::transpose(m, patch, weight_.value.data(), scratch.data());
  std::vector<float> dcol(patch * out_n);
  kernels::sgemm(patch, out_n, m, scratch.data(), g, dcol.data(),
                 /*accumulate=*/false);
  Tensor grad_in(input_.shape());
  kernels::col2im(dcol.data(), in_channels_, in_h, in_w, kernel_, stride_,
                  pad_, grad_in.data());
  return grad_in;
}

Tensor Conv2d::backward_naive(const Tensor& grad_output) {
  const int in_h = input_.dim(1);
  const int in_w = input_.dim(2);
  const int out_h = grad_output.dim(1);
  const int out_w = grad_output.dim(2);
  Tensor grad_in(input_.shape());
  float* gw = weight_.grad.data();
  const float* wdata = weight_.value.data();
  for (int oc = 0; oc < out_channels_; ++oc) {
    for (int oh = 0; oh < out_h; ++oh) {
      for (int ow = 0; ow < out_w; ++ow) {
        const float g = grad_output.at3(oc, oh, ow);
        if (g == 0.0f) continue;
        bias_.grad[static_cast<std::size_t>(oc)] += g;
        const int h0 = oh * stride_ - pad_;
        const int w0 = ow * stride_ - pad_;
        for (int ic = 0; ic < in_channels_; ++ic) {
          for (int kh = 0; kh < kernel_; ++kh) {
            const int ih = h0 + kh;
            if (ih < 0 || ih >= in_h) continue;
            for (int kw = 0; kw < kernel_; ++kw) {
              const int iw = w0 + kw;
              if (iw < 0 || iw >= in_w) continue;
              const std::size_t widx =
                  ((static_cast<std::size_t>(oc) * in_channels_ + ic) * kernel_ +
                   kh) *
                      kernel_ +
                  kw;
              gw[widx] += g * input_.at3(ic, ih, iw);
              grad_in.at3(ic, ih, iw) += g * wdata[widx];
            }
          }
        }
      }
    }
  }
  return grad_in;
}

// ----------------------------------------------------------------- Dense --

Dense::Dense(int in_features, int out_features, util::Rng& rng)
    : in_features_(in_features), out_features_(out_features) {
  if (in_features <= 0 || out_features <= 0)
    throw std::invalid_argument("Dense: bad dimensions");
  weight_ = Param{"weight", Tensor::he_normal({out_features, in_features}, rng),
                  Tensor::zeros({out_features, in_features})};
  bias_ = Param{"bias", Tensor::zeros({out_features}),
                Tensor::zeros({out_features})};
}

Tensor Dense::forward(const Tensor& input) {
  expect_rank(input, 1, "Dense");
  if (input.dim(0) != in_features_)
    throw std::invalid_argument("Dense: feature mismatch");
  input_ = input;
  Tensor out({out_features_});
  for (int o = 0; o < out_features_; ++o) {
    float acc = bias_.value[static_cast<std::size_t>(o)];
    const float* wrow =
        weight_.value.data() + static_cast<std::size_t>(o) * in_features_;
    for (int i = 0; i < in_features_; ++i) acc += wrow[i] * input[static_cast<std::size_t>(i)];
    out[static_cast<std::size_t>(o)] = acc;
  }
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  expect_rank(grad_output, 1, "Dense::backward");
  Tensor grad_in({in_features_});
  for (int o = 0; o < out_features_; ++o) {
    const float g = grad_output[static_cast<std::size_t>(o)];
    bias_.grad[static_cast<std::size_t>(o)] += g;
    float* gw_row = weight_.grad.data() + static_cast<std::size_t>(o) * in_features_;
    const float* w_row =
        weight_.value.data() + static_cast<std::size_t>(o) * in_features_;
    for (int i = 0; i < in_features_; ++i) {
      gw_row[i] += g * input_[static_cast<std::size_t>(i)];
      grad_in[static_cast<std::size_t>(i)] += g * w_row[i];
    }
  }
  return grad_in;
}

// ----------------------------------------------------------- activations --

Tensor ReLU::forward(const Tensor& input) {
  input_ = input;
  Tensor out = input;
  for (std::size_t i = 0; i < out.size(); ++i)
    if (out[i] < 0.0f) out[i] = 0.0f;
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i)
    if (input_[i] <= 0.0f) grad[i] = 0.0f;
  return grad;
}

Tensor LeakyReLU::forward(const Tensor& input) {
  input_ = input;
  Tensor out = input;
  for (std::size_t i = 0; i < out.size(); ++i)
    if (out[i] < 0.0f) out[i] *= slope_;
  return out;
}

Tensor LeakyReLU::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i)
    if (input_[i] <= 0.0f) grad[i] *= slope_;
  return grad;
}

Tensor Sigmoid::forward(const Tensor& input) {
  Tensor out = input;
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = 1.0f / (1.0f + std::exp(-out[i]));
  output_ = out;
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    const float y = output_[i];
    grad[i] *= y * (1.0f - y);
  }
  return grad;
}

// --------------------------------------------------------------- pooling --

Tensor MaxPool2x2::forward(const Tensor& input) {
  expect_rank(input, 3, "MaxPool2x2");
  const int channels = input.dim(0);
  const int in_h = input.dim(1);
  const int in_w = input.dim(2);
  if (in_h % 2 != 0 || in_w % 2 != 0)
    throw std::invalid_argument("MaxPool2x2 requires even H and W");
  shape_ = input.shape();
  const int out_h = in_h / 2;
  const int out_w = in_w / 2;
  Tensor out({channels, out_h, out_w});
  argmax_.assign(out.size(), 0);
  std::size_t o = 0;
  for (int c = 0; c < channels; ++c) {
    for (int oh = 0; oh < out_h; ++oh) {
      for (int ow = 0; ow < out_w; ++ow, ++o) {
        float best = -std::numeric_limits<float>::infinity();
        std::size_t best_idx = 0;
        for (int dh = 0; dh < 2; ++dh) {
          for (int dw = 0; dw < 2; ++dw) {
            const int ih = oh * 2 + dh;
            const int iw = ow * 2 + dw;
            const std::size_t idx =
                (static_cast<std::size_t>(c) * in_h + ih) * in_w + iw;
            if (input[idx] > best) {
              best = input[idx];
              best_idx = idx;
            }
          }
        }
        out[o] = best;
        argmax_[o] = best_idx;
      }
    }
  }
  return out;
}

Tensor MaxPool2x2::backward(const Tensor& grad_output) {
  Tensor grad_in(shape_);
  for (std::size_t o = 0; o < grad_output.size(); ++o)
    grad_in[argmax_[o]] += grad_output[o];
  return grad_in;
}

Tensor UpsampleNearest2x::forward(const Tensor& input) {
  expect_rank(input, 3, "UpsampleNearest2x");
  in_shape_ = input.shape();
  const int channels = input.dim(0);
  const int in_h = input.dim(1);
  const int in_w = input.dim(2);
  Tensor out({channels, in_h * 2, in_w * 2});
  for (int c = 0; c < channels; ++c)
    for (int h = 0; h < in_h * 2; ++h)
      for (int w = 0; w < in_w * 2; ++w)
        out.at3(c, h, w) = input.at3(c, h / 2, w / 2);
  return out;
}

Tensor UpsampleNearest2x::backward(const Tensor& grad_output) {
  Tensor grad_in(in_shape_);
  const int channels = in_shape_[0];
  const int in_h = in_shape_[1];
  const int in_w = in_shape_[2];
  for (int c = 0; c < channels; ++c)
    for (int h = 0; h < in_h * 2; ++h)
      for (int w = 0; w < in_w * 2; ++w)
        grad_in.at3(c, h / 2, w / 2) += grad_output.at3(c, h, w);
  return grad_in;
}

// ----------------------------------------------------------- reshape ops --

Tensor Flatten::forward(const Tensor& input) {
  in_shape_ = input.shape();
  return input.reshaped({static_cast<int>(input.size())});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(in_shape_);
}

Tensor Reshape::forward(const Tensor& input) {
  in_shape_ = input.shape();
  return input.reshaped(target_);
}

Tensor Reshape::backward(const Tensor& grad_output) {
  return grad_output.reshaped(in_shape_);
}

// -------------------------------------------------------------- container --

Tensor Sequential::forward(const Tensor& input) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> out;
  for (auto& layer : layers_) {
    for (Param* p : layer->params()) out.push_back(p);
  }
  return out;
}

std::unique_ptr<Layer> Sequential::clone() const {
  auto copy = std::make_unique<Sequential>();
  for (const auto& layer : layers_) copy->add(layer->clone());
  return copy;
}

Sequential Sequential::clone_net() const {
  Sequential copy;
  for (const auto& layer : layers_) copy.add(layer->clone());
  return copy;
}

std::size_t Sequential::param_count() {
  std::size_t n = 0;
  for (Param* p : params()) n += p->value.size();
  return n;
}

}  // namespace mfw::ml
