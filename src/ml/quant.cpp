#include "ml/quant.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "ml/kernels.hpp"
#include "ml/layers.hpp"

namespace mfw::ml {

namespace {

// The encoder pattern both plans compile: [Conv2d, LeakyReLU, MaxPool2x2]
// x blocks, then Flatten + Dense (see RiccModel's constructor).
struct EncoderLayout {
  struct ConvStage {
    const Conv2d* conv = nullptr;
    float slope = 0.0f;
  };
  std::vector<ConvStage> stages;
  const Dense* dense = nullptr;
};

EncoderLayout parse_encoder(const Sequential& encoder) {
  EncoderLayout layout;
  const std::size_t n = encoder.layer_count();
  std::size_t i = 0;
  while (i < n) {
    const auto* conv = dynamic_cast<const Conv2d*>(&encoder.layer(i));
    if (conv == nullptr) break;
    const auto* act =
        i + 1 < n ? dynamic_cast<const LeakyReLU*>(&encoder.layer(i + 1))
                  : nullptr;
    const auto* pool =
        i + 2 < n ? dynamic_cast<const MaxPool2x2*>(&encoder.layer(i + 2))
                  : nullptr;
    if (act == nullptr || pool == nullptr)
      throw std::invalid_argument(
          "encoder plan: expected [Conv2d, LeakyReLU, MaxPool2x2] blocks");
    layout.stages.push_back({conv, act->slope()});
    i += 3;
  }
  if (layout.stages.empty())
    throw std::invalid_argument("encoder plan: no conv stages found");
  const auto* flat =
      i < n ? dynamic_cast<const Flatten*>(&encoder.layer(i)) : nullptr;
  layout.dense = i + 1 < n
                     ? dynamic_cast<const Dense*>(&encoder.layer(i + 1))
                     : nullptr;
  if (flat == nullptr || layout.dense == nullptr || i + 2 != n)
    throw std::invalid_argument(
        "encoder plan: expected trailing Flatten + Dense");
  return layout;
}

// Walks the stage geometry from the input tile size, throwing on any shape
// the fused pipeline cannot run (odd pre-pool size, dense mismatch).
std::vector<int> stage_in_sizes(const EncoderLayout& layout, int tile_size) {
  std::vector<int> sizes;
  int size = tile_size;
  int ch = layout.stages.front().conv->in_channels();
  for (const auto& st : layout.stages) {
    if (st.conv->in_channels() != ch)
      throw std::invalid_argument("encoder plan: stage channel mismatch");
    sizes.push_back(size);
    const int out = kernels::conv_out_dim(size, st.conv->kernel_size(),
                                          st.conv->stride(),
                                          st.conv->padding());
    if (out <= 0 || out % 2 != 0)
      throw std::invalid_argument(
          "encoder plan: conv output must be positive and even, got " +
          std::to_string(out));
    size = out / 2;
    ch = st.conv->out_channels();
  }
  if (layout.dense->in_features() != ch * size * size)
    throw std::invalid_argument("encoder plan: dense input size mismatch");
  return sizes;
}

float scale_for_maxabs(float maxabs) {
  return maxabs > 0.0f ? maxabs / 127.0f : 1.0f;
}

std::int8_t quantize_one(float x, float inv_scale) {
  long v = std::lrintf(x * inv_scale);
  if (v > 127) v = 127;
  if (v < -127) v = -127;
  return static_cast<std::int8_t>(v);
}

void expect_tile(const Tensor& tile, int channels, int tile_size,
                 const char* who) {
  if (tile.rank() != 3 || tile.dim(0) != channels ||
      tile.dim(1) != tile_size || tile.dim(2) != tile_size)
    throw std::invalid_argument(std::string(who) +
                                ": tile shape mismatch, got " +
                                tile.shape_str());
}

}  // namespace

// ----------------------------------------------------------- FusedEncoder

FusedEncoder FusedEncoder::build(const Sequential& encoder, int tile_size) {
  const EncoderLayout layout = parse_encoder(encoder);
  const std::vector<int> sizes = stage_in_sizes(layout, tile_size);
  FusedEncoder plan;
  plan.tile_size_ = tile_size;
  plan.channels_ = layout.stages.front().conv->in_channels();
  for (std::size_t i = 0; i < layout.stages.size(); ++i) {
    const Conv2d& conv = *layout.stages[i].conv;
    Stage stage;
    stage.in_c = conv.in_channels();
    stage.out_c = conv.out_channels();
    stage.kernel = conv.kernel_size();
    stage.stride = conv.stride();
    stage.pad = conv.padding();
    stage.in_size = sizes[i];
    stage.slope = layout.stages[i].slope;
    const auto w = conv.weight().span();
    stage.weight.assign(w.begin(), w.end());
    const auto b = conv.bias().span();
    stage.bias.assign(b.begin(), b.end());
    plan.stages_.push_back(std::move(stage));
  }
  plan.dense_in_ = layout.dense->in_features();
  plan.dense_out_ = layout.dense->out_features();
  const auto dw = layout.dense->weight().span();
  plan.dense_w_.assign(dw.begin(), dw.end());
  const auto db = layout.dense->bias().span();
  plan.dense_b_.assign(db.begin(), db.end());
  return plan;
}

Tensor FusedEncoder::encode(const Tensor& tile, EncodeScratch& scratch) const {
  return encode_impl(tile, scratch, nullptr);
}

Tensor FusedEncoder::encode_calibrating(const Tensor& tile,
                                        EncodeScratch& scratch,
                                        std::span<float> maxabs) const {
  if (maxabs.size() != stages_.size() + 1)
    throw std::invalid_argument("encode_calibrating: maxabs size mismatch");
  return encode_impl(tile, scratch, maxabs.data());
}

Tensor FusedEncoder::encode_impl(const Tensor& tile, EncodeScratch& s,
                                 float* maxabs) const {
  expect_tile(tile, channels_, tile_size_, "FusedEncoder");
  const float* x = tile.data();
  if (maxabs != nullptr) {
    for (std::size_t i = 0; i < tile.size(); ++i)
      maxabs[0] = std::max(maxabs[0], std::fabs(tile[i]));
  }
  for (std::size_t si = 0; si < stages_.size(); ++si) {
    const Stage& st = stages_[si];
    const int out_h = kernels::conv_out_dim(st.in_size, st.kernel, st.stride,
                                            st.pad);
    const std::size_t out_n = static_cast<std::size_t>(out_h) * out_h;
    const std::size_t patch = kernels::im2col_rows(st.in_c, st.kernel);
    s.col.resize(patch * out_n);
    s.y.resize(static_cast<std::size_t>(st.out_c) * out_n);
    kernels::conv2d_bias_leaky_f32(x, st.in_c, st.in_size, st.in_size,
                                   st.weight.data(), st.bias.data(), st.out_c,
                                   st.kernel, st.stride, st.pad, st.slope,
                                   s.col.data(), s.y.data());
    if (maxabs != nullptr) {
      const std::size_t total = static_cast<std::size_t>(st.out_c) * out_n;
      for (std::size_t i = 0; i < total; ++i)
        maxabs[1 + si] = std::max(maxabs[1 + si], std::fabs(s.y[i]));
    }
    // MaxPool2x2, same selection semantics as the layer (−inf start,
    // strictly-greater compare in dh,dw order — the max value either way).
    const int half = out_h / 2;
    s.x.resize(static_cast<std::size_t>(st.out_c) * half * half);
    for (int c = 0; c < st.out_c; ++c) {
      const float* plane = s.y.data() + static_cast<std::size_t>(c) * out_n;
      float* dst = s.x.data() + static_cast<std::size_t>(c) * half * half;
      for (int oh = 0; oh < half; ++oh) {
        for (int ow = 0; ow < half; ++ow) {
          float best = -std::numeric_limits<float>::infinity();
          for (int dh = 0; dh < 2; ++dh) {
            for (int dw = 0; dw < 2; ++dw) {
              const float v =
                  plane[static_cast<std::size_t>(oh * 2 + dh) * out_h +
                        (ow * 2 + dw)];
              if (v > best) best = v;
            }
          }
          dst[static_cast<std::size_t>(oh) * half + ow] = best;
        }
      }
    }
    x = s.x.data();
  }
  // Dense: same per-output accumulation order as Dense::forward.
  Tensor z({dense_out_});
  for (int o = 0; o < dense_out_; ++o) {
    float acc = dense_b_[static_cast<std::size_t>(o)];
    const float* wrow =
        dense_w_.data() + static_cast<std::size_t>(o) * dense_in_;
    for (int i = 0; i < dense_in_; ++i) acc += wrow[i] * x[i];
    z[static_cast<std::size_t>(o)] = acc;
  }
  return z;
}

// ------------------------------------------------------- QuantizedEncoder

QuantizedEncoder QuantizedEncoder::build(const Sequential& encoder,
                                         int tile_size,
                                         std::span<const Tensor> sample) {
  if (sample.empty())
    throw std::invalid_argument(
        "QuantizedEncoder: calibration sample must be non-empty");
  const EncoderLayout layout = parse_encoder(encoder);
  const std::vector<int> sizes = stage_in_sizes(layout, tile_size);

  // Calibrate per-tensor activation ranges with fp32 reference passes. The
  // post-activation max-abs bounds the post-pool values too (pooling only
  // selects), so one scale per stage covers both the requant and the next
  // stage's input.
  const FusedEncoder fused = FusedEncoder::build(encoder, tile_size);
  std::vector<float> maxabs(layout.stages.size() + 1, 0.0f);
  EncodeScratch scratch;
  for (const Tensor& tile : sample)
    fused.encode_calibrating(tile, scratch, maxabs);

  QuantizedEncoder plan;
  plan.tile_size_ = tile_size;
  plan.channels_ = layout.stages.front().conv->in_channels();
  plan.act_scales_.reserve(maxabs.size());
  for (const float m : maxabs) plan.act_scales_.push_back(scale_for_maxabs(m));

  for (std::size_t i = 0; i < layout.stages.size(); ++i) {
    const Conv2d& conv = *layout.stages[i].conv;
    Stage stage;
    stage.in_c = conv.in_channels();
    stage.out_c = conv.out_channels();
    stage.kernel = conv.kernel_size();
    stage.stride = conv.stride();
    stage.pad = conv.padding();
    stage.in_size = sizes[i];
    stage.slope = layout.stages[i].slope;
    const auto b = conv.bias().span();
    stage.bias.assign(b.begin(), b.end());
    // Per-output-channel symmetric weight scales.
    const float* w = conv.weight().data();
    const std::size_t row =
        static_cast<std::size_t>(stage.in_c) * stage.kernel * stage.kernel;
    stage.weight_q.resize(static_cast<std::size_t>(stage.out_c) * row);
    stage.wscale.resize(static_cast<std::size_t>(stage.out_c));
    for (int oc = 0; oc < stage.out_c; ++oc) {
      const float* wrow = w + static_cast<std::size_t>(oc) * row;
      float m = 0.0f;
      for (std::size_t j = 0; j < row; ++j)
        m = std::max(m, std::fabs(wrow[j]));
      const float scale = scale_for_maxabs(m);
      stage.wscale[static_cast<std::size_t>(oc)] = scale;
      const float inv = 1.0f / scale;
      std::int8_t* qrow =
          stage.weight_q.data() + static_cast<std::size_t>(oc) * row;
      for (std::size_t j = 0; j < row; ++j)
        qrow[j] = quantize_one(wrow[j], inv);
    }
    plan.stages_.push_back(std::move(stage));
  }

  plan.dense_in_ = layout.dense->in_features();
  plan.dense_out_ = layout.dense->out_features();
  const auto db = layout.dense->bias().span();
  plan.dense_b_.assign(db.begin(), db.end());
  const float* dw = layout.dense->weight().data();
  plan.dense_wq_.resize(static_cast<std::size_t>(plan.dense_out_) *
                        plan.dense_in_);
  plan.dense_wscale_.resize(static_cast<std::size_t>(plan.dense_out_));
  for (int o = 0; o < plan.dense_out_; ++o) {
    const float* wrow = dw + static_cast<std::size_t>(o) * plan.dense_in_;
    float m = 0.0f;
    for (int i = 0; i < plan.dense_in_; ++i)
      m = std::max(m, std::fabs(wrow[i]));
    const float scale = scale_for_maxabs(m);
    plan.dense_wscale_[static_cast<std::size_t>(o)] = scale;
    const float inv = 1.0f / scale;
    std::int8_t* qrow =
        plan.dense_wq_.data() + static_cast<std::size_t>(o) * plan.dense_in_;
    for (int i = 0; i < plan.dense_in_; ++i)
      qrow[i] = quantize_one(wrow[i], inv);
  }
  return plan;
}

Tensor QuantizedEncoder::encode(const Tensor& tile,
                                EncodeScratch& s) const {
  expect_tile(tile, channels_, tile_size_, "QuantizedEncoder");
  s.qx.resize(tile.size());
  kernels::quantize_s8(tile.data(), tile.size(), act_scales_[0],
                       s.qx.data());
  for (std::size_t si = 0; si < stages_.size(); ++si) {
    const Stage& st = stages_[si];
    const int out_h = kernels::conv_out_dim(st.in_size, st.kernel, st.stride,
                                            st.pad);
    const std::size_t out_n = static_cast<std::size_t>(out_h) * out_h;
    const std::size_t patch = kernels::im2col_rows(st.in_c, st.kernel);
    s.qcol.resize(patch * out_n);
    kernels::im2col_s8(s.qx.data(), st.in_c, st.in_size, st.in_size,
                       st.kernel, st.stride, st.pad, s.qcol.data());
    s.acc.resize(static_cast<std::size_t>(st.out_c) * out_n);
    kernels::gemm_s8(static_cast<std::size_t>(st.out_c), out_n, patch,
                     st.weight_q.data(), s.qcol.data(), s.acc.data());
    // Epilogue: dequant + bias + LeakyReLU into fp32 (a branch-free
    // elementwise map the vectorizer handles), then pool in fp32 and
    // requantize only the pooled quarter. Requantization is monotonic, so
    // max-then-requant equals requant-then-max — same int8, 4x fewer
    // round+clamp operations.
    s.y.resize(static_cast<std::size_t>(st.out_c) * out_n);
    for (int oc = 0; oc < st.out_c; ++oc) {
      kernels::dequant_bias_leaky_s32(
          s.acc.data() + static_cast<std::size_t>(oc) * out_n, out_n,
          act_scales_[si] * st.wscale[static_cast<std::size_t>(oc)],
          st.bias[static_cast<std::size_t>(oc)], st.slope,
          s.y.data() + static_cast<std::size_t>(oc) * out_n);
    }
    const int half = out_h / 2;
    const std::size_t pooled_n =
        static_cast<std::size_t>(st.out_c) * half * half;
    s.x.resize(pooled_n);
    for (int c = 0; c < st.out_c; ++c) {
      const float* plane = s.y.data() + static_cast<std::size_t>(c) * out_n;
      float* dst = s.x.data() + static_cast<std::size_t>(c) * half * half;
      for (int oh = 0; oh < half; ++oh) {
        const float* row0 = plane + static_cast<std::size_t>(oh * 2) * out_h;
        const float* row1 = row0 + out_h;
        for (int ow = 0; ow < half; ++ow) {
          const float top = std::max(row0[ow * 2], row0[ow * 2 + 1]);
          const float bot = std::max(row1[ow * 2], row1[ow * 2 + 1]);
          dst[static_cast<std::size_t>(oh) * half + ow] = std::max(top, bot);
        }
      }
    }
    s.qx.resize(pooled_n);
    kernels::quantize_s8(s.x.data(), pooled_n, act_scales_[si + 1],
                         s.qx.data());
  }
  // Dense: exact int32 dot per output row, dequantized into the latent.
  Tensor z({dense_out_});
  const float in_scale = act_scales_.back();
  for (int o = 0; o < dense_out_; ++o) {
    const std::int8_t* wrow =
        dense_wq_.data() + static_cast<std::size_t>(o) * dense_in_;
    std::int32_t acc = 0;
    for (int i = 0; i < dense_in_; ++i)
      acc += static_cast<std::int32_t>(wrow[i]) *
             static_cast<std::int32_t>(s.qx[static_cast<std::size_t>(i)]);
    z[static_cast<std::size_t>(o)] =
        dense_b_[static_cast<std::size_t>(o)] +
        static_cast<float>(acc) *
            (in_scale * dense_wscale_[static_cast<std::size_t>(o)]);
  }
  return z;
}

}  // namespace mfw::ml
