// Shared-parallel-filesystem decorator.
//
// Wraps a backing FileSystem (normally MemFs) and accounts every byte moved
// through it, mimicking a Lustre scratch system shared by all nodes of a
// facility. Two things are modelled:
//   1. byte counters (reads/writes, per-op counts) for telemetry and the
//      EXPERIMENTS.md I/O sanity checks, and
//   2. an *aggregate bandwidth ceiling* that the compute layer consults: the
//      ClusterExecutor charges each task's filesystem demand against the
//      facility-wide ceiling, which produces the mild super-node droop seen
//      in the paper's 9-10-node points (Table I, right columns).
//
// The decorator itself stays synchronous — actual byte movement in tests and
// examples is instantaneous — because in the discrete-event benchmarks, time
// is charged by the compute/transfer layers, not by file API calls.
#pragma once

#include <atomic>

#include "storage/filesystem.hpp"

namespace mfw::storage {

class LustreSimFs final : public FileSystem {
 public:
  /// `inner` is not owned and must outlive this decorator.
  /// `aggregate_bandwidth_bps` is the facility-wide ceiling exposed to the
  /// compute layer (e.g. ~40 GB/s-class for the Defiant 1.6 PB scratch).
  LustreSimFs(FileSystem& inner, double aggregate_bandwidth_bps);

  void write_file(std::string_view path,
                  std::span<const std::byte> data) override;
  std::vector<std::byte> read_file(std::string_view path) const override;
  bool exists(std::string_view path) const override;
  std::uint64_t file_size(std::string_view path) const override;
  std::vector<FileInfo> list(std::string_view pattern) const override;
  bool remove(std::string_view path) override;
  void rename(std::string_view from, std::string_view to) override;
  std::string name() const override;

  bool supports_journal() const override { return inner_.supports_journal(); }
  JournalCursor journal_since(JournalCursor cursor,
                              std::vector<FileInfo>& out) const override {
    return inner_.journal_since(cursor, out);
  }

  double aggregate_bandwidth() const { return aggregate_bandwidth_; }

  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t write_ops() const { return write_ops_; }
  std::uint64_t read_ops() const { return read_ops_; }
  void reset_counters();

 private:
  FileSystem& inner_;
  double aggregate_bandwidth_;
  mutable std::atomic<std::uint64_t> bytes_written_{0};
  mutable std::atomic<std::uint64_t> bytes_read_{0};
  mutable std::atomic<std::uint64_t> write_ops_{0};
  mutable std::atomic<std::uint64_t> read_ops_{0};
};

}  // namespace mfw::storage
