// Thread-safe in-memory FileSystem, the default backing store for facility
// filesystems in tests, examples, and simulation runs.
#pragma once

#include <functional>
#include <map>
#include <mutex>

#include "sim/clock.hpp"
#include "storage/filesystem.hpp"

namespace mfw::storage {

class MemFs final : public FileSystem {
 public:
  /// `clock` stamps mtimes when non-null (not owned; must outlive the fs);
  /// otherwise a per-fs monotone counter is used.
  explicit MemFs(std::string name, const sim::Clock* clock = nullptr);

  void write_file(std::string_view path,
                  std::span<const std::byte> data) override;
  std::vector<std::byte> read_file(std::string_view path) const override;
  bool exists(std::string_view path) const override;
  std::uint64_t file_size(std::string_view path) const override;
  std::vector<FileInfo> list(std::string_view pattern) const override;
  bool remove(std::string_view path) override;
  void rename(std::string_view from, std::string_view to) override;
  std::string name() const override { return name_; }

  bool supports_journal() const override { return true; }
  JournalCursor journal_since(JournalCursor cursor,
                              std::vector<FileInfo>& out) const override;

  /// Registers a callback invoked (outside the internal lock) after each file
  /// create/replace. Used by event-driven tests; the production monitor polls.
  void on_write(std::function<void(const FileInfo&)> callback);

 private:
  struct Entry {
    std::vector<std::byte> data;
    double mtime = 0.0;
  };

  double stamp();

  std::string name_;
  const sim::Clock* clock_;
  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> files_;
  double counter_ = 0.0;
  std::vector<FileInfo> journal_;  // every create/replace/rename-target
  std::vector<std::function<void(const FileInfo&)>> write_callbacks_;
};

}  // namespace mfw::storage
