#include "storage/lustre_sim.hpp"

#include <stdexcept>

namespace mfw::storage {

LustreSimFs::LustreSimFs(FileSystem& inner, double aggregate_bandwidth_bps)
    : inner_(inner), aggregate_bandwidth_(aggregate_bandwidth_bps) {
  if (!(aggregate_bandwidth_bps > 0))
    throw std::invalid_argument("LustreSimFs bandwidth must be > 0");
}

void LustreSimFs::write_file(std::string_view path,
                             std::span<const std::byte> data) {
  inner_.write_file(path, data);
  bytes_written_ += data.size();
  ++write_ops_;
}

std::vector<std::byte> LustreSimFs::read_file(std::string_view path) const {
  auto data = inner_.read_file(path);
  bytes_read_ += data.size();
  ++read_ops_;
  return data;
}

bool LustreSimFs::exists(std::string_view path) const {
  return inner_.exists(path);
}

std::uint64_t LustreSimFs::file_size(std::string_view path) const {
  return inner_.file_size(path);
}

std::vector<FileInfo> LustreSimFs::list(std::string_view pattern) const {
  return inner_.list(pattern);
}

bool LustreSimFs::remove(std::string_view path) { return inner_.remove(path); }

void LustreSimFs::rename(std::string_view from, std::string_view to) {
  inner_.rename(from, to);
}

std::string LustreSimFs::name() const { return inner_.name() + "+lustre"; }

void LustreSimFs::reset_counters() {
  bytes_written_ = 0;
  bytes_read_ = 0;
  write_ops_ = 0;
  read_ops_ = 0;
}

}  // namespace mfw::storage
