// POSIX-backed FileSystem: persists facility data under a root directory on
// the real disk. Used when a deployment wants artifacts (granules, tile
// files, models) to outlive the process; everything that runs against MemFs
// runs against PosixFs unchanged.
//
// Paths are the same '/'-separated keys as elsewhere; they are sandboxed
// under the root (".." segments are rejected). mtimes are a monotone
// per-instance counter (like MemFs without a clock) so that FsMonitor
// semantics — strictly increasing stamps on rewrite — hold regardless of
// filesystem timestamp granularity.
#pragma once

#include <filesystem>
#include <map>
#include <mutex>

#include "storage/filesystem.hpp"

namespace mfw::storage {

class PosixFs final : public FileSystem {
 public:
  /// Creates `root` (and parents) if missing.
  explicit PosixFs(std::filesystem::path root, std::string name = "posix");

  void write_file(std::string_view path,
                  std::span<const std::byte> data) override;
  std::vector<std::byte> read_file(std::string_view path) const override;
  bool exists(std::string_view path) const override;
  std::uint64_t file_size(std::string_view path) const override;
  std::vector<FileInfo> list(std::string_view pattern) const override;
  bool remove(std::string_view path) override;
  void rename(std::string_view from, std::string_view to) override;
  std::string name() const override { return name_; }

  const std::filesystem::path& root() const { return root_; }

 private:
  std::filesystem::path resolve(std::string_view path) const;

  std::filesystem::path root_;
  std::string name_;
  mutable std::mutex mu_;
  // Monotone write stamps per key (rewrite must bump the stamp even when
  // the OS mtime granularity would not).
  std::map<std::string, double, std::less<>> stamps_;
  double counter_ = 0.0;
};

}  // namespace mfw::storage
