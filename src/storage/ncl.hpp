// ncl ("NetCDF-lite"): the container format for preprocessed ocean-cloud
// tiles and the labelled AICCA output.
//
// Mirrors the classic NetCDF data model the paper's pipeline emits: named
// *dimensions*, *variables* defined over those dimensions, and attributes at
// both file and variable scope. The inference stage appends a `label`
// variable to existing tile files ("Append cloud labels to NetCDF file" in
// the paper's Flow), which this model supports naturally: load, add_var,
// save.
//
// Layout: "NCL1" u16_dim_count {name,u64 len} u16_global_attr_count {attr}
//         u16_var_count per var: name, dtype u8, dim_count u8,
//         {dim name-ref str}, attr_count u16 {attr}, size u64, data, crc u32
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "storage/dtype.hpp"
#include "storage/serialize.hpp"

namespace mfw::storage {

struct NclVar {
  std::string name;
  DType dtype = DType::kF32;
  std::vector<std::string> dims;  // names of dimensions, outermost first
  std::map<std::string, std::string> attrs;
  std::vector<std::byte> data;

  std::span<const float> as_f32() const;
  std::span<const std::int32_t> as_i32() const;
  std::span<const double> as_f64() const;
};

class NclFile {
 public:
  /// Defines a dimension; re-defining with a different length throws.
  void add_dim(const std::string& name, std::uint64_t length);
  bool has_dim(std::string_view name) const;
  std::uint64_t dim(std::string_view name) const;
  const std::vector<std::pair<std::string, std::uint64_t>>& dims() const {
    return dims_;
  }

  /// Adds a variable; every dim must exist and the payload size must equal
  /// product(dims) * dtype_size. Replaces an existing variable of that name.
  void add_var(NclVar var);
  /// Typed convenience for float data.
  void add_f32(const std::string& name, std::vector<std::string> dims,
               std::span<const float> values,
               std::map<std::string, std::string> attrs = {});
  void add_i32(const std::string& name, std::vector<std::string> dims,
               std::span<const std::int32_t> values,
               std::map<std::string, std::string> attrs = {});

  bool has_var(std::string_view name) const;
  const NclVar& var(std::string_view name) const;
  std::vector<std::string> var_names() const;
  std::size_t var_count() const { return vars_.size(); }

  std::map<std::string, std::string>& attrs() { return attrs_; }
  const std::map<std::string, std::string>& attrs() const { return attrs_; }

  /// Number of elements a variable over `dims` must carry.
  std::size_t element_count(const std::vector<std::string>& dims) const;

  std::vector<std::byte> serialize() const;
  static NclFile deserialize(std::span<const std::byte> bytes);

 private:
  std::vector<std::pair<std::string, std::uint64_t>> dims_;  // insertion order
  std::map<std::string, std::uint64_t, std::less<>> dim_index_;
  std::map<std::string, std::string> attrs_;
  std::vector<NclVar> vars_;
  std::map<std::string, std::size_t, std::less<>> var_index_;
};

}  // namespace mfw::storage
