// Facility filesystem abstraction.
//
// Each facility in the topology (LAADS archive staging, ACE Defiant scratch,
// Frontier's Orion) exposes a FileSystem. Paths are '/'-separated keys; there
// is no directory object — directories exist implicitly, as on object
// stores. The flow monitor, preprocessing, inference, and shipment stages all
// operate through this interface, so tests can run everything against MemFs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mfw::storage {

struct FileInfo {
  std::string path;
  std::uint64_t size = 0;
  /// Modification stamp in the owning clock's seconds (monotone per fs).
  double mtime = 0.0;
};

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Creates or replaces the file at `path` with `data`.
  virtual void write_file(std::string_view path,
                          std::span<const std::byte> data) = 0;

  /// Reads the whole file; throws std::runtime_error when missing.
  virtual std::vector<std::byte> read_file(std::string_view path) const = 0;

  virtual bool exists(std::string_view path) const = 0;

  /// Size in bytes; throws when missing.
  virtual std::uint64_t file_size(std::string_view path) const = 0;

  /// Lists files whose path matches `pattern` (glob with '*'/'?'), sorted by
  /// path. Empty pattern lists everything.
  virtual std::vector<FileInfo> list(std::string_view pattern) const = 0;

  /// Removes a file; returns whether it existed.
  virtual bool remove(std::string_view path) = 0;

  /// Atomic rename; throws when `from` is missing.
  virtual void rename(std::string_view from, std::string_view to) = 0;

  virtual std::string name() const = 0;

  // -- Write journal ---------------------------------------------------------
  // Backends that record every create/replace/rename-target can hand pollers
  // an O(new entries) delta instead of an O(all files) list() scan — the
  // difference between a feasible and an infeasible year-long campaign for
  // the flow monitor. Entries are ordered, never reordered, and survive until
  // the filesystem dies; a cursor of 0 replays the filesystem's whole life.

  /// Opaque monotone position in the write journal.
  using JournalCursor = std::uint64_t;

  /// True when this filesystem records a write journal.
  virtual bool supports_journal() const { return false; }

  /// Appends every entry recorded after `cursor` to `out` (in write order;
  /// a path may appear multiple times, latest entry last) and returns the
  /// cursor at the journal's end. No-op on backends without a journal.
  virtual JournalCursor journal_since(JournalCursor cursor,
                                      std::vector<FileInfo>& out) const {
    (void)out;
    return cursor;
  }

  // -- Convenience helpers ---------------------------------------------------
  void write_text(std::string_view path, std::string_view text);
  std::string read_text(std::string_view path) const;
  std::uint64_t total_bytes() const;
  std::size_t file_count() const;
};

}  // namespace mfw::storage
