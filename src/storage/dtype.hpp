// Element types shared by the hdfl and ncl container formats.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mfw::storage {

enum class DType : std::uint8_t {
  kF32 = 0,
  kF64 = 1,
  kI32 = 2,
  kI64 = 3,
  kU8 = 4,
  kI16 = 5,
};

constexpr std::size_t dtype_size(DType t) {
  switch (t) {
    case DType::kF32: return 4;
    case DType::kF64: return 8;
    case DType::kI32: return 4;
    case DType::kI64: return 8;
    case DType::kU8: return 1;
    case DType::kI16: return 2;
  }
  return 0;
}

constexpr std::string_view dtype_name(DType t) {
  switch (t) {
    case DType::kF32: return "f32";
    case DType::kF64: return "f64";
    case DType::kI32: return "i32";
    case DType::kI64: return "i64";
    case DType::kU8: return "u8";
    case DType::kI16: return "i16";
  }
  return "?";
}

}  // namespace mfw::storage
