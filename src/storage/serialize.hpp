// Little-endian binary (de)serialization helpers shared by the hdfl and ncl
// container formats and the model checkpoint format.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mfw::storage {

/// Raised on malformed container files (truncation, bad magic, CRC mismatch).
class FormatError : public std::runtime_error {
 public:
  explicit FormatError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends primitives to a growing byte buffer.
class BinaryWriter {
 public:
  void u8(std::uint8_t v) { raw(&v, 1); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f32(float v);
  void f64(double v);
  /// Length-prefixed (u16) UTF-8 string; throws on length > 65535.
  void str(std::string_view s);
  void raw(const void* data, std::size_t size);
  void bytes(std::span<const std::byte> data) { raw(data.data(), data.size()); }

  /// Overwrites 4 bytes at `offset` (for patching sizes/CRCs).
  void patch_u32(std::size_t offset, std::uint32_t v);

  std::size_t size() const { return buffer_.size(); }
  const std::vector<std::byte>& buffer() const { return buffer_; }
  std::vector<std::byte> take() { return std::move(buffer_); }

 private:
  std::vector<std::byte> buffer_;
};

/// Bounds-checked reader over a byte span (non-owning).
class BinaryReader {
 public:
  explicit BinaryReader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  float f32();
  double f64();
  std::string str();
  /// Returns a view of the next `size` bytes and advances.
  std::span<const std::byte> raw(std::size_t size);
  /// Advances without copying.
  void skip(std::size_t size);

  std::size_t offset() const { return offset_; }
  std::size_t remaining() const { return data_.size() - offset_; }
  bool done() const { return offset_ == data_.size(); }

 private:
  void need(std::size_t size) const;

  std::span<const std::byte> data_;
  std::size_t offset_ = 0;
};

}  // namespace mfw::storage
