#include "storage/hdfl.hpp"

#include <algorithm>
#include <cstring>

#include "util/crc32.hpp"

namespace mfw::storage {

namespace {

constexpr std::uint32_t kVersion = 1;
constexpr char kMagic[4] = {'H', 'D', 'F', 'L'};

void write_attrs(BinaryWriter& w, const std::map<std::string, std::string>& attrs) {
  if (attrs.size() > 0xffff) throw FormatError("too many attributes");
  w.u16(static_cast<std::uint16_t>(attrs.size()));
  for (const auto& [key, value] : attrs) {
    w.str(key);
    w.str(value);
  }
}

std::map<std::string, std::string> read_attrs(BinaryReader& r) {
  std::map<std::string, std::string> attrs;
  const std::uint16_t n = r.u16();
  for (std::uint16_t i = 0; i < n; ++i) {
    auto key = r.str();
    attrs.emplace(std::move(key), r.str());
  }
  return attrs;
}

DType read_dtype(BinaryReader& r) {
  const std::uint8_t raw = r.u8();
  if (raw > static_cast<std::uint8_t>(DType::kI16))
    throw FormatError("unknown dtype tag " + std::to_string(raw));
  return static_cast<DType>(raw);
}

// Parses the header+shape+attrs of the dataset at the reader's position.
// Leaves the reader at the start of the payload size field.
Dataset read_dataset_header(BinaryReader& r) {
  Dataset ds;
  ds.name = r.str();
  ds.dtype = read_dtype(r);
  const std::uint8_t ndims = r.u8();
  ds.shape.reserve(ndims);
  for (std::uint8_t d = 0; d < ndims; ++d) ds.shape.push_back(r.u64());
  ds.attrs = read_attrs(r);
  return ds;
}

void check_magic(BinaryReader& r) {
  const auto magic = r.raw(4);
  if (std::memcmp(magic.data(), kMagic, 4) != 0)
    throw FormatError("not an hdfl file (bad magic)");
  const std::uint32_t version = r.u32();
  if (version != kVersion)
    throw FormatError("unsupported hdfl version " + std::to_string(version));
}

}  // namespace

std::size_t Dataset::element_count() const {
  std::size_t n = 1;
  for (auto d : shape) n *= static_cast<std::size_t>(d);
  return shape.empty() ? 0 : n;
}

void Dataset::validate() const {
  if (name.empty()) throw FormatError("dataset has empty name");
  if (data.size() != element_count() * dtype_size(dtype))
    throw FormatError("dataset '" + name + "' size mismatch: " +
                      std::to_string(data.size()) + " bytes vs shape");
}

namespace {
template <typename T>
std::span<const T> typed_view(const Dataset& ds, DType expected) {
  if (ds.dtype != expected)
    throw FormatError("dataset '" + ds.name + "' is " +
                      std::string(dtype_name(ds.dtype)) + ", expected " +
                      std::string(dtype_name(expected)));
  return {reinterpret_cast<const T*>(ds.data.data()), ds.data.size() / sizeof(T)};
}

template <typename T>
Dataset make_dataset(std::string name, std::vector<std::uint64_t> shape,
                     std::span<const T> values, DType dtype) {
  Dataset ds;
  ds.name = std::move(name);
  ds.dtype = dtype;
  ds.shape = std::move(shape);
  ds.data.resize(values.size_bytes());
  std::memcpy(ds.data.data(), values.data(), values.size_bytes());
  ds.validate();
  return ds;
}
}  // namespace

std::span<const float> Dataset::as_f32() const {
  return typed_view<float>(*this, DType::kF32);
}
std::span<const double> Dataset::as_f64() const {
  return typed_view<double>(*this, DType::kF64);
}
std::span<const std::int32_t> Dataset::as_i32() const {
  return typed_view<std::int32_t>(*this, DType::kI32);
}
std::span<const std::int16_t> Dataset::as_i16() const {
  return typed_view<std::int16_t>(*this, DType::kI16);
}
std::span<const std::uint8_t> Dataset::as_u8() const {
  return typed_view<std::uint8_t>(*this, DType::kU8);
}

Dataset Dataset::f32(std::string name, std::vector<std::uint64_t> shape,
                     std::span<const float> values) {
  return make_dataset(std::move(name), std::move(shape), values, DType::kF32);
}

Dataset Dataset::u8(std::string name, std::vector<std::uint64_t> shape,
                    std::span<const std::uint8_t> values) {
  return make_dataset(std::move(name), std::move(shape), values, DType::kU8);
}

Dataset Dataset::i16(std::string name, std::vector<std::uint64_t> shape,
                     std::span<const std::int16_t> values) {
  return make_dataset(std::move(name), std::move(shape), values, DType::kI16);
}

void HdflFile::add(Dataset dataset) {
  dataset.validate();
  const auto it = index_.find(dataset.name);
  if (it != index_.end()) {
    datasets_[it->second] = std::move(dataset);
  } else {
    index_.emplace(dataset.name, datasets_.size());
    datasets_.push_back(std::move(dataset));
  }
}

bool HdflFile::has(std::string_view name) const {
  return index_.find(name) != index_.end();
}

const Dataset& HdflFile::dataset(std::string_view name) const {
  const auto it = index_.find(name);
  if (it == index_.end())
    throw FormatError("no dataset named '" + std::string(name) + "'");
  return datasets_[it->second];
}

std::vector<std::string> HdflFile::names() const {
  std::vector<std::string> out;
  out.reserve(datasets_.size());
  for (const auto& ds : datasets_) out.push_back(ds.name);
  return out;
}

std::vector<std::byte> HdflFile::serialize() const {
  BinaryWriter w;
  w.raw(kMagic, 4);
  w.u32(kVersion);
  write_attrs(w, attrs_);
  w.u32(static_cast<std::uint32_t>(datasets_.size()));
  for (const auto& ds : datasets_) {
    ds.validate();
    w.str(ds.name);
    w.u8(static_cast<std::uint8_t>(ds.dtype));
    if (ds.shape.size() > 0xff) throw FormatError("too many dimensions");
    w.u8(static_cast<std::uint8_t>(ds.shape.size()));
    for (auto d : ds.shape) w.u64(d);
    write_attrs(w, ds.attrs);
    w.u64(ds.data.size());
    w.bytes(ds.data);
    w.u32(util::crc32(ds.data));
  }
  return w.take();
}

HdflFile HdflFile::deserialize(std::span<const std::byte> bytes) {
  BinaryReader r(bytes);
  check_magic(r);
  HdflFile file;
  file.attrs_ = read_attrs(r);
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    Dataset ds = read_dataset_header(r);
    const std::uint64_t size = r.u64();
    const auto payload = r.raw(static_cast<std::size_t>(size));
    ds.data.assign(payload.begin(), payload.end());
    const std::uint32_t crc = r.u32();
    if (crc != util::crc32(ds.data))
      throw FormatError("CRC mismatch in dataset '" + ds.name + "'");
    ds.validate();
    file.add(std::move(ds));
  }
  return file;
}

std::optional<Dataset> HdflFile::read_dataset(std::span<const std::byte> bytes,
                                              std::string_view name) {
  BinaryReader r(bytes);
  check_magic(r);
  read_attrs(r);
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    Dataset ds = read_dataset_header(r);
    const std::uint64_t size = r.u64();
    if (ds.name == name) {
      const auto payload = r.raw(static_cast<std::size_t>(size));
      ds.data.assign(payload.begin(), payload.end());
      const std::uint32_t crc = r.u32();
      if (crc != util::crc32(ds.data))
        throw FormatError("CRC mismatch in dataset '" + ds.name + "'");
      ds.validate();
      return ds;
    }
    r.skip(static_cast<std::size_t>(size) + 4);  // payload + crc
  }
  return std::nullopt;
}

}  // namespace mfw::storage
