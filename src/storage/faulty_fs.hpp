// Fault-injecting FileSystem decorator for resilience testing.
//
// Wraps a backing filesystem and corrupts read payloads (single bit flip)
// with a configured probability, and/or fails operations with transient
// errors. Used by tests to prove that the transfer layer's end-to-end CRC
// verification catches silent corruption and that retry paths engage.
#pragma once

#include "storage/filesystem.hpp"
#include "util/rng.hpp"

namespace mfw::storage {

struct FaultConfig {
  /// Probability that a read_file() payload is returned corrupted.
  double corrupt_read_probability = 0.0;
  /// Probability that a write_file() throws a transient error.
  double write_failure_probability = 0.0;
  std::uint64_t seed = 1;
};

class FaultyFs final : public FileSystem {
 public:
  /// `inner` is not owned and must outlive the decorator.
  FaultyFs(FileSystem& inner, FaultConfig config);

  void write_file(std::string_view path,
                  std::span<const std::byte> data) override;
  std::vector<std::byte> read_file(std::string_view path) const override;
  bool exists(std::string_view path) const override;
  std::uint64_t file_size(std::string_view path) const override;
  std::vector<FileInfo> list(std::string_view pattern) const override;
  bool remove(std::string_view path) override;
  void rename(std::string_view from, std::string_view to) override;
  std::string name() const override;

  std::size_t corrupted_reads() const { return corrupted_reads_; }
  std::size_t failed_writes() const { return failed_writes_; }

 private:
  FileSystem& inner_;
  FaultConfig config_;
  mutable util::Rng rng_;
  mutable std::size_t corrupted_reads_ = 0;
  std::size_t failed_writes_ = 0;
};

}  // namespace mfw::storage
