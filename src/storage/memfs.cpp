#include "storage/memfs.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace mfw::storage {

void FileSystem::write_text(std::string_view path, std::string_view text) {
  write_file(path, std::as_bytes(std::span(text.data(), text.size())));
}

std::string FileSystem::read_text(std::string_view path) const {
  const auto data = read_file(path);
  return std::string(reinterpret_cast<const char*>(data.data()), data.size());
}

std::uint64_t FileSystem::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& info : list("")) total += info.size;
  return total;
}

std::size_t FileSystem::file_count() const { return list("").size(); }

MemFs::MemFs(std::string name, const sim::Clock* clock)
    : name_(std::move(name)), clock_(clock) {}

double MemFs::stamp() {
  if (clock_) return clock_->now();
  return ++counter_;
}

void MemFs::write_file(std::string_view path, std::span<const std::byte> data) {
  FileInfo info;
  {
    std::lock_guard lock(mu_);
    auto& entry = files_[std::string(path)];
    entry.data.assign(data.begin(), data.end());
    entry.mtime = stamp();
    info = FileInfo{std::string(path), entry.data.size(), entry.mtime};
    journal_.push_back(info);
  }
  for (const auto& cb : write_callbacks_) cb(info);
}

std::vector<std::byte> MemFs::read_file(std::string_view path) const {
  std::lock_guard lock(mu_);
  const auto it = files_.find(path);
  if (it == files_.end())
    throw std::runtime_error(name_ + ": no such file: " + std::string(path));
  return it->second.data;
}

bool MemFs::exists(std::string_view path) const {
  std::lock_guard lock(mu_);
  return files_.find(path) != files_.end();
}

std::uint64_t MemFs::file_size(std::string_view path) const {
  std::lock_guard lock(mu_);
  const auto it = files_.find(path);
  if (it == files_.end())
    throw std::runtime_error(name_ + ": no such file: " + std::string(path));
  return it->second.data.size();
}

std::vector<FileInfo> MemFs::list(std::string_view pattern) const {
  std::lock_guard lock(mu_);
  std::vector<FileInfo> out;
  for (const auto& [path, entry] : files_) {
    if (pattern.empty() || util::glob_match(pattern, path)) {
      out.push_back(FileInfo{path, entry.data.size(), entry.mtime});
    }
  }
  return out;
}

bool MemFs::remove(std::string_view path) {
  std::lock_guard lock(mu_);
  return files_.erase(std::string(path)) > 0;
}

void MemFs::rename(std::string_view from, std::string_view to) {
  std::lock_guard lock(mu_);
  auto it = files_.find(from);
  if (it == files_.end())
    throw std::runtime_error(name_ + ": no such file: " + std::string(from));
  auto node = files_.extract(it);
  node.key() = std::string(to);
  const double mtime = node.mapped().mtime;
  const std::uint64_t size = node.mapped().data.size();
  files_.insert_or_assign(std::string(to), std::move(node.mapped()));
  journal_.push_back(FileInfo{std::string(to), size, mtime});
}

FileSystem::JournalCursor MemFs::journal_since(JournalCursor cursor,
                                               std::vector<FileInfo>& out) const {
  std::lock_guard lock(mu_);
  for (std::size_t i = cursor; i < journal_.size(); ++i)
    out.push_back(journal_[i]);
  return journal_.size();
}

void MemFs::on_write(std::function<void(const FileInfo&)> callback) {
  write_callbacks_.push_back(std::move(callback));
}

}  // namespace mfw::storage
