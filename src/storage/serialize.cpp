#include "storage/serialize.hpp"

namespace mfw::storage {

void BinaryWriter::u16(std::uint16_t v) {
  const std::uint8_t b[2] = {static_cast<std::uint8_t>(v),
                             static_cast<std::uint8_t>(v >> 8)};
  raw(b, 2);
}

void BinaryWriter::u32(std::uint32_t v) {
  std::uint8_t b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  raw(b, 4);
}

void BinaryWriter::u64(std::uint64_t v) {
  std::uint8_t b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  raw(b, 8);
}

void BinaryWriter::f32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  u32(bits);
}

void BinaryWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  u64(bits);
}

void BinaryWriter::str(std::string_view s) {
  if (s.size() > 0xffff) throw FormatError("string too long to serialize");
  u16(static_cast<std::uint16_t>(s.size()));
  raw(s.data(), s.size());
}

void BinaryWriter::raw(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::byte*>(data);
  buffer_.insert(buffer_.end(), p, p + size);
}

void BinaryWriter::patch_u32(std::size_t offset, std::uint32_t v) {
  if (offset + 4 > buffer_.size()) throw FormatError("patch_u32 out of range");
  for (int i = 0; i < 4; ++i)
    buffer_[offset + static_cast<std::size_t>(i)] =
        static_cast<std::byte>(v >> (8 * i));
}

void BinaryReader::need(std::size_t size) const {
  if (offset_ + size > data_.size())
    throw FormatError("truncated input: need " + std::to_string(size) +
                      " bytes at offset " + std::to_string(offset_));
}

std::uint8_t BinaryReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[offset_++]);
}

std::uint16_t BinaryReader::u16() {
  need(2);
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i)
    v = static_cast<std::uint16_t>(
        v | (static_cast<std::uint16_t>(static_cast<std::uint8_t>(
                 data_[offset_ + static_cast<std::size_t>(i)]))
             << (8 * i)));
  offset_ += 2;
  return v;
}

std::uint32_t BinaryReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(
             data_[offset_ + static_cast<std::size_t>(i)]))
         << (8 * i);
  offset_ += 4;
  return v;
}

std::uint64_t BinaryReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(
             data_[offset_ + static_cast<std::size_t>(i)]))
         << (8 * i);
  offset_ += 8;
  return v;
}

float BinaryReader::f32() {
  const std::uint32_t bits = u32();
  float v;
  std::memcpy(&v, &bits, 4);
  return v;
}

double BinaryReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

std::string BinaryReader::str() {
  const std::uint16_t len = u16();
  need(len);
  std::string s(reinterpret_cast<const char*>(data_.data() + offset_), len);
  offset_ += len;
  return s;
}

std::span<const std::byte> BinaryReader::raw(std::size_t size) {
  need(size);
  auto view = data_.subspan(offset_, size);
  offset_ += size;
  return view;
}

void BinaryReader::skip(std::size_t size) {
  need(size);
  offset_ += size;
}

}  // namespace mfw::storage
