#include "storage/posixfs.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace mfw::storage {

namespace fs = std::filesystem;

PosixFs::PosixFs(fs::path root, std::string name)
    : root_(std::move(root)), name_(std::move(name)) {
  fs::create_directories(root_);
  root_ = fs::weakly_canonical(root_);
}

fs::path PosixFs::resolve(std::string_view path) const {
  for (const auto& segment : util::split(path, '/')) {
    if (segment == "..")
      throw std::invalid_argument(name_ + ": '..' not allowed in paths");
  }
  return root_ / fs::path(path);
}

void PosixFs::write_file(std::string_view path,
                         std::span<const std::byte> data) {
  const fs::path full = resolve(path);
  fs::create_directories(full.parent_path());
  // Write-then-rename for atomicity (readers never see partial files — the
  // HDF-partial-read hazard the paper works around).
  const fs::path tmp = full.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw std::runtime_error(name_ + ": cannot write " + full.string());
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    if (!out)
      throw std::runtime_error(name_ + ": short write to " + full.string());
  }
  fs::rename(tmp, full);
  std::lock_guard lock(mu_);
  stamps_[std::string(path)] = ++counter_;
}

std::vector<std::byte> PosixFs::read_file(std::string_view path) const {
  const fs::path full = resolve(path);
  std::ifstream in(full, std::ios::binary | std::ios::ate);
  if (!in)
    throw std::runtime_error(name_ + ": no such file: " + std::string(path));
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::byte> data(size);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(size));
  if (!in)
    throw std::runtime_error(name_ + ": short read from " + std::string(path));
  return data;
}

bool PosixFs::exists(std::string_view path) const {
  return fs::is_regular_file(resolve(path));
}

std::uint64_t PosixFs::file_size(std::string_view path) const {
  const fs::path full = resolve(path);
  if (!fs::is_regular_file(full))
    throw std::runtime_error(name_ + ": no such file: " + std::string(path));
  return static_cast<std::uint64_t>(fs::file_size(full));
}

std::vector<FileInfo> PosixFs::list(std::string_view pattern) const {
  std::vector<FileInfo> out;
  std::lock_guard lock(mu_);
  for (const auto& entry : fs::recursive_directory_iterator(root_)) {
    if (!entry.is_regular_file()) continue;
    const std::string key = entry.path().lexically_relative(root_).generic_string();
    if (util::ends_with(key, ".tmp")) continue;
    if (!pattern.empty() && !util::glob_match(pattern, key)) continue;
    FileInfo info;
    info.path = key;
    info.size = static_cast<std::uint64_t>(entry.file_size());
    const auto it = stamps_.find(key);
    info.mtime = it != stamps_.end() ? it->second : 0.0;
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const FileInfo& a, const FileInfo& b) { return a.path < b.path; });
  return out;
}

bool PosixFs::remove(std::string_view path) {
  std::lock_guard lock(mu_);
  stamps_.erase(std::string(path));
  return fs::remove(resolve(path));
}

void PosixFs::rename(std::string_view from, std::string_view to) {
  const fs::path src = resolve(from);
  if (!fs::is_regular_file(src))
    throw std::runtime_error(name_ + ": no such file: " + std::string(from));
  const fs::path dst = resolve(to);
  fs::create_directories(dst.parent_path());
  fs::rename(src, dst);
  std::lock_guard lock(mu_);
  const auto it = stamps_.find(std::string(from));
  const double stamp = it != stamps_.end() ? it->second : ++counter_;
  if (it != stamps_.end()) stamps_.erase(it);
  stamps_[std::string(to)] = stamp;
}

}  // namespace mfw::storage
