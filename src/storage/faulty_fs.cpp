#include "storage/faulty_fs.hpp"

#include <stdexcept>

namespace mfw::storage {

FaultyFs::FaultyFs(FileSystem& inner, FaultConfig config)
    : inner_(inner), config_(config), rng_(config.seed) {}

void FaultyFs::write_file(std::string_view path,
                          std::span<const std::byte> data) {
  if (rng_.bernoulli(config_.write_failure_probability)) {
    ++failed_writes_;
    throw std::runtime_error(name() + ": transient write failure on " +
                             std::string(path));
  }
  inner_.write_file(path, data);
}

std::vector<std::byte> FaultyFs::read_file(std::string_view path) const {
  auto data = inner_.read_file(path);
  if (!data.empty() && rng_.bernoulli(config_.corrupt_read_probability)) {
    ++corrupted_reads_;
    const auto index = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(data.size()) - 1));
    data[index] ^= std::byte{0x10};
  }
  return data;
}

bool FaultyFs::exists(std::string_view path) const {
  return inner_.exists(path);
}

std::uint64_t FaultyFs::file_size(std::string_view path) const {
  return inner_.file_size(path);
}

std::vector<FileInfo> FaultyFs::list(std::string_view pattern) const {
  return inner_.list(pattern);
}

bool FaultyFs::remove(std::string_view path) { return inner_.remove(path); }

void FaultyFs::rename(std::string_view from, std::string_view to) {
  inner_.rename(from, to);
}

std::string FaultyFs::name() const { return inner_.name() + "+faulty"; }

}  // namespace mfw::storage
