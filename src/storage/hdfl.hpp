// hdfl ("HDF-lite"): the container format for synthetic MODIS granules.
//
// NASA distributes MOD02/MOD03/MOD06 as HDF4 files: a set of named,
// multidimensional, typed scientific datasets with attributes. hdfl keeps
// exactly that structure — named datasets with dtype, shape, string
// attributes, and per-dataset CRC32 — in a simple little-endian layout:
//
//   "HDFL" u32_version u16_global_attr_count {attr...}
//   u32_dataset_count
//   per dataset: name, dtype u8, ndims u8, dims u64[], attr_count u16,
//                {attr...}, data_size u64, data bytes, crc u32
//
// The reader validates bounds and CRCs; read_dataset() can extract one
// dataset without materializing the others (the "partial read" the paper's
// preprocessing step depends on — it reads only 6 of MOD02's 36 bands).
#pragma once

#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "storage/dtype.hpp"
#include "storage/serialize.hpp"

namespace mfw::storage {

struct Dataset {
  std::string name;
  DType dtype = DType::kF32;
  std::vector<std::uint64_t> shape;
  std::map<std::string, std::string> attrs;
  std::vector<std::byte> data;

  std::size_t element_count() const;
  /// Checks data size == element_count * dtype_size; throws FormatError.
  void validate() const;

  std::span<const float> as_f32() const;
  std::span<const double> as_f64() const;
  std::span<const std::int32_t> as_i32() const;
  std::span<const std::int16_t> as_i16() const;
  std::span<const std::uint8_t> as_u8() const;

  static Dataset f32(std::string name, std::vector<std::uint64_t> shape,
                     std::span<const float> values);
  static Dataset u8(std::string name, std::vector<std::uint64_t> shape,
                    std::span<const std::uint8_t> values);
  static Dataset i16(std::string name, std::vector<std::uint64_t> shape,
                     std::span<const std::int16_t> values);
};

class HdflFile {
 public:
  /// Adds or replaces a dataset (validated).
  void add(Dataset dataset);

  bool has(std::string_view name) const;
  const Dataset& dataset(std::string_view name) const;
  std::vector<std::string> names() const;
  std::size_t dataset_count() const { return datasets_.size(); }

  std::map<std::string, std::string>& attrs() { return attrs_; }
  const std::map<std::string, std::string>& attrs() const { return attrs_; }

  std::vector<std::byte> serialize() const;
  static HdflFile deserialize(std::span<const std::byte> bytes);

  /// Extracts a single dataset without parsing the payloads of the others.
  /// Returns nullopt when absent. Still CRC-checks the extracted dataset.
  static std::optional<Dataset> read_dataset(std::span<const std::byte> bytes,
                                             std::string_view name);

 private:
  std::map<std::string, std::string> attrs_;
  std::vector<Dataset> datasets_;           // insertion order
  std::map<std::string, std::size_t, std::less<>> index_;
};

}  // namespace mfw::storage
