#include "storage/ncl.hpp"

#include <cstring>

#include "util/crc32.hpp"

namespace mfw::storage {

namespace {
constexpr char kMagic[4] = {'N', 'C', 'L', '1'};

void write_attrs(BinaryWriter& w, const std::map<std::string, std::string>& attrs) {
  if (attrs.size() > 0xffff) throw FormatError("too many attributes");
  w.u16(static_cast<std::uint16_t>(attrs.size()));
  for (const auto& [key, value] : attrs) {
    w.str(key);
    w.str(value);
  }
}

std::map<std::string, std::string> read_attrs(BinaryReader& r) {
  std::map<std::string, std::string> attrs;
  const std::uint16_t n = r.u16();
  for (std::uint16_t i = 0; i < n; ++i) {
    auto key = r.str();
    attrs.emplace(std::move(key), r.str());
  }
  return attrs;
}

template <typename T>
std::span<const T> typed_view(const NclVar& var, DType expected) {
  if (var.dtype != expected)
    throw FormatError("variable '" + var.name + "' is " +
                      std::string(dtype_name(var.dtype)) + ", expected " +
                      std::string(dtype_name(expected)));
  return {reinterpret_cast<const T*>(var.data.data()), var.data.size() / sizeof(T)};
}
}  // namespace

std::span<const float> NclVar::as_f32() const {
  return typed_view<float>(*this, DType::kF32);
}
std::span<const std::int32_t> NclVar::as_i32() const {
  return typed_view<std::int32_t>(*this, DType::kI32);
}
std::span<const double> NclVar::as_f64() const {
  return typed_view<double>(*this, DType::kF64);
}

void NclFile::add_dim(const std::string& name, std::uint64_t length) {
  const auto it = dim_index_.find(name);
  if (it != dim_index_.end()) {
    if (it->second != length)
      throw FormatError("dimension '" + name + "' redefined with length " +
                        std::to_string(length) + " (was " +
                        std::to_string(it->second) + ")");
    return;
  }
  dim_index_.emplace(name, length);
  dims_.emplace_back(name, length);
}

bool NclFile::has_dim(std::string_view name) const {
  return dim_index_.find(name) != dim_index_.end();
}

std::uint64_t NclFile::dim(std::string_view name) const {
  const auto it = dim_index_.find(name);
  if (it == dim_index_.end())
    throw FormatError("no dimension named '" + std::string(name) + "'");
  return it->second;
}

std::size_t NclFile::element_count(const std::vector<std::string>& dims) const {
  std::size_t n = 1;
  for (const auto& d : dims) n *= static_cast<std::size_t>(dim(d));
  return dims.empty() ? 0 : n;
}

void NclFile::add_var(NclVar var) {
  if (var.name.empty()) throw FormatError("variable has empty name");
  const std::size_t expected = element_count(var.dims) * dtype_size(var.dtype);
  if (var.data.size() != expected)
    throw FormatError("variable '" + var.name + "' has " +
                      std::to_string(var.data.size()) + " bytes, expected " +
                      std::to_string(expected));
  const auto it = var_index_.find(var.name);
  if (it != var_index_.end()) {
    vars_[it->second] = std::move(var);
  } else {
    var_index_.emplace(var.name, vars_.size());
    vars_.push_back(std::move(var));
  }
}

void NclFile::add_f32(const std::string& name, std::vector<std::string> dims,
                      std::span<const float> values,
                      std::map<std::string, std::string> attrs) {
  NclVar var;
  var.name = name;
  var.dtype = DType::kF32;
  var.dims = std::move(dims);
  var.attrs = std::move(attrs);
  var.data.resize(values.size_bytes());
  std::memcpy(var.data.data(), values.data(), values.size_bytes());
  add_var(std::move(var));
}

void NclFile::add_i32(const std::string& name, std::vector<std::string> dims,
                      std::span<const std::int32_t> values,
                      std::map<std::string, std::string> attrs) {
  NclVar var;
  var.name = name;
  var.dtype = DType::kI32;
  var.dims = std::move(dims);
  var.attrs = std::move(attrs);
  var.data.resize(values.size_bytes());
  std::memcpy(var.data.data(), values.data(), values.size_bytes());
  add_var(std::move(var));
}

bool NclFile::has_var(std::string_view name) const {
  return var_index_.find(name) != var_index_.end();
}

const NclVar& NclFile::var(std::string_view name) const {
  const auto it = var_index_.find(name);
  if (it == var_index_.end())
    throw FormatError("no variable named '" + std::string(name) + "'");
  return vars_[it->second];
}

std::vector<std::string> NclFile::var_names() const {
  std::vector<std::string> out;
  out.reserve(vars_.size());
  for (const auto& var : vars_) out.push_back(var.name);
  return out;
}

std::vector<std::byte> NclFile::serialize() const {
  BinaryWriter w;
  w.raw(kMagic, 4);
  if (dims_.size() > 0xffff) throw FormatError("too many dimensions");
  w.u16(static_cast<std::uint16_t>(dims_.size()));
  for (const auto& [name, length] : dims_) {
    w.str(name);
    w.u64(length);
  }
  write_attrs(w, attrs_);
  if (vars_.size() > 0xffff) throw FormatError("too many variables");
  w.u16(static_cast<std::uint16_t>(vars_.size()));
  for (const auto& var : vars_) {
    w.str(var.name);
    w.u8(static_cast<std::uint8_t>(var.dtype));
    if (var.dims.size() > 0xff) throw FormatError("too many variable dims");
    w.u8(static_cast<std::uint8_t>(var.dims.size()));
    for (const auto& d : var.dims) w.str(d);
    write_attrs(w, var.attrs);
    w.u64(var.data.size());
    w.bytes(var.data);
    w.u32(util::crc32(var.data));
  }
  return w.take();
}

NclFile NclFile::deserialize(std::span<const std::byte> bytes) {
  BinaryReader r(bytes);
  const auto magic = r.raw(4);
  if (std::memcmp(magic.data(), kMagic, 4) != 0)
    throw FormatError("not an ncl file (bad magic)");
  NclFile file;
  const std::uint16_t ndims = r.u16();
  for (std::uint16_t i = 0; i < ndims; ++i) {
    auto name = r.str();
    file.add_dim(name, r.u64());
  }
  file.attrs_ = read_attrs(r);
  const std::uint16_t nvars = r.u16();
  for (std::uint16_t i = 0; i < nvars; ++i) {
    NclVar var;
    var.name = r.str();
    const std::uint8_t tag = r.u8();
    if (tag > static_cast<std::uint8_t>(DType::kI16))
      throw FormatError("unknown dtype tag " + std::to_string(tag));
    var.dtype = static_cast<DType>(tag);
    const std::uint8_t vdims = r.u8();
    var.dims.reserve(vdims);
    for (std::uint8_t d = 0; d < vdims; ++d) var.dims.push_back(r.str());
    var.attrs = read_attrs(r);
    const std::uint64_t size = r.u64();
    const auto payload = r.raw(static_cast<std::size_t>(size));
    var.data.assign(payload.begin(), payload.end());
    const std::uint32_t crc = r.u32();
    if (crc != util::crc32(var.data))
      throw FormatError("CRC mismatch in variable '" + var.name + "'");
    file.add_var(std::move(var));
  }
  return file;
}

}  // namespace mfw::storage
