#include "modis/geo.hpp"

#include <cmath>
#include <numbers>

namespace mfw::modis {

namespace {
constexpr double kPi = std::numbers::pi;
constexpr double kDeg = 180.0 / kPi;
constexpr double kRad = kPi / 180.0;
// Orbital period ~98.8 minutes => 14.57 orbits/day.
constexpr double kOrbitsPerDay = 14.57;
constexpr double kInclinationDeg = 98.2;
// Cross-track half-width of the swath in degrees of arc (~2330 km wide).
constexpr double kHalfSwathDeg = 10.5;

double wrap_lon(double lon) {
  while (lon >= 180.0) lon -= 360.0;
  while (lon < -180.0) lon += 360.0;
  return lon;
}
}  // namespace

LatLon ground_track(Satellite satellite, int slot, double u) {
  // Time of day in [0,1) at this position.
  const double t = (static_cast<double>(slot) + u) / kSlotsPerDay;
  // Orbit phase (radians): Terra descends on the day side ~10:30, Aqua
  // ascends ~13:30; a fixed per-satellite phase offset realises that.
  const double phase0 = satellite == Satellite::kTerra ? 0.35 : 1.82;
  const double phase = 2.0 * kPi * kOrbitsPerDay * t + phase0;
  const double inc = kInclinationDeg * kRad;
  const double lat = std::asin(std::sin(inc) * std::sin(phase)) * kDeg;
  // Node longitude regresses ~360°/day relative to the rotating Earth;
  // add the in-orbit longitude advance.
  const double node = -360.0 * t + (satellite == Satellite::kTerra ? -78.0 : 102.0);
  const double in_orbit =
      std::atan2(std::cos(inc) * std::sin(phase), std::cos(phase)) * kDeg;
  return {lat, wrap_lon(node + in_orbit)};
}

double solar_zenith_deg(const LatLon& where, double utc_day_fraction,
                        int day_of_year) {
  // Solar declination (Cooper's formula).
  const double decl =
      23.45 * kRad *
      std::sin(2.0 * kPi * (284.0 + static_cast<double>(day_of_year)) / 365.0);
  // Hour angle from local solar time.
  const double local_time = utc_day_fraction * 24.0 + where.lon / 15.0;
  const double hour_angle = (local_time - 12.0) * 15.0 * kRad;
  const double lat = where.lat * kRad;
  const double cos_zenith = std::sin(lat) * std::sin(decl) +
                            std::cos(lat) * std::cos(decl) * std::cos(hour_angle);
  return std::acos(std::fmin(1.0, std::fmax(-1.0, cos_zenith))) * kDeg;
}

LatLon swath_pixel(Satellite satellite, int slot, double row_frac,
                   double col_frac) {
  const LatLon centre = ground_track(satellite, slot, row_frac);
  // Cross-track offset perpendicular to the ground track. We approximate the
  // track direction from two nearby centre points.
  const LatLon ahead = ground_track(satellite, slot, row_frac + 1e-3);
  double dlat = ahead.lat - centre.lat;
  double dlon = wrap_lon(ahead.lon - centre.lon);
  const double norm = std::sqrt(dlat * dlat + dlon * dlon);
  if (norm > 1e-12) {
    dlat /= norm;
    dlon /= norm;
  }
  // Perpendicular direction (dlon, -dlat), scaled by the cross-track angle.
  const double offset = (col_frac - 0.5) * 2.0 * kHalfSwathDeg;
  const double cos_lat = std::fmax(0.2, std::cos(centre.lat * kRad));
  double lat = centre.lat + dlon * offset;
  double lon = centre.lon - dlat * offset / cos_lat;
  lat = std::fmin(90.0, std::fmax(-90.0, lat));
  return {lat, wrap_lon(lon)};
}

bool is_daytime(Satellite satellite, int slot, int day_of_year) {
  const LatLon centre = ground_track(satellite, slot, 0.5);
  const double t = (static_cast<double>(slot) + 0.5) / kSlotsPerDay;
  return solar_zenith_deg(centre, t, day_of_year) < 85.0;
}

}  // namespace mfw::modis
