// LAADS-DAAC-like archive catalog and content service.
//
// NASA's LAADS DAAC serves MODIS products over HTTPS with up to 288 files
// per product per day (one per 5-minute granule). ArchiveService plays that
// role for the workflow: it enumerates granules for (product, satellite,
// time span), reports realistic file sizes — calibrated to the paper's
// per-day volumes (MOD02 ~32 GB, MOD03 ~8.4 GB, MOD06 ~18 GB) — and can
// materialize actual hdfl bytes at any geometry for the preprocessing and
// inference stages.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "modis/products.hpp"

namespace mfw::modis {

enum class ProductKind : std::uint8_t { kMod02 = 0, kMod03 = 1, kMod06 = 2 };

/// LAADS short name, e.g. "MOD021KM" (Terra) / "MYD021KM" (Aqua).
std::string product_short_name(ProductKind kind, Satellite satellite);

/// Parses "MOD021KM" etc. Returns nullopt for unknown names.
std::optional<std::pair<ProductKind, Satellite>> parse_product_name(
    std::string_view name);

/// Identifies one archive file.
struct GranuleId {
  ProductKind product = ProductKind::kMod02;
  Satellite satellite = Satellite::kTerra;
  int year = 2022;
  int day_of_year = 1;
  int slot = 0;

  /// Archive filename, e.g. "MOD021KM.A2022001.0755.061.hdf".
  std::string filename() const;

  bool operator==(const GranuleId&) const = default;
};

/// Parses a filename produced by GranuleId::filename().
std::optional<GranuleId> parse_granule_filename(std::string_view name);

struct CatalogEntry {
  GranuleId id;
  std::uint64_t size_bytes = 0;
};

/// Day range within one year: [first_day, last_day], 1-based inclusive.
struct DaySpan {
  int year = 2022;
  int first_day = 1;
  int last_day = 1;
};

class ArchiveService {
 public:
  explicit ArchiveService(std::uint64_t world_seed = 2022);

  /// All granule files of a product within a day span (288/day), in
  /// chronological order.
  std::vector<CatalogEntry> list(ProductKind product, Satellite satellite,
                                 const DaySpan& span) const;

  /// Deterministic archive file size for a granule.
  std::uint64_t size_of(const GranuleId& id) const;

  /// Generates the product content at the requested geometry and serializes
  /// it to hdfl bytes. (Real downloads move `size_of` bytes; the pipeline
  /// materializes content at working geometry — see DESIGN.md.)
  std::vector<std::byte> materialize(const GranuleId& id,
                                     const GranuleGeometry& geometry) const;

  const GranuleGenerator& generator() const { return generator_; }

 private:
  GranuleGenerator generator_;
  std::uint64_t seed_;
};

}  // namespace mfw::modis
