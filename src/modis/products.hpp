// Synthetic MODIS product synthesis (MOD02 / MOD03 / MOD06).
//
// Substitution note (see DESIGN.md): NASA's real granules are unavailable
// offline, so we generate procedurally consistent products. Consistency
// matters more than radiometric realism: the preprocessing stage joins all
// three products per time step, so the same (satellite, day, slot) must see
// the same geography, cloud field, and day/night state in MOD02, MOD03, and
// MOD06 — which holds here because all three sample one seeded EarthModel.
//
// Band layout: real RICC/AICCA uses 6 of MODIS's 36 bands (6, 7, 20, 28, 29,
// 31 — two shortwave reflectance, one SWIR, three thermal IR). Our generator
// orders its bands so that bands [0..5] carry exactly those roles; at full
// geometry (36 bands) the remaining bands are filled with correlated
// radiances so file sizes and partial-read behaviour match.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "modis/geo.hpp"
#include "modis/noise.hpp"
#include "storage/hdfl.hpp"

namespace mfw::modis {

/// Grid dimensions of a granule. Full MODIS scale is 2030 x 1354 x 36; tests
/// and examples use reduced geometry for speed — all code paths are
/// geometry-agnostic.
struct GranuleGeometry {
  int rows = 2030;
  int cols = 1354;
  int bands = 36;

  std::size_t pixels() const {
    return static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
  }
};

inline constexpr GranuleGeometry kFullGeometry{2030, 1354, 36};
/// ~1/8 linear scale; keeps a 2x1 tile grid with 128-px tiles.
inline constexpr GranuleGeometry kSmallGeometry{256, 170, 8};

/// Identifies one 5-minute granule of one product family.
struct GranuleSpec {
  Satellite satellite = Satellite::kTerra;
  int year = 2022;
  int day_of_year = 1;  // 1-based
  int slot = 0;         // 0..287
  GranuleGeometry geometry{};
  std::uint64_t world_seed = 2022;
};

/// Shared procedural geography: continents, sea-surface temperature, and the
/// daily weather (cloud) field. One instance per world seed; all products of
/// all granules sample it, which is what keeps them mutually consistent.
class EarthModel {
 public:
  explicit EarthModel(std::uint64_t seed);

  /// True over continents/islands (~30% of the globe).
  bool is_land(const LatLon& p) const;

  /// Cloud presence probability in [0, 1] for a day's weather.
  double cloud_intensity(const LatLon& p, int day_of_year) const;

  /// Cloud-top pressure proxy in hPa (lower = higher cloud); only meaningful
  /// where cloud_intensity is high.
  double cloud_top_pressure(const LatLon& p, int day_of_year) const;

  /// Sea-surface temperature proxy in Kelvin.
  double surface_temperature(const LatLon& p) const;

 private:
  NoiseField continents_;
  NoiseField weather_;
  NoiseField texture_;
  NoiseField pressure_;
};

/// MOD03: geolocation + land/sea mask + solar zenith, row-major [rows][cols].
struct Mod03Granule {
  GranuleSpec spec;
  std::vector<float> latitude;
  std::vector<float> longitude;
  std::vector<std::uint8_t> land_mask;  // 1 = land
  std::vector<float> solar_zenith;      // degrees

  storage::HdflFile to_hdfl() const;
  static Mod03Granule from_hdfl(const storage::HdflFile& file);
};

/// MOD06: cloud mask and derived physical properties, row-major.
struct Mod06Granule {
  GranuleSpec spec;
  std::vector<std::uint8_t> cloud_mask;  // 1 = cloudy
  std::vector<float> cloud_optical_thickness;
  std::vector<float> cloud_top_pressure;  // hPa
  std::vector<float> cloud_water_path;    // g/m^2

  storage::HdflFile to_hdfl() const;
  static Mod06Granule from_hdfl(const storage::HdflFile& file);
};

/// MOD02: calibrated radiances, [bands][rows][cols]. Night granules carry
/// fill values (-999) in the reflective bands [0..2], as with real L1B.
struct Mod02Granule {
  GranuleSpec spec;
  bool daytime = true;
  std::vector<float> radiance;  // bands * rows * cols

  float at(int band, int row, int col) const;
  storage::HdflFile to_hdfl() const;
  static Mod02Granule from_hdfl(const storage::HdflFile& file);
};

inline constexpr float kFillValue = -999.0f;

/// Generates the three products for a spec. Deterministic in (spec, seed).
class GranuleGenerator {
 public:
  explicit GranuleGenerator(std::uint64_t world_seed = 2022);

  Mod03Granule mod03(const GranuleSpec& spec) const;
  Mod06Granule mod06(const GranuleSpec& spec) const;
  /// Requires the matching MOD03/MOD06 content internally; generates it on
  /// the fly so callers can request MOD02 alone.
  Mod02Granule mod02(const GranuleSpec& spec) const;

  const EarthModel& earth() const { return earth_; }

 private:
  std::uint64_t seed_;
  EarthModel earth_;
};

/// Coarse per-granule workload statistics used by the discrete-event
/// benchmarks: candidate 128-px tiles (no-land) and selected ocean-cloud
/// tiles (cloud fraction >= 0.3), estimated by sparse sampling — no full
/// granule is materialized. Deterministic.
struct GranuleStats {
  bool daytime = false;
  int candidate_tiles = 0;   // tiles with zero land pixels (sampled)
  int selected_tiles = 0;    // candidates passing the cloud threshold
  double mean_cloud_fraction = 0.0;  // over candidates
};

GranuleStats estimate_granule_stats(const GranuleGenerator& generator,
                                    const GranuleSpec& spec,
                                    int tile_size = 128,
                                    int samples_per_axis = 6);

}  // namespace mfw::modis
