#include "modis/catalog.hpp"

#include <cstdio>
#include <stdexcept>

#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace mfw::modis {

namespace {

// Mean archive file sizes calibrated to the paper's per-day volumes
// (32 GB / 8.4 GB / 18 GB across 288 granules).
std::uint64_t mean_size(ProductKind kind) {
  switch (kind) {
    // MOD02 carries a 1.31x base factor compensating the 0.6x night-granule
    // compression applied in size_of(), so the *day total* lands at the
    // paper's ~32 GB.
    case ProductKind::kMod02:
      return static_cast<std::uint64_t>(1.31 * 32.0 *
                                        static_cast<double>(util::kGiB)) /
             288;
    case ProductKind::kMod03: return static_cast<std::uint64_t>(8.4 * static_cast<double>(util::kGiB)) / 288;
    case ProductKind::kMod06: return 18ULL * util::kGiB / 288;
  }
  return 0;
}

const char* kind_tag(ProductKind kind) {
  switch (kind) {
    case ProductKind::kMod02: return "021KM";
    case ProductKind::kMod03: return "03";
    case ProductKind::kMod06: return "06_L2";
  }
  return "";
}

}  // namespace

std::string product_short_name(ProductKind kind, Satellite satellite) {
  const char* prefix = satellite == Satellite::kTerra ? "MOD" : "MYD";
  return std::string(prefix) + kind_tag(kind);
}

std::optional<std::pair<ProductKind, Satellite>> parse_product_name(
    std::string_view name) {
  Satellite satellite;
  if (util::starts_with(name, "MOD")) {
    satellite = Satellite::kTerra;
  } else if (util::starts_with(name, "MYD")) {
    satellite = Satellite::kAqua;
  } else {
    return std::nullopt;
  }
  const auto tag = name.substr(3);
  for (ProductKind kind :
       {ProductKind::kMod02, ProductKind::kMod03, ProductKind::kMod06}) {
    if (tag == kind_tag(kind)) return std::make_pair(kind, satellite);
  }
  return std::nullopt;
}

std::string GranuleId::filename() const {
  const int minutes = slot * 5;
  return util::strformat("%s.A%04d%03d.%02d%02d.061.hdf",
                         product_short_name(product, satellite).c_str(), year,
                         day_of_year, minutes / 60, minutes % 60);
}

std::optional<GranuleId> parse_granule_filename(std::string_view name) {
  const auto parts = util::split(name, '.');
  if (parts.size() != 5 || parts[4] != "hdf") return std::nullopt;
  const auto product = parse_product_name(parts[0]);
  if (!product) return std::nullopt;
  if (parts[1].size() != 8 || parts[1][0] != 'A') return std::nullopt;
  if (parts[2].size() != 4) return std::nullopt;
  GranuleId id;
  id.product = product->first;
  id.satellite = product->second;
  try {
    id.year = std::stoi(parts[1].substr(1, 4));
    id.day_of_year = std::stoi(parts[1].substr(5, 3));
    const int hh = std::stoi(parts[2].substr(0, 2));
    const int mm = std::stoi(parts[2].substr(2, 2));
    if (mm % 5 != 0) return std::nullopt;
    id.slot = hh * 12 + mm / 5;
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (id.slot < 0 || id.slot >= kSlotsPerDay) return std::nullopt;
  if (id.day_of_year < 1 || id.day_of_year > 366) return std::nullopt;
  return id;
}

ArchiveService::ArchiveService(std::uint64_t world_seed)
    : generator_(world_seed), seed_(world_seed) {}

std::vector<CatalogEntry> ArchiveService::list(ProductKind product,
                                               Satellite satellite,
                                               const DaySpan& span) const {
  if (span.first_day < 1 || span.last_day < span.first_day ||
      span.last_day > 366)
    throw std::invalid_argument("invalid day span");
  std::vector<CatalogEntry> out;
  out.reserve(static_cast<std::size_t>(span.last_day - span.first_day + 1) *
              kSlotsPerDay);
  for (int day = span.first_day; day <= span.last_day; ++day) {
    for (int slot = 0; slot < kSlotsPerDay; ++slot) {
      GranuleId id{product, satellite, span.year, day, slot};
      out.push_back(CatalogEntry{id, size_of(id)});
    }
  }
  return out;
}

std::uint64_t ArchiveService::size_of(const GranuleId& id) const {
  // +-12% deterministic variation per granule; night MOD02 compresses the
  // fill-valued reflective bands, so those files are ~40% smaller, as with
  // the real archive.
  util::Rng rng(util::mix64(
      seed_, util::mix64(static_cast<std::uint64_t>(id.slot) * 7919 +
                             static_cast<std::uint64_t>(id.product),
                         static_cast<std::uint64_t>(id.year) * 1000 +
                             static_cast<std::uint64_t>(id.day_of_year))));
  double size = static_cast<double>(mean_size(id.product)) *
                (1.0 + 0.12 * (2.0 * rng.uniform() - 1.0));
  if (id.product == ProductKind::kMod02 &&
      !is_daytime(id.satellite, id.slot, id.day_of_year)) {
    size *= 0.6;
  }
  return static_cast<std::uint64_t>(size);
}

std::vector<std::byte> ArchiveService::materialize(
    const GranuleId& id, const GranuleGeometry& geometry) const {
  GranuleSpec spec;
  spec.satellite = id.satellite;
  spec.year = id.year;
  spec.day_of_year = id.day_of_year;
  spec.slot = id.slot;
  spec.geometry = geometry;
  spec.world_seed = seed_;
  switch (id.product) {
    case ProductKind::kMod02: return generator_.mod02(spec).to_hdfl().serialize();
    case ProductKind::kMod03: return generator_.mod03(spec).to_hdfl().serialize();
    case ProductKind::kMod06: return generator_.mod06(spec).to_hdfl().serialize();
  }
  throw std::invalid_argument("unknown product kind");
}

}  // namespace mfw::modis
