// Swath geometry for a sun-synchronous polar orbiter.
//
// MODIS granules are 5-minute slices of a ~99-minute polar orbit; each day
// has 288 slots. We model a simplified circular sun-synchronous orbit (98.2°
// inclination, equator crossing 10:30 for Terra / 13:30 for Aqua) that gives
// every granule a deterministic, physically plausible lat/lon footprint and
// solar geometry. Accuracy to the real ephemeris is irrelevant; what matters
// for the workload is the *distribution*: granules sweep all latitudes, half
// the orbit is on the night side, and ocean fraction varies with longitude.
#pragma once

#include <cstdint>

namespace mfw::modis {

enum class Satellite : std::uint8_t { kTerra = 0, kAqua = 1 };

constexpr const char* satellite_name(Satellite s) {
  return s == Satellite::kTerra ? "Terra" : "Aqua";
}

/// Granules per day (one per 5-minute slot).
inline constexpr int kSlotsPerDay = 288;

/// Lat/lon in degrees; lat in [-90, 90], lon in [-180, 180).
struct LatLon {
  double lat = 0.0;
  double lon = 0.0;
};

/// Position of the sub-satellite point for a given day slot and along-track
/// fraction u in [0, 1) within the 5-minute granule.
LatLon ground_track(Satellite satellite, int slot, double u);

/// Solar zenith angle (degrees) at a location for a given UTC time-of-day
/// fraction (0 = midnight, 0.5 = noon) and day-of-year (for declination).
double solar_zenith_deg(const LatLon& where, double utc_day_fraction,
                        int day_of_year);

/// Swath pixel -> lat/lon. `row_frac` in [0,1) along track within the
/// granule, `col_frac` in [0,1) across the ~2330 km swath (cross-track).
LatLon swath_pixel(Satellite satellite, int slot, double row_frac,
                   double col_frac);

/// True when the granule's centre is on the day side (solar zenith < 85°),
/// matching the availability of MOD02 visible bands used for tiles.
bool is_daytime(Satellite satellite, int slot, int day_of_year);

}  // namespace mfw::modis
