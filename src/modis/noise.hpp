// Seeded procedural noise for synthetic Earth fields.
//
// Value noise with smooth interpolation, summed over octaves (fBm), defined
// over continuous (x, y) so that cloud fields and continents are consistent
// at any sampling resolution — the same granule sampled at full resolution
// (preprocessing tests) and at coarse resolution (workload estimation for
// the discrete-event benchmarks) sees the same geography.
#pragma once

#include <cstdint>

namespace mfw::modis {

/// Deterministic 2-D value-noise field; cheap and allocation-free.
class NoiseField {
 public:
  explicit NoiseField(std::uint64_t seed) : seed_(seed) {}

  /// Smooth noise in [-1, 1] at continuous coordinates.
  double at(double x, double y) const;

  /// Fractional Brownian motion: `octaves` layers, each at double frequency
  /// and `gain` amplitude. Result approximately in [-1, 1].
  double fbm(double x, double y, int octaves, double gain = 0.5,
             double lacunarity = 2.0) const;

 private:
  /// Hash of integer lattice point -> [-1, 1].
  double lattice(std::int64_t ix, std::int64_t iy) const;

  std::uint64_t seed_;
};

}  // namespace mfw::modis
