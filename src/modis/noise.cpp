#include "modis/noise.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace mfw::modis {

namespace {
// Quintic smoothstep keeps first and second derivatives continuous, which
// avoids visible lattice artifacts in the cloud textures.
double smooth(double t) { return t * t * t * (t * (t * 6.0 - 15.0) + 10.0); }
}  // namespace

double NoiseField::lattice(std::int64_t ix, std::int64_t iy) const {
  const std::uint64_t h = util::mix64(
      seed_, util::mix64(static_cast<std::uint64_t>(ix) * 0x9e3779b97f4a7c15ULL,
                         static_cast<std::uint64_t>(iy)));
  // Map the top 53 bits to [-1, 1].
  return static_cast<double>(h >> 11) * 0x1.0p-52 - 1.0;
}

double NoiseField::at(double x, double y) const {
  const double fx = std::floor(x);
  const double fy = std::floor(y);
  const auto ix = static_cast<std::int64_t>(fx);
  const auto iy = static_cast<std::int64_t>(fy);
  const double tx = smooth(x - fx);
  const double ty = smooth(y - fy);
  const double v00 = lattice(ix, iy);
  const double v10 = lattice(ix + 1, iy);
  const double v01 = lattice(ix, iy + 1);
  const double v11 = lattice(ix + 1, iy + 1);
  const double a = v00 + (v10 - v00) * tx;
  const double b = v01 + (v11 - v01) * tx;
  return a + (b - a) * ty;
}

double NoiseField::fbm(double x, double y, int octaves, double gain,
                       double lacunarity) const {
  double sum = 0.0;
  double amplitude = 1.0;
  double norm = 0.0;
  double fx = x;
  double fy = y;
  for (int i = 0; i < octaves; ++i) {
    sum += amplitude * at(fx, fy);
    norm += amplitude;
    amplitude *= gain;
    fx *= lacunarity;
    fy *= lacunarity;
  }
  return norm > 0 ? sum / norm : 0.0;
}

}  // namespace mfw::modis
