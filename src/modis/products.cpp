#include "modis/products.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace mfw::modis {

namespace {

// Threshold on the continent noise chosen empirically for ~30% land.
constexpr double kLandThreshold = 0.18;

double day_fraction(const GranuleSpec& spec, double row_frac) {
  return (static_cast<double>(spec.slot) + row_frac) / kSlotsPerDay;
}

void check_spec(const GranuleSpec& spec) {
  if (spec.slot < 0 || spec.slot >= kSlotsPerDay)
    throw std::invalid_argument("granule slot out of range");
  if (spec.geometry.rows <= 0 || spec.geometry.cols <= 0 ||
      spec.geometry.bands <= 0)
    throw std::invalid_argument("granule geometry must be positive");
  if (spec.day_of_year < 1 || spec.day_of_year > 366)
    throw std::invalid_argument("day_of_year out of range");
}

std::vector<std::uint64_t> grid_shape(const GranuleSpec& spec) {
  return {static_cast<std::uint64_t>(spec.geometry.rows),
          static_cast<std::uint64_t>(spec.geometry.cols)};
}

void put_spec_attrs(storage::HdflFile& file, const GranuleSpec& spec,
                    const char* product) {
  auto& attrs = file.attrs();
  attrs["product"] = product;
  attrs["satellite"] = satellite_name(spec.satellite);
  attrs["year"] = std::to_string(spec.year);
  attrs["day_of_year"] = std::to_string(spec.day_of_year);
  attrs["slot"] = std::to_string(spec.slot);
  attrs["rows"] = std::to_string(spec.geometry.rows);
  attrs["cols"] = std::to_string(spec.geometry.cols);
  attrs["bands"] = std::to_string(spec.geometry.bands);
}

GranuleSpec spec_from_attrs(const storage::HdflFile& file) {
  const auto& attrs = file.attrs();
  auto get = [&](const char* key) -> const std::string& {
    const auto it = attrs.find(key);
    if (it == attrs.end())
      throw storage::FormatError(std::string("granule missing attr ") + key);
    return it->second;
  };
  GranuleSpec spec;
  spec.satellite =
      get("satellite") == "Aqua" ? Satellite::kAqua : Satellite::kTerra;
  spec.year = std::stoi(get("year"));
  spec.day_of_year = std::stoi(get("day_of_year"));
  spec.slot = std::stoi(get("slot"));
  spec.geometry.rows = std::stoi(get("rows"));
  spec.geometry.cols = std::stoi(get("cols"));
  spec.geometry.bands = std::stoi(get("bands"));
  return spec;
}

}  // namespace

EarthModel::EarthModel(std::uint64_t seed)
    : continents_(util::mix64(seed, 1)),
      weather_(util::mix64(seed, 2)),
      texture_(util::mix64(seed, 3)),
      pressure_(util::mix64(seed, 4)) {}

bool EarthModel::is_land(const LatLon& p) const {
  // Sample in a lat/lon frame scaled so continents span ~40-80 degrees.
  const double v = continents_.fbm(p.lon / 42.0, p.lat / 30.0, 5);
  // Push land away from the poles a little (Southern Ocean / Arctic ocean).
  const double polar = 0.10 * std::cos(p.lat * std::numbers::pi / 90.0);
  return v + polar > kLandThreshold;
}

double EarthModel::cloud_intensity(const LatLon& p, int day_of_year) const {
  // Synoptic-scale systems drift with the day of year; mesoscale texture
  // gives the within-tile variance AICCA tiles show.
  const double drift = static_cast<double>(day_of_year) * 0.37;
  const double synoptic =
      weather_.fbm(p.lon / 18.0 + drift, p.lat / 14.0 - 0.3 * drift, 4);
  const double meso = texture_.fbm(p.lon / 2.2, p.lat / 2.2, 3);
  // ITCZ band and mid-latitude storm tracks raise cloudiness.
  const double lat_rad = p.lat * std::numbers::pi / 180.0;
  const double climo = 0.18 * std::exp(-std::pow(p.lat / 12.0, 2)) +
                       0.22 * std::exp(-std::pow((std::abs(p.lat) - 52.0) / 16.0, 2)) +
                       0.05 * std::cos(2.0 * lat_rad);
  const double v = 0.55 + 0.75 * synoptic + 0.35 * meso + climo;
  return std::fmin(1.0, std::fmax(0.0, v));
}

double EarthModel::cloud_top_pressure(const LatLon& p, int day_of_year) const {
  const double drift = static_cast<double>(day_of_year) * 0.21;
  const double v = pressure_.fbm(p.lon / 9.0 + drift, p.lat / 9.0, 3);
  // 250 hPa (deep convection) .. 900 hPa (marine stratocumulus).
  return 575.0 + 325.0 * v;
}

double EarthModel::surface_temperature(const LatLon& p) const {
  const double lat_rad = p.lat * std::numbers::pi / 180.0;
  const double base = 300.0 - 35.0 * std::pow(std::sin(lat_rad), 2);
  return base + 3.0 * continents_.fbm(p.lon / 15.0, p.lat / 15.0, 2);
}

GranuleGenerator::GranuleGenerator(std::uint64_t world_seed)
    : seed_(world_seed), earth_(world_seed) {}

Mod03Granule GranuleGenerator::mod03(const GranuleSpec& spec) const {
  check_spec(spec);
  const auto& g = spec.geometry;
  Mod03Granule out;
  out.spec = spec;
  out.latitude.resize(g.pixels());
  out.longitude.resize(g.pixels());
  out.land_mask.resize(g.pixels());
  out.solar_zenith.resize(g.pixels());
  for (int r = 0; r < g.rows; ++r) {
    const double row_frac = (r + 0.5) / g.rows;
    for (int c = 0; c < g.cols; ++c) {
      const double col_frac = (c + 0.5) / g.cols;
      const LatLon p = swath_pixel(spec.satellite, spec.slot, row_frac, col_frac);
      const std::size_t i =
          static_cast<std::size_t>(r) * static_cast<std::size_t>(g.cols) +
          static_cast<std::size_t>(c);
      out.latitude[i] = static_cast<float>(p.lat);
      out.longitude[i] = static_cast<float>(p.lon);
      out.land_mask[i] = earth_.is_land(p) ? 1 : 0;
      out.solar_zenith[i] = static_cast<float>(
          solar_zenith_deg(p, day_fraction(spec, row_frac), spec.day_of_year));
    }
  }
  return out;
}

Mod06Granule GranuleGenerator::mod06(const GranuleSpec& spec) const {
  check_spec(spec);
  const auto& g = spec.geometry;
  Mod06Granule out;
  out.spec = spec;
  out.cloud_mask.resize(g.pixels());
  out.cloud_optical_thickness.resize(g.pixels());
  out.cloud_top_pressure.resize(g.pixels());
  out.cloud_water_path.resize(g.pixels());
  for (int r = 0; r < g.rows; ++r) {
    const double row_frac = (r + 0.5) / g.rows;
    for (int c = 0; c < g.cols; ++c) {
      const double col_frac = (c + 0.5) / g.cols;
      const LatLon p = swath_pixel(spec.satellite, spec.slot, row_frac, col_frac);
      const std::size_t i =
          static_cast<std::size_t>(r) * static_cast<std::size_t>(g.cols) +
          static_cast<std::size_t>(c);
      const double intensity = earth_.cloud_intensity(p, spec.day_of_year);
      const bool cloudy = intensity > 0.45;
      out.cloud_mask[i] = cloudy ? 1 : 0;
      const double excess = std::fmax(0.0, intensity - 0.45);
      out.cloud_optical_thickness[i] =
          cloudy ? static_cast<float>(2.0 + 55.0 * excess) : 0.0f;
      out.cloud_top_pressure[i] =
          cloudy ? static_cast<float>(earth_.cloud_top_pressure(p, spec.day_of_year))
                 : kFillValue;
      out.cloud_water_path[i] =
          cloudy ? static_cast<float>(20.0 + 900.0 * excess * excess) : 0.0f;
    }
  }
  return out;
}

Mod02Granule GranuleGenerator::mod02(const GranuleSpec& spec) const {
  check_spec(spec);
  const auto& g = spec.geometry;
  Mod02Granule out;
  out.spec = spec;
  out.daytime = is_daytime(spec.satellite, spec.slot, spec.day_of_year);
  out.radiance.resize(static_cast<std::size_t>(g.bands) * g.pixels());
  // Per-granule sensor noise stream.
  util::Rng rng(util::mix64(
      seed_, util::mix64(static_cast<std::uint64_t>(spec.slot) + 1000,
                         static_cast<std::uint64_t>(spec.day_of_year))));
  for (int r = 0; r < g.rows; ++r) {
    const double row_frac = (r + 0.5) / g.rows;
    for (int c = 0; c < g.cols; ++c) {
      const double col_frac = (c + 0.5) / g.cols;
      const LatLon p = swath_pixel(spec.satellite, spec.slot, row_frac, col_frac);
      const std::size_t pix =
          static_cast<std::size_t>(r) * static_cast<std::size_t>(g.cols) +
          static_cast<std::size_t>(c);
      const double intensity = earth_.cloud_intensity(p, spec.day_of_year);
      const bool cloudy = intensity > 0.45;
      const bool land = earth_.is_land(p);
      const double tau = cloudy ? 2.0 + 55.0 * std::fmax(0.0, intensity - 0.45) : 0.0;
      // Cloud reflectance grows with optical thickness (saturating).
      const double cloud_ref = 1.0 - std::exp(-tau / 12.0);
      const double surface_ref = land ? 0.18 : 0.05;
      const double reflectance =
          cloud_ref * 0.85 + (1.0 - cloud_ref) * surface_ref;
      const double t_surface = earth_.surface_temperature(p);
      const double t_cloud =
          cloudy ? 230.0 + 60.0 * (earth_.cloud_top_pressure(p, spec.day_of_year) -
                                   250.0) /
                               650.0
                 : t_surface;
      const double t_scene = cloudy ? t_cloud : t_surface;
      for (int b = 0; b < g.bands; ++b) {
        const std::size_t i = static_cast<std::size_t>(b) * g.pixels() + pix;
        float value;
        if (b < 3) {
          // Reflective bands (roles of MODIS bands 6/7/20): fill at night.
          if (!out.daytime) {
            value = kFillValue;
          } else {
            const double band_gain = 1.0 - 0.08 * b;
            value = static_cast<float>(reflectance * band_gain +
                                       0.01 * rng.normal());
          }
        } else {
          // Thermal bands (roles of 28/29/31 and beyond): brightness temp,
          // normalized to ~[0,1] for the ML stage ((320K - T) / 120K).
          const double band_shift = 2.0 * (b - 3);
          value = static_cast<float>((320.0 - (t_scene - band_shift)) / 120.0 +
                                     0.005 * rng.normal());
        }
        out.radiance[i] = value;
      }
    }
  }
  return out;
}

float Mod02Granule::at(int band, int row, int col) const {
  const auto& g = spec.geometry;
  return radiance[static_cast<std::size_t>(band) * g.pixels() +
                  static_cast<std::size_t>(row) * g.cols +
                  static_cast<std::size_t>(col)];
}

storage::HdflFile Mod03Granule::to_hdfl() const {
  storage::HdflFile file;
  put_spec_attrs(file, spec, "MOD03");
  const auto shape = grid_shape(spec);
  file.add(storage::Dataset::f32("Latitude", shape, latitude));
  file.add(storage::Dataset::f32("Longitude", shape, longitude));
  file.add(storage::Dataset::u8("LandSeaMask", shape, land_mask));
  file.add(storage::Dataset::f32("SolarZenith", shape, solar_zenith));
  return file;
}

Mod03Granule Mod03Granule::from_hdfl(const storage::HdflFile& file) {
  Mod03Granule out;
  out.spec = spec_from_attrs(file);
  const auto lat = file.dataset("Latitude").as_f32();
  const auto lon = file.dataset("Longitude").as_f32();
  const auto mask = file.dataset("LandSeaMask").as_u8();
  const auto zen = file.dataset("SolarZenith").as_f32();
  out.latitude.assign(lat.begin(), lat.end());
  out.longitude.assign(lon.begin(), lon.end());
  out.land_mask.assign(mask.begin(), mask.end());
  out.solar_zenith.assign(zen.begin(), zen.end());
  return out;
}

storage::HdflFile Mod06Granule::to_hdfl() const {
  storage::HdflFile file;
  put_spec_attrs(file, spec, "MOD06");
  const auto shape = grid_shape(spec);
  file.add(storage::Dataset::u8("CloudMask", shape, cloud_mask));
  file.add(storage::Dataset::f32("CloudOpticalThickness", shape,
                                 cloud_optical_thickness));
  file.add(storage::Dataset::f32("CloudTopPressure", shape, cloud_top_pressure));
  file.add(storage::Dataset::f32("CloudWaterPath", shape, cloud_water_path));
  return file;
}

Mod06Granule Mod06Granule::from_hdfl(const storage::HdflFile& file) {
  Mod06Granule out;
  out.spec = spec_from_attrs(file);
  const auto mask = file.dataset("CloudMask").as_u8();
  const auto cot = file.dataset("CloudOpticalThickness").as_f32();
  const auto ctp = file.dataset("CloudTopPressure").as_f32();
  const auto cwp = file.dataset("CloudWaterPath").as_f32();
  out.cloud_mask.assign(mask.begin(), mask.end());
  out.cloud_optical_thickness.assign(cot.begin(), cot.end());
  out.cloud_top_pressure.assign(ctp.begin(), ctp.end());
  out.cloud_water_path.assign(cwp.begin(), cwp.end());
  return out;
}

storage::HdflFile Mod02Granule::to_hdfl() const {
  storage::HdflFile file;
  put_spec_attrs(file, spec, "MOD02");
  file.attrs()["daytime"] = daytime ? "1" : "0";
  file.add(storage::Dataset::f32(
      "Radiance",
      {static_cast<std::uint64_t>(spec.geometry.bands),
       static_cast<std::uint64_t>(spec.geometry.rows),
       static_cast<std::uint64_t>(spec.geometry.cols)},
      radiance));
  return file;
}

Mod02Granule Mod02Granule::from_hdfl(const storage::HdflFile& file) {
  Mod02Granule out;
  out.spec = spec_from_attrs(file);
  const auto it = file.attrs().find("daytime");
  out.daytime = it != file.attrs().end() && it->second == "1";
  const auto rad = file.dataset("Radiance").as_f32();
  out.radiance.assign(rad.begin(), rad.end());
  return out;
}

GranuleStats estimate_granule_stats(const GranuleGenerator& generator,
                                    const GranuleSpec& spec, int tile_size,
                                    int samples_per_axis) {
  check_spec(spec);
  GranuleStats stats;
  stats.daytime = is_daytime(spec.satellite, spec.slot, spec.day_of_year);
  if (!stats.daytime) return stats;  // night granules yield no AICCA tiles

  const auto& g = spec.geometry;
  const int tile_rows = g.rows / tile_size;
  const int tile_cols = g.cols / tile_size;
  const auto& earth = generator.earth();
  double cloud_sum = 0.0;
  for (int tr = 0; tr < tile_rows; ++tr) {
    for (int tc = 0; tc < tile_cols; ++tc) {
      bool any_land = false;
      int cloudy = 0;
      const int n = samples_per_axis;
      for (int sr = 0; sr < n && !any_land; ++sr) {
        for (int sc = 0; sc < n; ++sc) {
          const double row_frac =
              (tr * tile_size + (sr + 0.5) * tile_size / n) / g.rows;
          const double col_frac =
              (tc * tile_size + (sc + 0.5) * tile_size / n) / g.cols;
          const LatLon p =
              swath_pixel(spec.satellite, spec.slot, row_frac, col_frac);
          if (earth.is_land(p)) {
            any_land = true;
            break;
          }
          if (earth.cloud_intensity(p, spec.day_of_year) > 0.45) ++cloudy;
        }
      }
      if (any_land) continue;
      ++stats.candidate_tiles;
      const double cloud_frac =
          static_cast<double>(cloudy) / static_cast<double>(n * n);
      cloud_sum += cloud_frac;
      if (cloud_frac >= 0.3) ++stats.selected_tiles;
    }
  }
  stats.mean_cloud_fraction =
      stats.candidate_tiles ? cloud_sum / stats.candidate_tiles : 0.0;
  return stats;
}

}  // namespace mfw::modis
