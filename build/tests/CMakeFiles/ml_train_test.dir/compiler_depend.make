# Empty compiler generated dependencies file for ml_train_test.
# This may be replaced when dependencies are built.
