file(REMOVE_RECURSE
  "CMakeFiles/ml_train_test.dir/ml_train_test.cpp.o"
  "CMakeFiles/ml_train_test.dir/ml_train_test.cpp.o.d"
  "ml_train_test"
  "ml_train_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_train_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
