# Empty dependencies file for modis_test.
# This may be replaced when dependencies are built.
