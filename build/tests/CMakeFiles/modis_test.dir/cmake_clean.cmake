file(REMOVE_RECURSE
  "CMakeFiles/modis_test.dir/modis_test.cpp.o"
  "CMakeFiles/modis_test.dir/modis_test.cpp.o.d"
  "modis_test"
  "modis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
