file(REMOVE_RECURSE
  "CMakeFiles/ml_continual_test.dir/ml_continual_test.cpp.o"
  "CMakeFiles/ml_continual_test.dir/ml_continual_test.cpp.o.d"
  "ml_continual_test"
  "ml_continual_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_continual_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
