# Empty dependencies file for ml_continual_test.
# This may be replaced when dependencies are built.
