
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/mfwctl.cpp" "tools/CMakeFiles/mfwctl.dir/mfwctl.cpp.o" "gcc" "tools/CMakeFiles/mfwctl.dir/mfwctl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/federation/CMakeFiles/mfw_federation.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/mfw_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/mfw_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/mfw_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/preprocess/CMakeFiles/mfw_preprocess.dir/DependInfo.cmake"
  "/root/repo/build/src/compute/CMakeFiles/mfw_compute.dir/DependInfo.cmake"
  "/root/repo/build/src/transfer/CMakeFiles/mfw_transfer.dir/DependInfo.cmake"
  "/root/repo/build/src/modis/CMakeFiles/mfw_modis.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mfw_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mfw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mfw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
