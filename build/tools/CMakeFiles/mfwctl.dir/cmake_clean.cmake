file(REMOVE_RECURSE
  "CMakeFiles/mfwctl.dir/mfwctl.cpp.o"
  "CMakeFiles/mfwctl.dir/mfwctl.cpp.o.d"
  "mfwctl"
  "mfwctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfwctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
