# Empty compiler generated dependencies file for mfwctl.
# This may be replaced when dependencies are built.
