file(REMOVE_RECURSE
  "CMakeFiles/headline_12k.dir/headline_12k.cpp.o"
  "CMakeFiles/headline_12k.dir/headline_12k.cpp.o.d"
  "headline_12k"
  "headline_12k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_12k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
