# Empty compiler generated dependencies file for headline_12k.
# This may be replaced when dependencies are built.
