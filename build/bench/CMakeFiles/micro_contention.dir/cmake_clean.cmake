file(REMOVE_RECURSE
  "CMakeFiles/micro_contention.dir/micro_contention.cpp.o"
  "CMakeFiles/micro_contention.dir/micro_contention.cpp.o.d"
  "micro_contention"
  "micro_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
