# Empty dependencies file for micro_contention.
# This may be replaced when dependencies are built.
