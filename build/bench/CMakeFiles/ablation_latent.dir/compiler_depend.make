# Empty compiler generated dependencies file for ablation_latent.
# This may be replaced when dependencies are built.
