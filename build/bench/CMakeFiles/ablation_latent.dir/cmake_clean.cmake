file(REMOVE_RECURSE
  "CMakeFiles/ablation_latent.dir/ablation_latent.cpp.o"
  "CMakeFiles/ablation_latent.dir/ablation_latent.cpp.o.d"
  "ablation_latent"
  "ablation_latent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_latent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
