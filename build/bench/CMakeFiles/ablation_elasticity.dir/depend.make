# Empty dependencies file for ablation_elasticity.
# This may be replaced when dependencies are built.
