file(REMOVE_RECURSE
  "CMakeFiles/ablation_elasticity.dir/ablation_elasticity.cpp.o"
  "CMakeFiles/ablation_elasticity.dir/ablation_elasticity.cpp.o.d"
  "ablation_elasticity"
  "ablation_elasticity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_elasticity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
