# Empty dependencies file for fig3_download.
# This may be replaced when dependencies are built.
