file(REMOVE_RECURSE
  "CMakeFiles/fig3_download.dir/fig3_download.cpp.o"
  "CMakeFiles/fig3_download.dir/fig3_download.cpp.o.d"
  "fig3_download"
  "fig3_download.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_download.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
