file(REMOVE_RECURSE
  "CMakeFiles/fig1_swath.dir/fig1_swath.cpp.o"
  "CMakeFiles/fig1_swath.dir/fig1_swath.cpp.o.d"
  "fig1_swath"
  "fig1_swath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_swath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
