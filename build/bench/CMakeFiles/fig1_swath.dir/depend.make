# Empty dependencies file for fig1_swath.
# This may be replaced when dependencies are built.
