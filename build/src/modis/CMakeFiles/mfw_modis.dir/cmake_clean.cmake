file(REMOVE_RECURSE
  "CMakeFiles/mfw_modis.dir/catalog.cpp.o"
  "CMakeFiles/mfw_modis.dir/catalog.cpp.o.d"
  "CMakeFiles/mfw_modis.dir/geo.cpp.o"
  "CMakeFiles/mfw_modis.dir/geo.cpp.o.d"
  "CMakeFiles/mfw_modis.dir/noise.cpp.o"
  "CMakeFiles/mfw_modis.dir/noise.cpp.o.d"
  "CMakeFiles/mfw_modis.dir/products.cpp.o"
  "CMakeFiles/mfw_modis.dir/products.cpp.o.d"
  "libmfw_modis.a"
  "libmfw_modis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfw_modis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
