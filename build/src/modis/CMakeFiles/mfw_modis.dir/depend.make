# Empty dependencies file for mfw_modis.
# This may be replaced when dependencies are built.
