file(REMOVE_RECURSE
  "libmfw_modis.a"
)
