# Empty dependencies file for mfw_storage.
# This may be replaced when dependencies are built.
