file(REMOVE_RECURSE
  "libmfw_storage.a"
)
