
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/faulty_fs.cpp" "src/storage/CMakeFiles/mfw_storage.dir/faulty_fs.cpp.o" "gcc" "src/storage/CMakeFiles/mfw_storage.dir/faulty_fs.cpp.o.d"
  "/root/repo/src/storage/hdfl.cpp" "src/storage/CMakeFiles/mfw_storage.dir/hdfl.cpp.o" "gcc" "src/storage/CMakeFiles/mfw_storage.dir/hdfl.cpp.o.d"
  "/root/repo/src/storage/lustre_sim.cpp" "src/storage/CMakeFiles/mfw_storage.dir/lustre_sim.cpp.o" "gcc" "src/storage/CMakeFiles/mfw_storage.dir/lustre_sim.cpp.o.d"
  "/root/repo/src/storage/memfs.cpp" "src/storage/CMakeFiles/mfw_storage.dir/memfs.cpp.o" "gcc" "src/storage/CMakeFiles/mfw_storage.dir/memfs.cpp.o.d"
  "/root/repo/src/storage/ncl.cpp" "src/storage/CMakeFiles/mfw_storage.dir/ncl.cpp.o" "gcc" "src/storage/CMakeFiles/mfw_storage.dir/ncl.cpp.o.d"
  "/root/repo/src/storage/posixfs.cpp" "src/storage/CMakeFiles/mfw_storage.dir/posixfs.cpp.o" "gcc" "src/storage/CMakeFiles/mfw_storage.dir/posixfs.cpp.o.d"
  "/root/repo/src/storage/serialize.cpp" "src/storage/CMakeFiles/mfw_storage.dir/serialize.cpp.o" "gcc" "src/storage/CMakeFiles/mfw_storage.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mfw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mfw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
