file(REMOVE_RECURSE
  "CMakeFiles/mfw_storage.dir/faulty_fs.cpp.o"
  "CMakeFiles/mfw_storage.dir/faulty_fs.cpp.o.d"
  "CMakeFiles/mfw_storage.dir/hdfl.cpp.o"
  "CMakeFiles/mfw_storage.dir/hdfl.cpp.o.d"
  "CMakeFiles/mfw_storage.dir/lustre_sim.cpp.o"
  "CMakeFiles/mfw_storage.dir/lustre_sim.cpp.o.d"
  "CMakeFiles/mfw_storage.dir/memfs.cpp.o"
  "CMakeFiles/mfw_storage.dir/memfs.cpp.o.d"
  "CMakeFiles/mfw_storage.dir/ncl.cpp.o"
  "CMakeFiles/mfw_storage.dir/ncl.cpp.o.d"
  "CMakeFiles/mfw_storage.dir/posixfs.cpp.o"
  "CMakeFiles/mfw_storage.dir/posixfs.cpp.o.d"
  "CMakeFiles/mfw_storage.dir/serialize.cpp.o"
  "CMakeFiles/mfw_storage.dir/serialize.cpp.o.d"
  "libmfw_storage.a"
  "libmfw_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfw_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
