file(REMOVE_RECURSE
  "CMakeFiles/mfw_pipeline.dir/config.cpp.o"
  "CMakeFiles/mfw_pipeline.dir/config.cpp.o.d"
  "CMakeFiles/mfw_pipeline.dir/eoml_workflow.cpp.o"
  "CMakeFiles/mfw_pipeline.dir/eoml_workflow.cpp.o.d"
  "CMakeFiles/mfw_pipeline.dir/timeline.cpp.o"
  "CMakeFiles/mfw_pipeline.dir/timeline.cpp.o.d"
  "libmfw_pipeline.a"
  "libmfw_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfw_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
