# Empty compiler generated dependencies file for mfw_pipeline.
# This may be replaced when dependencies are built.
