file(REMOVE_RECURSE
  "libmfw_pipeline.a"
)
