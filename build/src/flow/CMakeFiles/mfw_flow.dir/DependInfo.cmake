
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/definition.cpp" "src/flow/CMakeFiles/mfw_flow.dir/definition.cpp.o" "gcc" "src/flow/CMakeFiles/mfw_flow.dir/definition.cpp.o.d"
  "/root/repo/src/flow/event_bus.cpp" "src/flow/CMakeFiles/mfw_flow.dir/event_bus.cpp.o" "gcc" "src/flow/CMakeFiles/mfw_flow.dir/event_bus.cpp.o.d"
  "/root/repo/src/flow/monitor.cpp" "src/flow/CMakeFiles/mfw_flow.dir/monitor.cpp.o" "gcc" "src/flow/CMakeFiles/mfw_flow.dir/monitor.cpp.o.d"
  "/root/repo/src/flow/provenance.cpp" "src/flow/CMakeFiles/mfw_flow.dir/provenance.cpp.o" "gcc" "src/flow/CMakeFiles/mfw_flow.dir/provenance.cpp.o.d"
  "/root/repo/src/flow/runner.cpp" "src/flow/CMakeFiles/mfw_flow.dir/runner.cpp.o" "gcc" "src/flow/CMakeFiles/mfw_flow.dir/runner.cpp.o.d"
  "/root/repo/src/flow/schema.cpp" "src/flow/CMakeFiles/mfw_flow.dir/schema.cpp.o" "gcc" "src/flow/CMakeFiles/mfw_flow.dir/schema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mfw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mfw_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mfw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
