file(REMOVE_RECURSE
  "libmfw_flow.a"
)
