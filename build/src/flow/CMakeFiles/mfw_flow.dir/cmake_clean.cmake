file(REMOVE_RECURSE
  "CMakeFiles/mfw_flow.dir/definition.cpp.o"
  "CMakeFiles/mfw_flow.dir/definition.cpp.o.d"
  "CMakeFiles/mfw_flow.dir/event_bus.cpp.o"
  "CMakeFiles/mfw_flow.dir/event_bus.cpp.o.d"
  "CMakeFiles/mfw_flow.dir/monitor.cpp.o"
  "CMakeFiles/mfw_flow.dir/monitor.cpp.o.d"
  "CMakeFiles/mfw_flow.dir/provenance.cpp.o"
  "CMakeFiles/mfw_flow.dir/provenance.cpp.o.d"
  "CMakeFiles/mfw_flow.dir/runner.cpp.o"
  "CMakeFiles/mfw_flow.dir/runner.cpp.o.d"
  "CMakeFiles/mfw_flow.dir/schema.cpp.o"
  "CMakeFiles/mfw_flow.dir/schema.cpp.o.d"
  "libmfw_flow.a"
  "libmfw_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfw_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
