# Empty compiler generated dependencies file for mfw_flow.
# This may be replaced when dependencies are built.
