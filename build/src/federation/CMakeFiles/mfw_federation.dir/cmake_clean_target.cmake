file(REMOVE_RECURSE
  "libmfw_federation.a"
)
