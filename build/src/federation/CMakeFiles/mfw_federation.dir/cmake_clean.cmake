file(REMOVE_RECURSE
  "CMakeFiles/mfw_federation.dir/facility_profile.cpp.o"
  "CMakeFiles/mfw_federation.dir/facility_profile.cpp.o.d"
  "CMakeFiles/mfw_federation.dir/orchestrator.cpp.o"
  "CMakeFiles/mfw_federation.dir/orchestrator.cpp.o.d"
  "CMakeFiles/mfw_federation.dir/registry.cpp.o"
  "CMakeFiles/mfw_federation.dir/registry.cpp.o.d"
  "libmfw_federation.a"
  "libmfw_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfw_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
