# Empty dependencies file for mfw_federation.
# This may be replaced when dependencies are built.
