file(REMOVE_RECURSE
  "libmfw_ml.a"
)
