# Empty compiler generated dependencies file for mfw_ml.
# This may be replaced when dependencies are built.
