file(REMOVE_RECURSE
  "CMakeFiles/mfw_ml.dir/cluster.cpp.o"
  "CMakeFiles/mfw_ml.dir/cluster.cpp.o.d"
  "CMakeFiles/mfw_ml.dir/continual.cpp.o"
  "CMakeFiles/mfw_ml.dir/continual.cpp.o.d"
  "CMakeFiles/mfw_ml.dir/layers.cpp.o"
  "CMakeFiles/mfw_ml.dir/layers.cpp.o.d"
  "CMakeFiles/mfw_ml.dir/loss.cpp.o"
  "CMakeFiles/mfw_ml.dir/loss.cpp.o.d"
  "CMakeFiles/mfw_ml.dir/optim.cpp.o"
  "CMakeFiles/mfw_ml.dir/optim.cpp.o.d"
  "CMakeFiles/mfw_ml.dir/ricc.cpp.o"
  "CMakeFiles/mfw_ml.dir/ricc.cpp.o.d"
  "CMakeFiles/mfw_ml.dir/tensor.cpp.o"
  "CMakeFiles/mfw_ml.dir/tensor.cpp.o.d"
  "libmfw_ml.a"
  "libmfw_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfw_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
