file(REMOVE_RECURSE
  "CMakeFiles/mfw_preprocess.dir/tasks.cpp.o"
  "CMakeFiles/mfw_preprocess.dir/tasks.cpp.o.d"
  "CMakeFiles/mfw_preprocess.dir/tile_io.cpp.o"
  "CMakeFiles/mfw_preprocess.dir/tile_io.cpp.o.d"
  "CMakeFiles/mfw_preprocess.dir/tiler.cpp.o"
  "CMakeFiles/mfw_preprocess.dir/tiler.cpp.o.d"
  "libmfw_preprocess.a"
  "libmfw_preprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfw_preprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
