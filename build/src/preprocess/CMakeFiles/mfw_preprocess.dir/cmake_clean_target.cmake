file(REMOVE_RECURSE
  "libmfw_preprocess.a"
)
