# Empty compiler generated dependencies file for mfw_preprocess.
# This may be replaced when dependencies are built.
