# Empty compiler generated dependencies file for mfw_analysis.
# This may be replaced when dependencies are built.
