file(REMOVE_RECURSE
  "libmfw_analysis.a"
)
