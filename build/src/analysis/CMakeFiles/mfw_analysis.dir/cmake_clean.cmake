file(REMOVE_RECURSE
  "CMakeFiles/mfw_analysis.dir/aicca.cpp.o"
  "CMakeFiles/mfw_analysis.dir/aicca.cpp.o.d"
  "libmfw_analysis.a"
  "libmfw_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfw_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
