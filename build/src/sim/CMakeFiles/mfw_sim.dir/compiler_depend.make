# Empty compiler generated dependencies file for mfw_sim.
# This may be replaced when dependencies are built.
