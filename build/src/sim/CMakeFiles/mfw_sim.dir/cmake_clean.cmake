file(REMOVE_RECURSE
  "CMakeFiles/mfw_sim.dir/engine.cpp.o"
  "CMakeFiles/mfw_sim.dir/engine.cpp.o.d"
  "CMakeFiles/mfw_sim.dir/link.cpp.o"
  "CMakeFiles/mfw_sim.dir/link.cpp.o.d"
  "CMakeFiles/mfw_sim.dir/resource.cpp.o"
  "CMakeFiles/mfw_sim.dir/resource.cpp.o.d"
  "libmfw_sim.a"
  "libmfw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
