file(REMOVE_RECURSE
  "libmfw_sim.a"
)
