file(REMOVE_RECURSE
  "CMakeFiles/mfw_compute.dir/block_provider.cpp.o"
  "CMakeFiles/mfw_compute.dir/block_provider.cpp.o.d"
  "CMakeFiles/mfw_compute.dir/cluster.cpp.o"
  "CMakeFiles/mfw_compute.dir/cluster.cpp.o.d"
  "CMakeFiles/mfw_compute.dir/slurm_sim.cpp.o"
  "CMakeFiles/mfw_compute.dir/slurm_sim.cpp.o.d"
  "CMakeFiles/mfw_compute.dir/thread_executor.cpp.o"
  "CMakeFiles/mfw_compute.dir/thread_executor.cpp.o.d"
  "libmfw_compute.a"
  "libmfw_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfw_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
