
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compute/block_provider.cpp" "src/compute/CMakeFiles/mfw_compute.dir/block_provider.cpp.o" "gcc" "src/compute/CMakeFiles/mfw_compute.dir/block_provider.cpp.o.d"
  "/root/repo/src/compute/cluster.cpp" "src/compute/CMakeFiles/mfw_compute.dir/cluster.cpp.o" "gcc" "src/compute/CMakeFiles/mfw_compute.dir/cluster.cpp.o.d"
  "/root/repo/src/compute/slurm_sim.cpp" "src/compute/CMakeFiles/mfw_compute.dir/slurm_sim.cpp.o" "gcc" "src/compute/CMakeFiles/mfw_compute.dir/slurm_sim.cpp.o.d"
  "/root/repo/src/compute/thread_executor.cpp" "src/compute/CMakeFiles/mfw_compute.dir/thread_executor.cpp.o" "gcc" "src/compute/CMakeFiles/mfw_compute.dir/thread_executor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mfw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mfw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
