file(REMOVE_RECURSE
  "libmfw_compute.a"
)
