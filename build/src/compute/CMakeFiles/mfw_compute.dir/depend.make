# Empty dependencies file for mfw_compute.
# This may be replaced when dependencies are built.
