# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("storage")
subdirs("modis")
subdirs("ml")
subdirs("compute")
subdirs("transfer")
subdirs("flow")
subdirs("preprocess")
subdirs("pipeline")
subdirs("federation")
subdirs("analysis")
