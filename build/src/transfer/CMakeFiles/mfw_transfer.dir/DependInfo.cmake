
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transfer/download.cpp" "src/transfer/CMakeFiles/mfw_transfer.dir/download.cpp.o" "gcc" "src/transfer/CMakeFiles/mfw_transfer.dir/download.cpp.o.d"
  "/root/repo/src/transfer/transfer_service.cpp" "src/transfer/CMakeFiles/mfw_transfer.dir/transfer_service.cpp.o" "gcc" "src/transfer/CMakeFiles/mfw_transfer.dir/transfer_service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/modis/CMakeFiles/mfw_modis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mfw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mfw_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mfw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
