# Empty compiler generated dependencies file for mfw_transfer.
# This may be replaced when dependencies are built.
