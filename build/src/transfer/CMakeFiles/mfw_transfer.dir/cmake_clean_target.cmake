file(REMOVE_RECURSE
  "libmfw_transfer.a"
)
