file(REMOVE_RECURSE
  "CMakeFiles/mfw_transfer.dir/download.cpp.o"
  "CMakeFiles/mfw_transfer.dir/download.cpp.o.d"
  "CMakeFiles/mfw_transfer.dir/transfer_service.cpp.o"
  "CMakeFiles/mfw_transfer.dir/transfer_service.cpp.o.d"
  "libmfw_transfer.a"
  "libmfw_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfw_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
