file(REMOVE_RECURSE
  "libmfw_util.a"
)
