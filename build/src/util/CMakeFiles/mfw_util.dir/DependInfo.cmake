
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/ascii_plot.cpp" "src/util/CMakeFiles/mfw_util.dir/ascii_plot.cpp.o" "gcc" "src/util/CMakeFiles/mfw_util.dir/ascii_plot.cpp.o.d"
  "/root/repo/src/util/bytes.cpp" "src/util/CMakeFiles/mfw_util.dir/bytes.cpp.o" "gcc" "src/util/CMakeFiles/mfw_util.dir/bytes.cpp.o.d"
  "/root/repo/src/util/crc32.cpp" "src/util/CMakeFiles/mfw_util.dir/crc32.cpp.o" "gcc" "src/util/CMakeFiles/mfw_util.dir/crc32.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/util/CMakeFiles/mfw_util.dir/log.cpp.o" "gcc" "src/util/CMakeFiles/mfw_util.dir/log.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/util/CMakeFiles/mfw_util.dir/stats.cpp.o" "gcc" "src/util/CMakeFiles/mfw_util.dir/stats.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/util/CMakeFiles/mfw_util.dir/strings.cpp.o" "gcc" "src/util/CMakeFiles/mfw_util.dir/strings.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/util/CMakeFiles/mfw_util.dir/table.cpp.o" "gcc" "src/util/CMakeFiles/mfw_util.dir/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/util/CMakeFiles/mfw_util.dir/thread_pool.cpp.o" "gcc" "src/util/CMakeFiles/mfw_util.dir/thread_pool.cpp.o.d"
  "/root/repo/src/util/yamlite.cpp" "src/util/CMakeFiles/mfw_util.dir/yamlite.cpp.o" "gcc" "src/util/CMakeFiles/mfw_util.dir/yamlite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
