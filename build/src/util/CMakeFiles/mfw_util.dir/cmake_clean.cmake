file(REMOVE_RECURSE
  "CMakeFiles/mfw_util.dir/ascii_plot.cpp.o"
  "CMakeFiles/mfw_util.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/mfw_util.dir/bytes.cpp.o"
  "CMakeFiles/mfw_util.dir/bytes.cpp.o.d"
  "CMakeFiles/mfw_util.dir/crc32.cpp.o"
  "CMakeFiles/mfw_util.dir/crc32.cpp.o.d"
  "CMakeFiles/mfw_util.dir/log.cpp.o"
  "CMakeFiles/mfw_util.dir/log.cpp.o.d"
  "CMakeFiles/mfw_util.dir/stats.cpp.o"
  "CMakeFiles/mfw_util.dir/stats.cpp.o.d"
  "CMakeFiles/mfw_util.dir/strings.cpp.o"
  "CMakeFiles/mfw_util.dir/strings.cpp.o.d"
  "CMakeFiles/mfw_util.dir/table.cpp.o"
  "CMakeFiles/mfw_util.dir/table.cpp.o.d"
  "CMakeFiles/mfw_util.dir/thread_pool.cpp.o"
  "CMakeFiles/mfw_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/mfw_util.dir/yamlite.cpp.o"
  "CMakeFiles/mfw_util.dir/yamlite.cpp.o.d"
  "libmfw_util.a"
  "libmfw_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfw_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
