# Empty compiler generated dependencies file for mfw_util.
# This may be replaced when dependencies are built.
