file(REMOVE_RECURSE
  "CMakeFiles/multi_day_campaign.dir/multi_day_campaign.cpp.o"
  "CMakeFiles/multi_day_campaign.dir/multi_day_campaign.cpp.o.d"
  "multi_day_campaign"
  "multi_day_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_day_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
