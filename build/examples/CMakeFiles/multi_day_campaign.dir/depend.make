# Empty dependencies file for multi_day_campaign.
# This may be replaced when dependencies are built.
