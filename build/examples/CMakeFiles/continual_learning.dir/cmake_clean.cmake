file(REMOVE_RECURSE
  "CMakeFiles/continual_learning.dir/continual_learning.cpp.o"
  "CMakeFiles/continual_learning.dir/continual_learning.cpp.o.d"
  "continual_learning"
  "continual_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/continual_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
