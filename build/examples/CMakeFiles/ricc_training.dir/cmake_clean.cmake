file(REMOVE_RECURSE
  "CMakeFiles/ricc_training.dir/ricc_training.cpp.o"
  "CMakeFiles/ricc_training.dir/ricc_training.cpp.o.d"
  "ricc_training"
  "ricc_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ricc_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
