# Empty compiler generated dependencies file for ricc_training.
# This may be replaced when dependencies are built.
