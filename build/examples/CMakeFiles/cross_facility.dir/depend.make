# Empty dependencies file for cross_facility.
# This may be replaced when dependencies are built.
