file(REMOVE_RECURSE
  "CMakeFiles/cross_facility.dir/cross_facility.cpp.o"
  "CMakeFiles/cross_facility.dir/cross_facility.cpp.o.d"
  "cross_facility"
  "cross_facility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_facility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
