# Empty dependencies file for continual_inference.
# This may be replaced when dependencies are built.
