file(REMOVE_RECURSE
  "CMakeFiles/continual_inference.dir/continual_inference.cpp.o"
  "CMakeFiles/continual_inference.dir/continual_inference.cpp.o.d"
  "continual_inference"
  "continual_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/continual_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
