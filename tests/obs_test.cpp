// Unit tests for the obs layer: TraceRecorder span semantics under the sim
// clock, thread-safety under pool concurrency, MetricsRegistry label
// handling, and Chrome trace-event export validity (checked with a small
// built-in JSON syntax validator — no external parser in tier 1).
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <string>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "util/thread_pool.hpp"

namespace mfw::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON syntax checker (value grammar only). Returns
// true iff the whole string is one valid JSON value.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_])))
              return false;
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    for (const char* p = word; *p; ++p, ++pos_)
      if (pos_ >= text_.size() || text_[pos_] != *p) return false;
    return true;
  }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// TraceRecorder

TEST(TraceRecorder, DisabledRecordingIsInvisible) {
  TraceRecorder rec;
  EXPECT_FALSE(rec.enabled());
  const auto span = rec.begin_span("t", "cat", "noop");
  EXPECT_FALSE(span.valid());
  rec.end_span(span);  // must be a safe no-op
  rec.instant("t", "cat", "nothing");
  rec.add_span("t", "cat", "nothing", 0.0, 1.0);
  EXPECT_EQ(rec.span_count(), 0u);
  EXPECT_EQ(rec.instant_count(), 0u);
  EXPECT_TRUE(rec.tracks().empty());
}

TEST(TraceRecorder, SpansStampedFromSimClock) {
  sim::SimEngine engine;
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.set_clock(&engine);

  SpanId outer, inner;
  engine.schedule_at(1.0, [&] { outer = rec.begin_span("lane", "c", "outer"); });
  engine.schedule_at(2.0, [&] { inner = rec.begin_span("lane", "c", "inner"); });
  engine.schedule_at(3.0, [&] { rec.end_span(inner, {{"k", "v"}}); });
  engine.schedule_at(5.0, [&] { rec.end_span(outer); });
  engine.run();

  const auto spans = rec.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Spans are stored in begin order; nested span is fully contained.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_DOUBLE_EQ(spans[0].start, 1.0);
  EXPECT_DOUBLE_EQ(spans[0].end, 5.0);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_DOUBLE_EQ(spans[1].start, 2.0);
  EXPECT_DOUBLE_EQ(spans[1].end, 3.0);
  EXPECT_GE(spans[1].start, spans[0].start);
  EXPECT_LE(spans[1].end, spans[0].end);
  EXPECT_DOUBLE_EQ(spans[1].duration(), 1.0);
  ASSERT_EQ(spans[1].args.size(), 1u);
  EXPECT_EQ(spans[1].args[0].first, "k");
  // Both spans share the interned track.
  EXPECT_EQ(spans[0].track, spans[1].track);
  EXPECT_EQ(rec.open_span_count(), 0u);
  rec.set_clock(nullptr);
}

TEST(TraceRecorder, TracksInternPerProcess) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.instant("a", "c", "x");
  rec.instant("a", "c", "y");
  const auto pid = rec.begin_process("run2");
  rec.instant("a", "c", "z");  // same name, new process -> new track
  const auto tracks = rec.tracks();
  ASSERT_EQ(tracks.size(), 2u);
  EXPECT_EQ(tracks[0].name, "a");
  EXPECT_EQ(tracks[1].name, "a");
  EXPECT_NE(tracks[0].process, tracks[1].process);
  EXPECT_EQ(tracks[1].process, pid);
  const auto instants = rec.instants();
  ASSERT_EQ(instants.size(), 3u);
  EXPECT_EQ(instants[0].track, instants[1].track);
  EXPECT_NE(instants[1].track, instants[2].track);
}

TEST(TraceRecorder, OpenSpanCountAndClear) {
  TraceRecorder rec;
  rec.set_enabled(true);
  const auto a = rec.begin_span("t", "c", "a");
  rec.begin_span("t", "c", "b");
  EXPECT_EQ(rec.open_span_count(), 2u);
  rec.end_span(a);
  EXPECT_EQ(rec.open_span_count(), 1u);
  rec.clear();
  EXPECT_EQ(rec.span_count(), 0u);
  // A stale handle from before clear() must not crash or corrupt.
  rec.end_span(a);
  EXPECT_EQ(rec.span_count(), 0u);
}

TEST(TraceRecorder, ConcurrentRecordingFromPoolThreads) {
  TraceRecorder rec;
  rec.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::atomic<int> done{0};
  {
    util::ThreadPool pool(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.submit([&, t] {
        const std::string track = "w" + std::to_string(t);
        for (int i = 0; i < kPerThread; ++i) {
          const auto span = rec.begin_span(track, "c", "job");
          rec.instant(track, "c", "tick");
          rec.end_span(span);
        }
        done.fetch_add(1);
      });
    }
    pool.shutdown();
  }
  EXPECT_EQ(done.load(), kThreads);
  EXPECT_EQ(rec.span_count(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(rec.instant_count(),
            static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(rec.open_span_count(), 0u);
  for (const auto& span : rec.spans()) EXPECT_TRUE(span.closed());
  EXPECT_EQ(rec.tracks().size(), static_cast<std::size_t>(kThreads));
}

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistry, CountersAccumulatePerLabelSet) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  reg.counter_add("mfw.test.files_total", 1, {{"product", "MOD02"}});
  reg.counter_add("mfw.test.files_total", 2, {{"product", "MOD02"}});
  reg.counter_add("mfw.test.files_total", 5, {{"product", "MOD03"}});
  reg.counter_add("mfw.test.files_total", 7);  // label-less series is distinct
  EXPECT_DOUBLE_EQ(reg.counter("mfw.test.files_total", {{"product", "MOD02"}}),
                   3.0);
  EXPECT_DOUBLE_EQ(reg.counter("mfw.test.files_total", {{"product", "MOD03"}}),
                   5.0);
  EXPECT_DOUBLE_EQ(reg.counter("mfw.test.files_total"), 7.0);
  EXPECT_DOUBLE_EQ(reg.counter("mfw.test.unknown"), 0.0);
}

TEST(MetricsRegistry, LabelOrderDoesNotSplitSeries) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  reg.counter_add("c", 1, {{"a", "1"}, {"b", "2"}});
  reg.counter_add("c", 1, {{"b", "2"}, {"a", "1"}});
  EXPECT_DOUBLE_EQ(reg.counter("c", {{"b", "2"}, {"a", "1"}}), 2.0);
  EXPECT_EQ(reg.counters().size(), 1u);
}

TEST(MetricsRegistry, GaugesKeepLatestValue) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  EXPECT_FALSE(reg.gauge("g").has_value());
  reg.gauge_set("g", 3, {{"node", "0"}});
  reg.gauge_set("g", 8, {{"node", "0"}});
  reg.gauge_set("g", 2, {{"node", "1"}});
  EXPECT_DOUBLE_EQ(reg.gauge("g", {{"node", "0"}}).value(), 8.0);
  EXPECT_DOUBLE_EQ(reg.gauge("g", {{"node", "1"}}).value(), 2.0);
}

TEST(MetricsRegistry, DistributionsTrackStatsAndBuckets) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  const HistogramSpec spec{0.0, 10.0, 10};
  reg.observe("d", 1.5, {}, spec);
  reg.observe("d", 2.5);  // spec already fixed by the first observation
  reg.observe("d", 9.5);
  const auto dist = reg.distribution("d");
  ASSERT_TRUE(dist.has_value());
  EXPECT_EQ(dist->stats.count(), 3u);
  EXPECT_DOUBLE_EQ(dist->stats.min(), 1.5);
  EXPECT_DOUBLE_EQ(dist->stats.max(), 9.5);
  ASSERT_TRUE(dist->histogram.has_value());
  EXPECT_EQ(dist->histogram->total(), 3u);
  EXPECT_EQ(dist->histogram->count(1), 1u);  // 1.5
  EXPECT_EQ(dist->histogram->count(2), 1u);  // 2.5
  EXPECT_EQ(dist->histogram->count(9), 1u);  // 9.5
}

TEST(MetricsRegistry, DisabledRegistryRecordsNothing) {
  MetricsRegistry reg;
  reg.counter_add("c", 1);
  reg.gauge_set("g", 1);
  reg.observe("d", 1);
  EXPECT_TRUE(reg.counters().empty());
  EXPECT_TRUE(reg.gauges().empty());
  EXPECT_TRUE(reg.distributions().empty());
}

// ---------------------------------------------------------------------------
// Exporters

TEST(TraceExport, ChromeTraceJsonIsValidAndComplete) {
  sim::SimEngine engine;
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.set_clock(&engine);
  engine.schedule_at(0.5, [&] {
    const auto span = rec.begin_span("stages/download", "stage", "download",
                                     {{"quote", "a\"b"}, {"newline", "x\ny"}});
    engine.schedule_at(1.25, [&, span] {
      rec.end_span(span, {{"files", "3"}});
      rec.instant("flow/granules", "flow", "granule.ready",
                  {{"key", "A2017026.1855"}});
    });
  });
  engine.run();
  rec.begin_process("second-run");
  rec.add_span("flows/run1", "flow", "aicca-inference", 2.0, 2.5);
  rec.set_clock(nullptr);

  const auto json = to_chrome_trace_json(rec);
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;

  // Golden structure probes (kept substring-level so formatting may evolve).
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"download\""), std::string::npos);
  EXPECT_NE(json.find("\"granule.ready\""), std::string::npos);
  EXPECT_NE(json.find("\"second-run\""), std::string::npos);
  // 0.5 s -> 500000 microseconds; 0.75 s duration -> 750000.
  EXPECT_NE(json.find("\"ts\":500000.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":750000.000"), std::string::npos);
  // Escaping: the quote and newline must be JSON-escaped.
  EXPECT_NE(json.find("a\\\"b"), std::string::npos);
  EXPECT_NE(json.find("x\\ny"), std::string::npos);
}

TEST(TraceExport, ControlCharactersEscapeAsUnicode) {
  // Sub-0x20 bytes must become \uXXXX escapes, never raw bytes.
  EXPECT_EQ(json_escape("\x1f"), "\\u001f");
  // Adjacent-literal splicing: the \x escape resolves before concatenation.
  EXPECT_EQ(json_escape("a\x01" "b"), "a\\u0001b");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape("nl\nquote\"back\\"), "nl\\nquote\\\"back\\\\");
  EXPECT_EQ(json_escape("plain ascii"), "plain ascii");
}

TEST(TraceExport, AdversarialLabelsStayValidJson) {
  // Control characters smuggled into track/category/name/args (e.g. from a
  // hostile catalog entry) must not break the exported trace.
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.add_span("track\x02" "lane", "cat\tegory", "name\x01" "mid\x1f" "end",
               0.0, 1.0, {{"key\x03", "value\nwith\x04" "stuff"}});
  rec.instant("track\x02" "lane", "c", "bell\x07", {{"quote", "\"\\"}});

  const auto json = to_chrome_trace_json(rec);
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_NE(json.find("\\u001f"), std::string::npos);
  EXPECT_NE(json.find("\\u0003"), std::string::npos);
  EXPECT_NE(json.find("\\u0007"), std::string::npos);
  // No raw control character may survive outside the structural newlines the
  // writer emits between records.
  for (const char c : json) {
    if (static_cast<unsigned char>(c) < 0x20) {
      EXPECT_EQ(c, '\n');
    }
  }
}

TEST(MetricsExport, TextDumpListsEverySeries) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  reg.counter_add("mfw.x.files_total", 4, {{"product", "MOD02"}});
  reg.gauge_set("mfw.x.busy", 7, {{"stage", "preprocess"}});
  reg.observe("mfw.x.seconds", 0.5, {}, HistogramSpec{0.0, 1.0, 4});
  const auto text = to_metrics_text(reg);
  EXPECT_NE(text.find("mfw.x.files_total{product=\"MOD02\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("mfw.x.busy{stage=\"preprocess\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find("mfw.x.seconds"), std::string::npos);
  EXPECT_NE(text.find("count=1"), std::string::npos);
}

TEST(GlobalObs, SetGloballyEnabledTogglesBothSingletons) {
  set_globally_enabled(true);
  EXPECT_TRUE(TraceRecorder::instance().enabled());
  EXPECT_TRUE(MetricsRegistry::instance().enabled());
  set_globally_enabled(false);
  EXPECT_FALSE(TraceRecorder::instance().enabled());
  EXPECT_FALSE(MetricsRegistry::instance().enabled());
  TraceRecorder::instance().clear();
  MetricsRegistry::instance().clear();
}

}  // namespace
}  // namespace mfw::obs
