// Tests for the cross-facility federation layer: facility profiles, the
// pipeline-as-a-service registry (templates + overrides), and the campaign
// orchestrator's placement policies.
#include <gtest/gtest.h>

#include "federation/orchestrator.hpp"
#include "util/log.hpp"

namespace mfw::federation {
namespace {

class FederationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Logger::instance().set_level(util::LogLevel::kError);
  }
  void TearDown() override {
    util::Logger::instance().set_level(util::LogLevel::kInfo);
  }
};

TEST_F(FederationTest, BuiltinProfilesDiffer) {
  const auto olcf = FacilityProfile::olcf_defiant();
  const auto nersc = FacilityProfile::nersc_perlmutter_like();
  const auto alcf = FacilityProfile::alcf_polaris_like();
  EXPECT_EQ(olcf.total_nodes, 36);
  EXPECT_GT(nersc.total_nodes, olcf.total_nodes);
  EXPECT_LT(alcf.total_nodes, olcf.total_nodes);
  EXPECT_NE(nersc.scheduler_latency, alcf.scheduler_latency);
}

TEST_F(FederationTest, ProfileFromYamlAndValidation) {
  const auto profile = FacilityProfile::from_yaml(util::parse_yaml(R"(
name: CSCS-like
total_nodes: 48
workers_per_node: 12
scheduler_latency: 3.0
node_r_max: 40
node_tau: 3.0
archive_bandwidth: 50MB
analysis_link: 2GB
)"));
  EXPECT_EQ(profile.name, "CSCS-like");
  EXPECT_EQ(profile.total_nodes, 48);
  EXPECT_DOUBLE_EQ(profile.archive_bandwidth_bps, 50.0 * 1024 * 1024);
  EXPECT_THROW(FacilityProfile::from_yaml(util::parse_yaml("total_nodes: 0\n")),
               util::YamlError);
}

TEST_F(FederationTest, ProfileAppliesToConfig) {
  pipeline::EomlConfig config;
  config.preprocess_nodes = 50;  // more than Polaris-like has
  FacilityProfile::alcf_polaris_like().apply(config);
  EXPECT_EQ(config.facility_total_nodes, 24);
  EXPECT_EQ(config.preprocess_nodes, 24);  // clamped to the partition
  EXPECT_DOUBLE_EQ(config.slurm_latency, 4.0);
  EXPECT_DOUBLE_EQ(config.node_r_max, 44.0);
  EXPECT_NO_THROW(config.validate());
}

TEST_F(FederationTest, RegistryPublishListInstantiate) {
  PipelineRegistry registry;
  registry.publish_builtin();
  EXPECT_GE(registry.size(), 3u);
  EXPECT_TRUE(registry.has("aicca-daily"));
  EXPECT_FALSE(registry.entry("aicca-daily").description.empty());

  const auto config = registry.instantiate("aicca-daily");
  EXPECT_EQ(config.preprocess_nodes, 10);
  EXPECT_TRUE(config.daytime_only);
  EXPECT_THROW(registry.instantiate("nope"), std::invalid_argument);
}

TEST_F(FederationTest, RegistryOverridesDeepMerge) {
  PipelineRegistry registry;
  registry.publish_builtin();
  const auto config = registry.instantiate("aicca-daily", R"(
workflow:
  max_files: 6
  span: {first_day: 42}
preprocess:
  nodes: 2
)");
  ASSERT_TRUE(config.max_files.has_value());
  EXPECT_EQ(*config.max_files, 6u);
  EXPECT_EQ(config.span.first_day, 42);
  EXPECT_EQ(config.preprocess_nodes, 2);
  // Untouched template values survive the merge.
  EXPECT_EQ(config.workers_per_node, 8);
  EXPECT_EQ(config.download_workers, 3);
}

TEST_F(FederationTest, RegistryRejectsBrokenTemplates) {
  PipelineRegistry registry;
  EXPECT_THROW(
      registry.publish(PipelineEntry{"bad", "x", "download: {workers: 0}\n"}),
      std::invalid_argument);
  EXPECT_THROW(registry.publish(PipelineEntry{"", "x", ""}),
               std::invalid_argument);
}

std::vector<CampaignJob> small_jobs(int count) {
  std::vector<CampaignJob> jobs;
  for (int day = 1; day <= count; ++day) {
    jobs.push_back(CampaignJob{
        "aicca-daily",
        "workflow: {max_files: 4, span: {first_day: " + std::to_string(day) +
            "}}\npreprocess: {nodes: 2}\n"});
  }
  return jobs;
}

TEST_F(FederationTest, CampaignRunsAllJobsAcrossFacilities) {
  PipelineRegistry registry;
  registry.publish_builtin();
  CampaignOrchestrator orchestrator(
      registry,
      {FacilityProfile::olcf_defiant(),
       FacilityProfile::nersc_perlmutter_like()},
      PlacementPolicy::kRoundRobin);
  int observed = 0;
  const auto report =
      orchestrator.run(small_jobs(4), [&](const JobOutcome&) { ++observed; });
  EXPECT_EQ(report.jobs.size(), 4u);
  EXPECT_EQ(observed, 4);
  EXPECT_GT(report.total_tiles, 0u);
  // Round-robin used both facilities.
  std::set<std::string> used;
  for (const auto& job : report.jobs) used.insert(job.facility);
  EXPECT_EQ(used.size(), 2u);
  // Campaign makespan equals the slowest facility queue.
  double slowest = 0;
  for (const auto& [name, busy] : report.facility_busy_time)
    slowest = std::max(slowest, busy);
  EXPECT_DOUBLE_EQ(report.campaign_makespan, slowest);
}

TEST_F(FederationTest, LeastLoadedBeatsSingleFacility) {
  PipelineRegistry registry;
  registry.publish_builtin();
  const auto jobs = small_jobs(6);

  CampaignOrchestrator single(registry, {FacilityProfile::olcf_defiant()});
  const auto single_report = single.run(jobs);

  CampaignOrchestrator federated(
      registry,
      {FacilityProfile::olcf_defiant(),
       FacilityProfile::nersc_perlmutter_like(),
       FacilityProfile::alcf_polaris_like()},
      PlacementPolicy::kLeastLoaded);
  const auto federated_report = federated.run(jobs);

  EXPECT_EQ(single_report.total_tiles, federated_report.total_tiles);
  EXPECT_LT(federated_report.campaign_makespan,
            single_report.campaign_makespan);
}

TEST_F(FederationTest, FacilityCharacteristicsShapeJobMakespan) {
  // The same job must take longer on a facility whose archive path is the
  // bottleneck (WAN below the workers' aggregate connection throughput).
  PipelineRegistry registry;
  registry.publish_builtin();
  const std::vector<CampaignJob> job = small_jobs(1);

  auto fast_profile = FacilityProfile::olcf_defiant();
  fast_profile.archive_bandwidth_bps = 23.5 * 1024 * 1024;
  auto slow_profile = fast_profile;
  slow_profile.name = "throttled";
  slow_profile.archive_bandwidth_bps = 6.0 * 1024 * 1024;

  CampaignOrchestrator fast(registry, {fast_profile});
  CampaignOrchestrator slow(registry, {slow_profile});
  const double fast_time = fast.run(job).jobs[0].makespan;
  const double slow_time = slow.run(job).jobs[0].makespan;
  EXPECT_LT(fast_time * 1.5, slow_time);
}

TEST_F(FederationTest, EmptyFacilitiesRejected) {
  PipelineRegistry registry;
  registry.publish_builtin();
  EXPECT_THROW(CampaignOrchestrator(registry, {}), std::invalid_argument);
}

}  // namespace
}  // namespace mfw::federation
