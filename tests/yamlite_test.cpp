// Unit tests for the yamlite parser: the YAML subset used by workflow
// configuration files and flow definitions.
#include <gtest/gtest.h>

#include "util/yamlite.hpp"

namespace mfw::util {
namespace {

TEST(Yamlite, ScalarMap) {
  const auto doc = parse_yaml("a: 1\nb: hello\nc: 2.5\nd: true\n");
  EXPECT_EQ(doc["a"].as_int(), 1);
  EXPECT_EQ(doc["b"].as_string(), "hello");
  EXPECT_DOUBLE_EQ(doc["c"].as_double(), 2.5);
  EXPECT_TRUE(doc["d"].as_bool());
}

TEST(Yamlite, NestedMaps) {
  const auto doc = parse_yaml(
      "download:\n"
      "  workers: 3\n"
      "  endpoint:\n"
      "    name: defiant\n"
      "preprocess:\n"
      "  nodes: 10\n");
  EXPECT_EQ(doc["download"]["workers"].as_int(), 3);
  EXPECT_EQ(doc.path("download.endpoint.name").as_string(), "defiant");
  EXPECT_EQ(doc["preprocess"]["nodes"].as_int(), 10);
}

TEST(Yamlite, BlockList) {
  const auto doc = parse_yaml(
      "products:\n"
      "  - MOD02\n"
      "  - MOD03\n"
      "  - MOD06\n");
  ASSERT_EQ(doc["products"].size(), 3u);
  EXPECT_EQ(doc["products"].at(1).as_string(), "MOD03");
}

TEST(Yamlite, FlowList) {
  const auto doc = parse_yaml("products: [MOD02, MOD03, \"MOD06\"]\nempty: []\n");
  ASSERT_EQ(doc["products"].size(), 3u);
  EXPECT_EQ(doc["products"].at(2).as_string(), "MOD06");
  EXPECT_EQ(doc["empty"].size(), 0u);
}

TEST(Yamlite, FlowMap) {
  const auto doc = parse_yaml(
      "span: {year: 2022, first_day: 1, last_day: 7}\n"
      "nested: {a: {b: 2}, list: [1, 2], s: \"x, y\"}\n"
      "empty: {}\n");
  EXPECT_EQ(doc.path("span.year").as_int(), 2022);
  EXPECT_EQ(doc.path("span.last_day").as_int(), 7);
  EXPECT_EQ(doc.path("nested.a.b").as_int(), 2);
  ASSERT_EQ(doc.path("nested.list").size(), 2u);
  EXPECT_EQ(doc.path("nested.s").as_string(), "x, y");
  EXPECT_TRUE(doc["empty"].is_map());
  EXPECT_EQ(doc["empty"].size(), 0u);
}

TEST(Yamlite, FlowMapErrors) {
  EXPECT_THROW(parse_yaml("a: {k: 1\n"), YamlError);
  EXPECT_THROW(parse_yaml("a: {noseparator}\n"), YamlError);
}

TEST(Yamlite, MergeDeep) {
  const auto base = parse_yaml(
      "a: {x: 1, y: 2}\n"
      "keep: yes\n"
      "list: [1, 2]\n");
  const auto overlay = parse_yaml(
      "a: {y: 99, z: 3}\n"
      "list: [7]\n"
      "extra: new\n");
  const auto merged = merge_yaml(base, overlay);
  EXPECT_EQ(merged.path("a.x").as_int(), 1);    // kept from base
  EXPECT_EQ(merged.path("a.y").as_int(), 99);   // overridden
  EXPECT_EQ(merged.path("a.z").as_int(), 3);    // added
  EXPECT_EQ(merged["keep"].as_string(), "yes");
  EXPECT_EQ(merged["list"].size(), 1u);         // lists replace, not append
  EXPECT_EQ(merged["extra"].as_string(), "new");
}

TEST(Yamlite, ListOfMaps) {
  const auto doc = parse_yaml(
      "choices:\n"
      "  - variable: x\n"
      "    next: a\n"
      "  - variable: y\n"
      "    next: b\n");
  ASSERT_EQ(doc["choices"].size(), 2u);
  EXPECT_EQ(doc["choices"].at(0)["variable"].as_string(), "x");
  EXPECT_EQ(doc["choices"].at(1)["next"].as_string(), "b");
}

TEST(Yamlite, CommentsAndBlanks) {
  const auto doc = parse_yaml(
      "# top comment\n"
      "\n"
      "a: 1  # trailing comment\n"
      "b: \"has # inside quotes\"\n");
  EXPECT_EQ(doc["a"].as_int(), 1);
  EXPECT_EQ(doc["b"].as_string(), "has # inside quotes");
}

TEST(Yamlite, QuotedStringsAndNull) {
  const auto doc = parse_yaml("a: 'single'\nb: \"double\"\nc: null\nd: ~\n");
  EXPECT_EQ(doc["a"].as_string(), "single");
  EXPECT_EQ(doc["b"].as_string(), "double");
  EXPECT_TRUE(doc["c"].is_null());
  EXPECT_TRUE(doc["d"].is_null());
}

TEST(Yamlite, ColonInsideValue) {
  const auto doc = parse_yaml("url: https://ladsweb.modaps.eosdis.nasa.gov\n");
  EXPECT_EQ(doc["url"].as_string(), "https://ladsweb.modaps.eosdis.nasa.gov");
}

TEST(Yamlite, DefaultsWhenMissing) {
  const auto doc = parse_yaml("a: 1\n");
  EXPECT_EQ(doc["zzz"].as_int_or(5), 5);
  EXPECT_EQ(doc["zzz"].as_string_or("d"), "d");
  EXPECT_TRUE(doc.path("x.y.z").is_null());
  EXPECT_FALSE(doc.has("zzz"));
  EXPECT_TRUE(doc.has("a"));
}

TEST(Yamlite, RequireThrowsOnMissing) {
  const auto doc = parse_yaml("a: 1\n");
  EXPECT_THROW(doc.require("missing"), YamlError);
  EXPECT_NO_THROW(doc.require("a"));
}

TEST(Yamlite, ByteSizeScalars) {
  const auto doc = parse_yaml("size: 32GB\n");
  EXPECT_EQ(doc["size"].as_bytes(), 32ull * 1024 * 1024 * 1024);
}

TEST(Yamlite, TypeErrors) {
  const auto doc = parse_yaml("a: hello\nlist: [1]\n");
  EXPECT_THROW(doc["a"].as_int(), YamlError);
  EXPECT_THROW(doc["a"].as_bool(), YamlError);
  EXPECT_THROW(doc["list"].as_string(), YamlError);
  EXPECT_THROW(doc["a"].at(0), YamlError);
}

TEST(Yamlite, RejectsTabsAndBadIndent) {
  EXPECT_THROW(parse_yaml("a:\n\tb: 1\n"), YamlError);
  EXPECT_THROW(parse_yaml("a: 1\n   stray\n"), YamlError);
}

TEST(Yamlite, KeyOrderPreserved) {
  const auto doc = parse_yaml("z: 1\na: 2\nm: 3\n");
  ASSERT_EQ(doc.keys().size(), 3u);
  EXPECT_EQ(doc.keys()[0], "z");
  EXPECT_EQ(doc.keys()[1], "a");
  EXPECT_EQ(doc.keys()[2], "m");
}

TEST(Yamlite, DumpRoundTrip) {
  const char* text =
      "name: flow\n"
      "states:\n"
      "  one:\n"
      "    type: action\n"
      "    items:\n"
      "      - a\n"
      "      - b\n";
  const auto doc = parse_yaml(text);
  const auto doc2 = parse_yaml(doc.dump());
  EXPECT_EQ(doc2["name"].as_string(), "flow");
  EXPECT_EQ(doc2.path("states.one.type").as_string(), "action");
  ASSERT_EQ(doc2.path("states.one.items").size(), 2u);
  EXPECT_EQ(doc2.path("states.one.items").at(1).as_string(), "b");
}

TEST(Yamlite, QuotedScalarWithColonRoundTrips) {
  // A quoted scalar whose body contains ": " must survive parse -> dump ->
  // parse. Before the fix, dump emitted map keys raw, so `"a: b": 1`
  // re-parsed as `a: "b: 1"`.
  const auto doc = parse_yaml("\"a: b\": 1\nwhen: \"time: 12:30\"\n");
  EXPECT_EQ(doc["a: b"].as_int(), 1);
  EXPECT_EQ(doc["when"].as_string(), "time: 12:30");
  const auto doc2 = parse_yaml(doc.dump());
  EXPECT_EQ(doc2["a: b"].as_int(), 1);
  EXPECT_EQ(doc2["when"].as_string(), "time: 12:30");
}

TEST(Yamlite, BraceScalarRoundTrips) {
  // "{x}" dumped unquoted re-parses as a malformed flow map.
  const auto doc = parse_yaml("tmpl: \"{stage}\"\n");
  EXPECT_EQ(doc["tmpl"].as_string(), "{stage}");
  const auto doc2 = parse_yaml(doc.dump());
  EXPECT_EQ(doc2["tmpl"].as_string(), "{stage}");
}

TEST(Yamlite, FlowTrailingCommaDropsEmptyItem) {
  const auto doc = parse_yaml("a: [x, y,]\nb: {k: 1,}\nc: [ , ]\n");
  ASSERT_EQ(doc["a"].size(), 2u);
  EXPECT_EQ(doc["a"].at(1).as_string(), "y");
  ASSERT_EQ(doc["b"].size(), 1u);
  EXPECT_EQ(doc["b"]["k"].as_int(), 1);
  // `[ , ]` keeps the interior empty as an explicit null item.
  ASSERT_EQ(doc["c"].size(), 1u);
  EXPECT_TRUE(doc["c"].at(0).is_null());
}

TEST(Yamlite, InteriorEmptyFlowItemIsNull) {
  const auto doc = parse_yaml("a: [x, , z]\n");
  ASSERT_EQ(doc["a"].size(), 3u);
  EXPECT_TRUE(doc["a"].at(1).is_null());
  EXPECT_EQ(doc["a"].at(2).as_string(), "z");
}

TEST(Yamlite, BlockListEmptyItemsAreNull) {
  const auto doc = parse_yaml(
      "items:\n"
      "  - a\n"
      "  -\n"
      "  - \n"  // whitespace-only after the dash
      "  - b\n");
  ASSERT_EQ(doc["items"].size(), 4u);
  EXPECT_TRUE(doc["items"].at(1).is_null());
  EXPECT_TRUE(doc["items"].at(2).is_null());
  EXPECT_EQ(doc["items"].at(3).as_string(), "b");
}

TEST(Yamlite, FlowMapAsBlockListItem) {
  // `- {a: 1}` is a flow-map item, not an inline map entry keyed "{a".
  const auto doc = parse_yaml(
      "edges:\n"
      "  - {from: a, to: b, mode: streaming}\n"
      "  - {from: b, to: c}\n");
  ASSERT_EQ(doc["edges"].size(), 2u);
  EXPECT_EQ(doc["edges"].at(0)["from"].as_string(), "a");
  EXPECT_EQ(doc["edges"].at(0)["mode"].as_string(), "streaming");
  EXPECT_EQ(doc["edges"].at(1)["to"].as_string(), "c");
}

TEST(Yamlite, NodesCarrySourceLines) {
  const auto doc = parse_yaml(
      "a: 1\n"
      "block:\n"
      "  nested: x\n"
      "list:\n"
      "  - first\n"
      "  - second\n"
      "nothing:\n");
  EXPECT_EQ(doc.line(), 1u);
  EXPECT_EQ(doc["a"].line(), 1u);
  EXPECT_EQ(doc["block"].line(), 3u);
  EXPECT_EQ(doc["block"]["nested"].line(), 3u);
  EXPECT_EQ(doc["list"].line(), 5u);
  EXPECT_EQ(doc["list"].at(1).line(), 6u);
  EXPECT_EQ(doc["nothing"].line(), 7u);
}

TEST(Yamlite, DocumentMarkerIgnored) {
  const auto doc = parse_yaml("---\na: 1\n");
  EXPECT_EQ(doc["a"].as_int(), 1);
}

TEST(Yamlite, EmptyDocumentIsEmptyMap) {
  const auto doc = parse_yaml("");
  EXPECT_TRUE(doc.is_map());
  EXPECT_EQ(doc.size(), 0u);
}

}  // namespace
}  // namespace mfw::util
