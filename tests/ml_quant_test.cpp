// Int8 + fused inference substrate tests (DESIGN.md §13): quantize round
// trips, gemm_s8 vs an exact reference, fused fp32 bitwise equivalence with
// the layer path, and int8 cluster-assignment agreement with fp32.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "ml/kernels.hpp"
#include "ml/layers.hpp"
#include "ml/quant.hpp"
#include "ml/ricc.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace mfw::ml {
namespace {

Tensor random_tensor(std::vector<int> shape, std::uint64_t seed) {
  Tensor t(std::move(shape));
  util::Rng rng(seed);
  for (std::size_t i = 0; i < t.size(); ++i)
    t[i] = static_cast<float>(rng.normal());
  return t;
}

std::vector<Tensor> random_tiles(int n, int channels, int size,
                                 std::uint64_t seed) {
  std::vector<Tensor> tiles;
  tiles.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    tiles.push_back(
        random_tensor({channels, size, size}, seed + static_cast<std::uint64_t>(i)));
  return tiles;
}

struct NaiveGuard {
  ~NaiveGuard() { kernels::set_use_naive(false); }
};

TEST(QuantKernels, QuantizeDequantizeRoundTripBound) {
  util::Rng rng(11);
  std::vector<float> x(513);
  float maxabs = 0.0f;
  for (auto& v : x) {
    v = static_cast<float>(rng.normal()) * 3.0f;
    maxabs = std::max(maxabs, std::abs(v));
  }
  const float scale = maxabs / 127.0f;
  std::vector<std::int8_t> q(x.size());
  std::vector<float> back(x.size());
  kernels::quantize_s8(x.data(), x.size(), scale, q.data());
  kernels::dequantize_s8(q.data(), q.size(), scale, back.data());
  // Round-to-nearest: |x - q*scale| <= scale/2 for in-range values.
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_GE(q[i], -127);
    EXPECT_LE(q[i], 127);
    EXPECT_LE(std::abs(x[i] - back[i]), scale * 0.5f + 1e-6f) << i;
  }
  // Exact zeros stay exact (padding relies on this).
  const float zero = 0.0f;
  std::int8_t qz = 99;
  kernels::quantize_s8(&zero, 1, scale, &qz);
  EXPECT_EQ(qz, 0);
}

TEST(QuantKernels, GemmS8MatchesExactReference) {
  // Shapes chosen to hit the AVX2 main loop, the n<16 column tail, odd k
  // (pack zero-padding), and the scalar-dispatch small cases.
  const struct {
    std::size_t m, n, k;
  } shapes[] = {{1, 1, 1},   {2, 3, 5},    {4, 16, 8},  {3, 37, 27},
                {8, 100, 54}, {5, 15, 7},  {1, 64, 150}};
  util::Rng rng(5);
  for (const auto& s : shapes) {
    SCOPED_TRACE("m=" + std::to_string(s.m) + " n=" + std::to_string(s.n) +
                 " k=" + std::to_string(s.k));
    std::vector<std::int8_t> a(s.m * s.k), b(s.k * s.n);
    for (auto& v : a)
      v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
    for (auto& v : b)
      v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
    std::vector<std::int32_t> c(s.m * s.n, -1), ref(s.m * s.n, 0);
    for (std::size_t i = 0; i < s.m; ++i)
      for (std::size_t p = 0; p < s.k; ++p)
        for (std::size_t j = 0; j < s.n; ++j)
          ref[i * s.n + j] += static_cast<std::int32_t>(a[i * s.k + p]) *
                              static_cast<std::int32_t>(b[p * s.n + j]);
    kernels::gemm_s8(s.m, s.n, s.k, a.data(), b.data(), c.data());
    EXPECT_EQ(c, ref);
  }
}

TEST(QuantKernels, Im2colS8MatchesFloatGeometry) {
  const int in_c = 2, in_h = 6, in_w = 5, kernel = 3, stride = 2, pad = 1;
  util::Rng rng(17);
  std::vector<float> xf(static_cast<std::size_t>(in_c) * in_h * in_w);
  std::vector<std::int8_t> xq(xf.size());
  for (std::size_t i = 0; i < xf.size(); ++i) {
    xq[i] = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
    xf[i] = static_cast<float>(xq[i]);
  }
  const int out_h = kernels::conv_out_dim(in_h, kernel, stride, pad);
  const int out_w = kernels::conv_out_dim(in_w, kernel, stride, pad);
  const std::size_t rows = kernels::im2col_rows(in_c, kernel);
  const std::size_t cols = static_cast<std::size_t>(out_h) * out_w;
  std::vector<float> colf(rows * cols);
  std::vector<std::int8_t> colq(rows * cols);
  kernels::im2col(xf.data(), in_c, in_h, in_w, kernel, stride, pad,
                  colf.data());
  kernels::im2col_s8(xq.data(), in_c, in_h, in_w, kernel, stride, pad,
                     colq.data());
  for (std::size_t i = 0; i < colf.size(); ++i)
    EXPECT_EQ(static_cast<float>(colq[i]), colf[i]) << i;
}

TEST(QuantKernels, FusedConvBitwiseMatchesUnfusedAcrossShapes) {
  const int in_c = 3, out_c = 4, in_h = 9, in_w = 11;
  for (int kernel : {1, 3, 5}) {
    for (int stride : {1, 2}) {
      for (int pad : {0, 1, 2}) {
        if (in_h + 2 * pad < kernel) continue;
        SCOPED_TRACE("kernel=" + std::to_string(kernel) +
                     " stride=" + std::to_string(stride) +
                     " pad=" + std::to_string(pad));
        util::Rng rng_a(42), rng_b(42);
        Conv2d conv(in_c, out_c, kernel, stride, pad, rng_a);
        Conv2d conv_ref(in_c, out_c, kernel, stride, pad, rng_b);
        LeakyReLU act(0.1f);
        const Tensor x = random_tensor({in_c, in_h, in_w}, 7);
        const Tensor ref = act.forward(conv_ref.forward(x));

        const int out_h = kernels::conv_out_dim(in_h, kernel, stride, pad);
        const int out_w = kernels::conv_out_dim(in_w, kernel, stride, pad);
        std::vector<float> col(kernels::im2col_rows(in_c, kernel) *
                               static_cast<std::size_t>(out_h) * out_w);
        Tensor out({out_c, out_h, out_w});
        kernels::conv2d_bias_leaky_f32(
            x.data(), in_c, in_h, in_w, conv.weight().data(),
            conv.bias().data(), out_c, kernel, stride, pad, 0.1f, col.data(),
            out.data());
        ASSERT_EQ(out.shape(), ref.shape());
        for (std::size_t i = 0; i < out.size(); ++i)
          ASSERT_EQ(out[i], ref[i]) << "element " << i;  // bitwise
      }
    }
  }
}

RiccConfig small_config() {
  RiccConfig config;
  config.tile_size = 16;
  config.channels = 6;
  config.base_channels = 4;
  config.conv_blocks = 2;
  config.latent_dim = 8;
  config.num_classes = 42;
  return config;
}

TEST(FusedEncoder, BitwiseMatchesLayerPathIncludingBatch) {
  RiccModel model(small_config());
  const auto tiles = random_tiles(9, 6, 16, 100);
  // Reference latents on the default layer path.
  std::vector<Tensor> ref;
  for (const Tensor& t : tiles) ref.push_back(model.encode(t));

  model.set_encode_path(RiccModel::EncodePath::kFused);
  EXPECT_EQ(model.active_path(), RiccModel::EncodePath::kFused);
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    const Tensor z = model.encode(tiles[i]);
    ASSERT_EQ(z.shape(), ref[i].shape());
    for (std::size_t e = 0; e < z.size(); ++e)
      ASSERT_EQ(z[e], ref[i][e]) << "tile " << i << " element " << e;
  }
  // encode_batch stays bitwise identical across pool sizes on the fused path.
  for (const std::size_t threads : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
    std::optional<util::ThreadPool> pool;
    if (threads > 0) pool.emplace(threads);
    auto zs = model.encode_batch(tiles, pool ? &*pool : nullptr);
    ASSERT_EQ(zs.size(), tiles.size());
    for (std::size_t i = 0; i < tiles.size(); ++i)
      for (std::size_t e = 0; e < zs[i].size(); ++e)
        ASSERT_EQ(zs[i][e], ref[i][e]) << "threads " << threads;
  }
}

TEST(FusedEncoder, NaiveOracleOverrideForcesLayerPath) {
  NaiveGuard guard;
  RiccModel model(small_config());
  model.set_encode_path(RiccModel::EncodePath::kFused);
  kernels::set_use_naive(true);
  EXPECT_EQ(model.active_path(), RiccModel::EncodePath::kLayers);
  EXPECT_EQ(model.encode_path(), RiccModel::EncodePath::kFused);
}

TEST(FusedEncoder, RejectsNonRiccPattern) {
  Sequential net;
  util::Rng rng(3);
  net.emplace<Dense>(4, 2, rng);
  EXPECT_THROW(FusedEncoder::build(net, 16), std::invalid_argument);
}

TEST(QuantizedEncoder, RequiresCalibrationBeforeSelection) {
  RiccModel model(small_config());
  EXPECT_FALSE(model.int8_ready());
  EXPECT_THROW(model.set_encode_path(RiccModel::EncodePath::kInt8),
               std::logic_error);
  const auto sample = random_tiles(4, 6, 16, 9);
  model.calibrate_int8(sample);
  EXPECT_TRUE(model.int8_ready());
  model.set_encode_path(RiccModel::EncodePath::kInt8);
  EXPECT_EQ(model.active_path(), RiccModel::EncodePath::kInt8);
}

TEST(QuantizedEncoder, LatentsCloseToFp32AndBatchDeterministic) {
  RiccModel model(small_config());
  const auto tiles = random_tiles(16, 6, 16, 200);
  model.calibrate_int8(std::span<const Tensor>(tiles).subspan(0, 8));
  std::vector<Tensor> ref;
  for (const Tensor& t : tiles) ref.push_back(model.encode(t));

  model.set_encode_path(RiccModel::EncodePath::kInt8);
  // Latent scale for a relative error bound.
  float ref_norm = 0.0f;
  for (const Tensor& z : ref) ref_norm = std::max(ref_norm, z.norm());
  std::vector<Tensor> q;
  for (const Tensor& t : tiles) q.push_back(model.encode(t));
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    float err = 0.0f;
    for (std::size_t e = 0; e < q[i].size(); ++e)
      err += (q[i][e] - ref[i][e]) * (q[i][e] - ref[i][e]);
    err = std::sqrt(err);
    EXPECT_LT(err, 0.1f * ref_norm) << "tile " << i;
  }
  // Int8 batch encode: same exact integers at any thread count.
  for (const std::size_t threads : {std::size_t{0}, std::size_t{2}}) {
    std::optional<util::ThreadPool> pool;
    if (threads > 0) pool.emplace(threads);
    auto zs = model.encode_batch(tiles, pool ? &*pool : nullptr);
    for (std::size_t i = 0; i < tiles.size(); ++i)
      for (std::size_t e = 0; e < zs[i].size(); ++e)
        ASSERT_EQ(zs[i][e], q[i][e]) << "threads " << threads;
  }
}

TEST(QuantizedEncoder, ClusterAssignmentAgreesWithFp32) {
  // The ISSUE-level gate (>= 99% on the trained ablation workload) runs in
  // ci_int8_smoke.sh; here an untrained model + random centroids must still
  // agree on the vast majority of tiles.
  RiccModel model(small_config());
  util::Rng rng(77);
  model.set_centroids(Tensor::he_normal({42, 8}, rng));
  const auto tiles = random_tiles(64, 6, 16, 300);
  model.calibrate_int8(std::span<const Tensor>(tiles).subspan(0, 16));

  std::vector<int> fp32_labels;
  for (const Tensor& t : tiles) fp32_labels.push_back(model.predict(t));
  model.set_encode_path(RiccModel::EncodePath::kInt8);
  int agree = 0;
  for (std::size_t i = 0; i < tiles.size(); ++i)
    agree += model.predict(tiles[i]) == fp32_labels[i] ? 1 : 0;
  EXPECT_GE(static_cast<double>(agree) / static_cast<double>(tiles.size()),
            0.95);
}

TEST(QuantizedEncoder, CalibrationRejectsEmptySample) {
  RiccModel model(small_config());
  EXPECT_THROW(model.calibrate_int8({}), std::invalid_argument);
}

}  // namespace
}  // namespace mfw::ml
