// Unit tests for Ward agglomerative clustering, k-means, and the cluster
// evaluation metrics — the machinery that builds the 42 AICCA classes.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "ml/cluster.hpp"

namespace mfw::ml {
namespace {

// Three well-separated Gaussian blobs in 2-D.
std::vector<float> blobs(std::size_t per_blob, util::Rng& rng,
                         std::vector<int>* truth = nullptr) {
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  std::vector<float> data;
  for (int b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      data.push_back(static_cast<float>(centers[b][0] + 0.5 * rng.normal()));
      data.push_back(static_cast<float>(centers[b][1] + 0.5 * rng.normal()));
      if (truth) truth->push_back(b);
    }
  }
  return data;
}

// Checks that a clustering exactly recovers blob structure (up to label
// permutation).
void expect_recovers_blobs(const ClusterResult& result,
                           const std::vector<int>& truth) {
  ASSERT_EQ(result.labels.size(), truth.size());
  std::map<int, int> mapping;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const auto it = mapping.find(truth[i]);
    if (it == mapping.end()) {
      mapping[truth[i]] = result.labels[i];
    } else {
      ASSERT_EQ(result.labels[i], it->second) << "sample " << i;
    }
  }
  EXPECT_EQ(mapping.size(), 3u);  // three distinct cluster ids
}

TEST(Ward, RecoversSeparatedBlobs) {
  util::Rng rng(1);
  std::vector<int> truth;
  const auto data = blobs(40, rng, &truth);
  const auto result = agglomerative_ward(data, 120, 2, 3);
  expect_recovers_blobs(result, truth);
}

TEST(Ward, CentroidsNearBlobCenters) {
  util::Rng rng(2);
  const auto data = blobs(50, rng);
  const auto result = agglomerative_ward(data, 150, 2, 3);
  // Each blob center must be within 0.5 of some centroid.
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (const auto& center : centers) {
    double best = 1e9;
    for (int c = 0; c < 3; ++c) {
      const double dx = result.centroids[static_cast<std::size_t>(c) * 2] - center[0];
      const double dy = result.centroids[static_cast<std::size_t>(c) * 2 + 1] - center[1];
      best = std::min(best, std::sqrt(dx * dx + dy * dy));
    }
    EXPECT_LT(best, 0.5);
  }
}

TEST(Ward, KEqualsNGivesSingletons) {
  const std::vector<float> data{0, 0, 1, 1, 2, 2};
  const auto result = agglomerative_ward(data, 3, 2, 3);
  std::set<int> labels(result.labels.begin(), result.labels.end());
  EXPECT_EQ(labels.size(), 3u);
}

TEST(Ward, KEqualsOneGroupsEverything) {
  util::Rng rng(3);
  const auto data = blobs(10, rng);
  const auto result = agglomerative_ward(data, 30, 2, 1);
  for (int label : result.labels) EXPECT_EQ(label, 0);
}

TEST(Ward, InputValidation) {
  const std::vector<float> data{0, 0, 1, 1};
  EXPECT_THROW(agglomerative_ward(data, 2, 2, 0), std::invalid_argument);
  EXPECT_THROW(agglomerative_ward(data, 2, 2, 3), std::invalid_argument);
  EXPECT_THROW(agglomerative_ward(data, 3, 2, 1), std::invalid_argument);
}

TEST(Ward, DeterministicAndLabelsCompact) {
  util::Rng rng(4);
  const auto data = blobs(20, rng);
  const auto a = agglomerative_ward(data, 60, 2, 5);
  const auto b = agglomerative_ward(data, 60, 2, 5);
  EXPECT_EQ(a.labels, b.labels);
  for (int label : a.labels) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, 5);
  }
}

TEST(Kmeans, RecoversSeparatedBlobs) {
  util::Rng rng(5);
  std::vector<int> truth;
  const auto data = blobs(40, rng, &truth);
  util::Rng krng(6);
  const auto result = kmeans(data, 120, 2, 3, krng);
  expect_recovers_blobs(result, truth);
}

TEST(Kmeans, WithinClusterSsNotWorseThanRandomAssignment) {
  util::Rng rng(7);
  const auto data = blobs(30, rng);
  util::Rng krng(8);
  const auto km = kmeans(data, 90, 2, 3, krng);
  const double wcss = within_cluster_ss(data, 90, 2, km);
  // Random labels for comparison.
  ClusterResult random;
  random.k = 3;
  random.dim = 2;
  util::Rng lrng(9);
  for (std::size_t i = 0; i < 90; ++i)
    random.labels.push_back(static_cast<int>(lrng.uniform_int(0, 2)));
  random.centroids = km.centroids;
  EXPECT_LT(wcss, within_cluster_ss(data, 90, 2, random));
}

TEST(Silhouette, HighForSeparatedLowForRandom) {
  util::Rng rng(10);
  std::vector<int> truth;
  const auto data = blobs(30, rng, &truth);
  const double good = silhouette(data, 90, 2, truth, 3);
  EXPECT_GT(good, 0.7);

  std::vector<int> shuffled = truth;
  util::Rng srng(11);
  for (std::size_t i = shuffled.size(); i > 1; --i)
    std::swap(shuffled[i - 1],
              shuffled[static_cast<std::size_t>(srng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
  EXPECT_LT(silhouette(data, 90, 2, shuffled, 3), 0.2);
}

TEST(Silhouette, DegenerateCasesReturnZero) {
  const std::vector<float> data{0, 0, 1, 1};
  const std::vector<int> labels{0, 0};
  EXPECT_DOUBLE_EQ(silhouette(data, 2, 2, labels, 1), 0.0);
}

TEST(NearestCentroid, PicksClosest) {
  Tensor centroids({3, 2}, {0, 0, 10, 0, 0, 10});
  const std::vector<float> p1{1, 1};
  const std::vector<float> p2{9, 1};
  const std::vector<float> p3{1, 11};
  EXPECT_EQ(nearest_centroid(centroids, p1), 0);
  EXPECT_EQ(nearest_centroid(centroids, p2), 1);
  EXPECT_EQ(nearest_centroid(centroids, p3), 2);
  const std::vector<float> bad{1, 2, 3};
  EXPECT_THROW(nearest_centroid(centroids, bad), std::invalid_argument);
}

TEST(Ward, ScalesToAtlasSizedProblems) {
  // 42 clusters from ~800 latent points — AICCA-scale clustering.
  util::Rng rng(12);
  const std::size_t n = 800, d = 8;
  std::vector<float> data(n * d);
  for (auto& v : data) v = static_cast<float>(rng.normal());
  const auto result = agglomerative_ward(data, n, d, 42);
  EXPECT_EQ(result.k, 42);
  std::set<int> labels(result.labels.begin(), result.labels.end());
  EXPECT_EQ(labels.size(), 42u);
}

}  // namespace
}  // namespace mfw::ml
