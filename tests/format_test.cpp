// Unit tests for the hdfl and ncl container formats: round-trips, partial
// reads, CRC integrity, and append-variable behaviour.
#include <gtest/gtest.h>

#include "storage/hdfl.hpp"
#include "storage/ncl.hpp"

namespace mfw::storage {
namespace {

std::vector<float> ramp(std::size_t n) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<float>(i) * 0.5f;
  return v;
}

TEST(Hdfl, RoundTripDatasetsAndAttrs) {
  HdflFile file;
  file.attrs()["product"] = "MOD02";
  file.attrs()["slot"] = "42";
  file.add(Dataset::f32("Radiance", {2, 3, 4}, ramp(24)));
  std::vector<std::uint8_t> mask(12, 1);
  file.add(Dataset::u8("Mask", {3, 4}, mask));

  const auto bytes = file.serialize();
  const auto loaded = HdflFile::deserialize(bytes);
  EXPECT_EQ(loaded.attrs().at("product"), "MOD02");
  EXPECT_EQ(loaded.dataset_count(), 2u);
  const auto rad = loaded.dataset("Radiance").as_f32();
  ASSERT_EQ(rad.size(), 24u);
  EXPECT_FLOAT_EQ(rad[7], 3.5f);
  EXPECT_EQ(loaded.dataset("Mask").as_u8()[5], 1);
  EXPECT_EQ(loaded.names(), (std::vector<std::string>{"Radiance", "Mask"}));
}

TEST(Hdfl, PartialReadExtractsOneDataset) {
  HdflFile file;
  file.add(Dataset::f32("A", {4}, ramp(4)));
  file.add(Dataset::f32("B", {8}, ramp(8)));
  file.add(Dataset::f32("C", {2}, ramp(2)));
  const auto bytes = file.serialize();

  const auto b = HdflFile::read_dataset(bytes, "B");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->element_count(), 8u);
  EXPECT_FLOAT_EQ(b->as_f32()[3], 1.5f);
  EXPECT_FALSE(HdflFile::read_dataset(bytes, "missing").has_value());
}

TEST(Hdfl, CorruptionDetected) {
  HdflFile file;
  file.add(Dataset::f32("A", {8}, ramp(8)));
  auto bytes = file.serialize();
  bytes[bytes.size() - 10] ^= std::byte{0xff};  // flip a payload byte
  EXPECT_THROW(HdflFile::deserialize(bytes), FormatError);
}

TEST(Hdfl, BadMagicRejected) {
  std::vector<std::byte> junk(64, std::byte{0x5a});
  EXPECT_THROW(HdflFile::deserialize(junk), FormatError);
  EXPECT_THROW(HdflFile::read_dataset(junk, "x"), FormatError);
}

TEST(Hdfl, ShapeMismatchRejected) {
  Dataset ds;
  ds.name = "bad";
  ds.dtype = DType::kF32;
  ds.shape = {4};
  ds.data.resize(8);  // needs 16 bytes
  HdflFile file;
  EXPECT_THROW(file.add(std::move(ds)), FormatError);
}

TEST(Hdfl, TypedViewChecksDtype) {
  HdflFile file;
  file.add(Dataset::f32("A", {2}, ramp(2)));
  EXPECT_THROW(file.dataset("A").as_u8(), FormatError);
  EXPECT_THROW(file.dataset("missing"), FormatError);
}

TEST(Hdfl, ReplaceDatasetKeepsSingleEntry) {
  HdflFile file;
  file.add(Dataset::f32("A", {2}, ramp(2)));
  file.add(Dataset::f32("A", {4}, ramp(4)));
  EXPECT_EQ(file.dataset_count(), 1u);
  EXPECT_EQ(file.dataset("A").element_count(), 4u);
}

TEST(Ncl, RoundTripDimsVarsAttrs) {
  NclFile file;
  file.add_dim("tile", 3);
  file.add_dim("ch", 2);
  file.attrs()["granule"] = "X";
  file.add_f32("data", {"tile", "ch"}, ramp(6), {{"units", "W/m2"}});
  std::vector<std::int32_t> labels{1, 2, 3};
  file.add_i32("label", {"tile"}, labels);

  const auto loaded = NclFile::deserialize(file.serialize());
  EXPECT_EQ(loaded.dim("tile"), 3u);
  EXPECT_EQ(loaded.attrs().at("granule"), "X");
  EXPECT_EQ(loaded.var("data").attrs.at("units"), "W/m2");
  EXPECT_FLOAT_EQ(loaded.var("data").as_f32()[5], 2.5f);
  EXPECT_EQ(loaded.var("label").as_i32()[2], 3);
  EXPECT_EQ(loaded.var_names(),
            (std::vector<std::string>{"data", "label"}));
}

TEST(Ncl, SizeValidationAgainstDims) {
  NclFile file;
  file.add_dim("tile", 3);
  EXPECT_THROW(file.add_f32("bad", {"tile"}, ramp(5)), FormatError);
  EXPECT_THROW(file.add_f32("bad", {"nodim"}, ramp(3)), FormatError);
}

TEST(Ncl, DimRedefinitionRejected) {
  NclFile file;
  file.add_dim("tile", 3);
  EXPECT_NO_THROW(file.add_dim("tile", 3));  // same length is idempotent
  EXPECT_THROW(file.add_dim("tile", 4), FormatError);
}

TEST(Ncl, AppendVariableAfterReload) {
  NclFile file;
  file.add_dim("tile", 2);
  file.add_f32("data", {"tile"}, ramp(2));
  auto loaded = NclFile::deserialize(file.serialize());
  // The inference stage's append-labels pattern.
  std::vector<std::int32_t> labels{7, 9};
  loaded.add_i32("label", {"tile"}, labels);
  const auto final_file = NclFile::deserialize(loaded.serialize());
  EXPECT_EQ(final_file.var("label").as_i32()[1], 9);
  EXPECT_EQ(final_file.var_count(), 2u);
}

TEST(Ncl, CorruptionDetected) {
  NclFile file;
  file.add_dim("n", 4);
  file.add_f32("v", {"n"}, ramp(4));
  auto bytes = file.serialize();
  bytes[bytes.size() - 6] ^= std::byte{0x01};
  EXPECT_THROW(NclFile::deserialize(bytes), FormatError);
}

TEST(Ncl, EmptyFileRoundTrips) {
  NclFile file;
  file.attrs()["kind"] = "tile-manifest";
  file.attrs()["tile_count"] = "0";
  const auto loaded = NclFile::deserialize(file.serialize());
  EXPECT_EQ(loaded.var_count(), 0u);
  EXPECT_EQ(loaded.attrs().at("tile_count"), "0");
}

}  // namespace
}  // namespace mfw::storage
