// Unit tests for the synthetic MODIS system: noise determinism, orbit
// geometry, product consistency, catalog naming/sizing, and workload
// statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "modis/catalog.hpp"
#include "modis/noise.hpp"
#include "modis/products.hpp"
#include "util/rng.hpp"

namespace mfw::modis {
namespace {

TEST(Noise, DeterministicPerSeed) {
  NoiseField a(42), b(42), c(43);
  EXPECT_DOUBLE_EQ(a.at(1.5, 2.5), b.at(1.5, 2.5));
  EXPECT_NE(a.at(1.5, 2.5), c.at(1.5, 2.5));
}

TEST(Noise, BoundedAndSmooth) {
  NoiseField field(7);
  for (double x = -10; x < 10; x += 0.37) {
    for (double y = -10; y < 10; y += 0.41) {
      const double v = field.fbm(x, y, 4);
      ASSERT_GE(v, -1.0);
      ASSERT_LE(v, 1.0);
      // Smoothness: nearby samples are close.
      const double v2 = field.fbm(x + 1e-4, y, 4);
      ASSERT_LT(std::abs(v - v2), 0.02);
    }
  }
}

TEST(Geo, GroundTrackCoversLatitudes) {
  double min_lat = 90, max_lat = -90;
  for (int slot = 0; slot < kSlotsPerDay; ++slot) {
    const auto p = ground_track(Satellite::kTerra, slot, 0.5);
    min_lat = std::min(min_lat, p.lat);
    max_lat = std::max(max_lat, p.lat);
    ASSERT_GE(p.lon, -180.0);
    ASSERT_LT(p.lon, 180.0);
  }
  EXPECT_LT(min_lat, -75.0);  // polar orbit reaches high latitudes
  EXPECT_GT(max_lat, 75.0);
}

TEST(Geo, DayNightSplitRoughlyHalf) {
  int day = 0;
  for (int slot = 0; slot < kSlotsPerDay; ++slot)
    if (is_daytime(Satellite::kTerra, slot, 1)) ++day;
  EXPECT_GT(day, kSlotsPerDay / 4);
  EXPECT_LT(day, 3 * kSlotsPerDay / 4);
}

TEST(Geo, SolarZenithExtremes) {
  // Local noon at the equator (lon 0, day fraction 0.5): low zenith.
  const double noon = solar_zenith_deg({0.0, 0.0}, 0.5, 80);
  const double midnight = solar_zenith_deg({0.0, 0.0}, 0.0, 80);
  EXPECT_LT(noon, 30.0);
  EXPECT_GT(midnight, 90.0);
}

TEST(Products, GeneratedShapesMatchGeometry) {
  GranuleGenerator gen(1);
  GranuleSpec spec;
  spec.geometry = kSmallGeometry;
  spec.slot = 100;
  const auto m03 = gen.mod03(spec);
  EXPECT_EQ(m03.latitude.size(), spec.geometry.pixels());
  EXPECT_EQ(m03.land_mask.size(), spec.geometry.pixels());
  const auto m06 = gen.mod06(spec);
  EXPECT_EQ(m06.cloud_mask.size(), spec.geometry.pixels());
  const auto m02 = gen.mod02(spec);
  EXPECT_EQ(m02.radiance.size(),
            spec.geometry.pixels() * static_cast<std::size_t>(spec.geometry.bands));
}

TEST(Products, CrossProductConsistency) {
  // MOD06 cloud mask and MOD02 radiance must describe the same scene: cloudy
  // pixels are brighter in the visible bands (daytime granule).
  GranuleGenerator gen(2022);
  GranuleSpec spec;
  spec.geometry = kSmallGeometry;
  // Find a daytime slot.
  int slot = 0;
  while (!is_daytime(spec.satellite, slot, spec.day_of_year)) ++slot;
  spec.slot = slot;
  const auto m02 = gen.mod02(spec);
  const auto m06 = gen.mod06(spec);
  ASSERT_TRUE(m02.daytime);
  double cloudy_sum = 0, clear_sum = 0;
  std::size_t cloudy_n = 0, clear_n = 0;
  for (int r = 0; r < spec.geometry.rows; ++r) {
    for (int c = 0; c < spec.geometry.cols; ++c) {
      const std::size_t i =
          static_cast<std::size_t>(r) * spec.geometry.cols + c;
      const float vis = m02.at(0, r, c);
      if (m06.cloud_mask[i]) {
        cloudy_sum += vis;
        ++cloudy_n;
      } else {
        clear_sum += vis;
        ++clear_n;
      }
    }
  }
  ASSERT_GT(cloudy_n, 0u);
  ASSERT_GT(clear_n, 0u);
  EXPECT_GT(cloudy_sum / cloudy_n, clear_sum / clear_n + 0.1);
}

TEST(Products, NightGranulesHaveFilledReflectiveBands) {
  GranuleGenerator gen(2022);
  GranuleSpec spec;
  spec.geometry = kSmallGeometry;
  int slot = 0;
  while (is_daytime(spec.satellite, slot, spec.day_of_year)) ++slot;
  spec.slot = slot;
  const auto m02 = gen.mod02(spec);
  ASSERT_FALSE(m02.daytime);
  EXPECT_FLOAT_EQ(m02.at(0, 0, 0), kFillValue);
  EXPECT_FLOAT_EQ(m02.at(2, 5, 5), kFillValue);
  // Thermal bands remain valid at night.
  EXPECT_NE(m02.at(3, 0, 0), kFillValue);
}

TEST(Products, HdflRoundTripAllProducts) {
  GranuleGenerator gen(5);
  GranuleSpec spec;
  spec.geometry = GranuleGeometry{64, 48, 4};
  spec.slot = 37;
  const auto m02 = gen.mod02(spec);
  const auto back02 = Mod02Granule::from_hdfl(
      storage::HdflFile::deserialize(m02.to_hdfl().serialize()));
  EXPECT_EQ(back02.spec.slot, 37);
  EXPECT_EQ(back02.daytime, m02.daytime);
  EXPECT_EQ(back02.radiance, m02.radiance);

  const auto m03 = gen.mod03(spec);
  const auto back03 = Mod03Granule::from_hdfl(
      storage::HdflFile::deserialize(m03.to_hdfl().serialize()));
  EXPECT_EQ(back03.land_mask, m03.land_mask);

  const auto m06 = gen.mod06(spec);
  const auto back06 = Mod06Granule::from_hdfl(
      storage::HdflFile::deserialize(m06.to_hdfl().serialize()));
  EXPECT_EQ(back06.cloud_mask, m06.cloud_mask);
}

TEST(Products, LandFractionPlausible) {
  EarthModel earth(2022);
  int land = 0;
  const int n = 6000;
  util::Rng rng(1);
  for (int i = 0; i < n; ++i) {
    const LatLon p{rng.uniform(-80, 80), rng.uniform(-180, 180)};
    if (earth.is_land(p)) ++land;
  }
  const double frac = static_cast<double>(land) / n;
  EXPECT_GT(frac, 0.12);
  EXPECT_LT(frac, 0.55);
}

TEST(Catalog, FilenameRoundTrip) {
  GranuleId id{ProductKind::kMod02, Satellite::kTerra, 2022, 1, 95};
  EXPECT_EQ(id.filename(), "MOD021KM.A2022001.0755.061.hdf");
  const auto parsed = parse_granule_filename(id.filename());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, id);

  GranuleId aqua{ProductKind::kMod06, Satellite::kAqua, 2023, 365, 0};
  EXPECT_EQ(aqua.filename(), "MYD06_L2.A2023365.0000.061.hdf");
  EXPECT_EQ(*parse_granule_filename(aqua.filename()), aqua);
}

TEST(Catalog, RejectsMalformedFilenames) {
  EXPECT_FALSE(parse_granule_filename("notaproduct.A2022001.0000.061.hdf"));
  EXPECT_FALSE(parse_granule_filename("MOD021KM.A2022001.0003.061.hdf"));  // minute not multiple of 5
  EXPECT_FALSE(parse_granule_filename("MOD021KM.A2022001.0000.061.txt"));
  EXPECT_FALSE(parse_granule_filename("MOD021KM.X2022001.0000.061.hdf"));
}

TEST(Catalog, ProductNames) {
  EXPECT_EQ(product_short_name(ProductKind::kMod03, Satellite::kAqua), "MYD03");
  const auto parsed = parse_product_name("MOD021KM");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->first, ProductKind::kMod02);
  EXPECT_FALSE(parse_product_name("TROPOMI").has_value());
}

TEST(Catalog, ListsFullDay) {
  ArchiveService archive(2022);
  const auto entries = archive.list(ProductKind::kMod02, Satellite::kTerra,
                                    DaySpan{2022, 1, 1});
  ASSERT_EQ(entries.size(), 288u);
  EXPECT_EQ(entries.front().id.slot, 0);
  EXPECT_EQ(entries.back().id.slot, 287);
  for (const auto& e : entries) ASSERT_GT(e.size_bytes, 0u);
}

TEST(Catalog, DayVolumesMatchPaper) {
  // Paper: ~32 GB MOD02, ~8.4 GB MOD03, ~18 GB MOD06 per day.
  ArchiveService archive(2022);
  auto total = [&](ProductKind kind) {
    std::uint64_t sum = 0;
    for (const auto& e :
         archive.list(kind, Satellite::kTerra, DaySpan{2022, 1, 1}))
      sum += e.size_bytes;
    return static_cast<double>(sum) / (1024.0 * 1024 * 1024);
  };
  EXPECT_NEAR(total(ProductKind::kMod02), 32.0, 6.0);
  EXPECT_NEAR(total(ProductKind::kMod03), 8.4, 1.5);
  EXPECT_NEAR(total(ProductKind::kMod06), 18.0, 3.0);
}

TEST(Catalog, SizesDeterministic) {
  ArchiveService a(2022), b(2022);
  const GranuleId id{ProductKind::kMod02, Satellite::kTerra, 2022, 15, 100};
  EXPECT_EQ(a.size_of(id), b.size_of(id));
}

TEST(Catalog, MaterializeParsesBack) {
  ArchiveService archive(2022);
  const GranuleId id{ProductKind::kMod06, Satellite::kTerra, 2022, 1, 130};
  const auto bytes = archive.materialize(id, GranuleGeometry{64, 48, 4});
  const auto granule = Mod06Granule::from_hdfl(storage::HdflFile::deserialize(bytes));
  EXPECT_EQ(granule.spec.slot, 130);
  EXPECT_EQ(granule.cloud_mask.size(), 64u * 48u);
}

TEST(Stats, NightGranulesYieldNoTiles) {
  GranuleGenerator gen(2022);
  GranuleSpec spec;
  spec.geometry = kFullGeometry;
  int slot = 0;
  while (is_daytime(spec.satellite, slot, spec.day_of_year)) ++slot;
  spec.slot = slot;
  const auto stats = estimate_granule_stats(gen, spec);
  EXPECT_FALSE(stats.daytime);
  EXPECT_EQ(stats.selected_tiles, 0);
}

TEST(Stats, SelectedSubsetOfCandidates) {
  GranuleGenerator gen(2022);
  for (int slot = 0; slot < 288; slot += 17) {
    GranuleSpec spec;
    spec.geometry = kFullGeometry;
    spec.slot = slot;
    const auto stats = estimate_granule_stats(gen, spec);
    ASSERT_LE(stats.selected_tiles, stats.candidate_tiles);
    ASSERT_LE(stats.candidate_tiles, 150);  // 15 x 10 grid at full geometry
    ASSERT_GE(stats.selected_tiles, 0);
  }
}

TEST(Stats, DayYieldIsRealistic) {
  // Across a full day, mean selected tiles per daytime granule should be in
  // the range the AICCA papers describe (tens to ~150 per swath).
  GranuleGenerator gen(2022);
  long total = 0;
  int day_granules = 0;
  for (int slot = 0; slot < 288; ++slot) {
    GranuleSpec spec;
    spec.geometry = kFullGeometry;
    spec.slot = slot;
    const auto stats = estimate_granule_stats(gen, spec);
    if (stats.daytime) {
      ++day_granules;
      total += stats.selected_tiles;
    }
  }
  ASSERT_GT(day_granules, 0);
  const double mean = static_cast<double>(total) / day_granules;
  EXPECT_GT(mean, 30.0);
  EXPECT_LT(mean, 150.0);
}

}  // namespace
}  // namespace mfw::modis
