// Bounded-memory tile streaming tests (DESIGN.md §13): budget enforcement,
// equivalence with whole-file materialization across pool sizes and batch
// shapes, in-order delivery, manifest skipping, and option validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "modis/catalog.hpp"
#include "preprocess/tile_io.hpp"
#include "preprocess/tile_stream.hpp"
#include "storage/memfs.hpp"
#include "util/thread_pool.hpp"

namespace mfw::preprocess {
namespace {

Tile make_tile(int seq, int tile_size = 4, int channels = 2) {
  Tile tile;
  tile.tile_size = tile_size;
  tile.channels = channels;
  tile.origin_row = seq;
  tile.origin_col = seq * 2;
  tile.center_lat = static_cast<float>(seq) * 0.5f;
  tile.center_lon = static_cast<float>(seq) * -0.25f;
  tile.cloud_fraction = 0.5f;
  tile.data.resize(static_cast<std::size_t>(channels) * tile_size * tile_size);
  for (std::size_t i = 0; i < tile.data.size(); ++i)
    tile.data[i] = static_cast<float>(seq * 1000 + static_cast<int>(i));
  return tile;
}

modis::GranuleId granule_id(int slot) {
  return modis::GranuleId{modis::ProductKind::kMod02,
                          modis::Satellite::kTerra, 2022, 1, slot};
}

/// Writes `tile_count` synthetic tiles (seq offset by file index) to `path`.
void write_file(storage::MemFs& fs, const std::string& path, int file_index,
                int tile_count) {
  TilerResult result;
  for (int i = 0; i < tile_count; ++i)
    result.tiles.push_back(make_tile(file_index * 100 + i));
  write_tile_file(fs, path, granule_id(file_index), result);
}

struct Delivered {
  std::size_t file_index;
  std::size_t first_tile;
  std::vector<Tile> tiles;
};

TileStreamStats run_stream(storage::MemFs& fs,
                           const std::vector<std::string>& paths,
                           const TileStreamOptions& options,
                           std::vector<Delivered>& out) {
  return stream_tiles(
      fs, paths, options,
      [&](std::size_t f, std::size_t first, std::span<const Tile> batch) {
        out.push_back(
            {f, first, std::vector<Tile>(batch.begin(), batch.end())});
      });
}

TEST(TileStream, MatchesWholeFileMaterializationAcrossPoolsAndBatches) {
  storage::MemFs fs("x");
  const std::vector<std::string> paths = {"a.ncl", "b.ncl", "c.ncl"};
  const int counts[] = {7, 1, 12};
  for (std::size_t f = 0; f < paths.size(); ++f)
    write_file(fs, paths[f], static_cast<int>(f), counts[f]);
  // Reference: classic whole-file path.
  std::vector<std::vector<Tile>> whole;
  for (const auto& path : paths)
    whole.push_back(tiles_from_ncl(read_tile_file(fs, path)));

  for (const std::size_t threads : {std::size_t{0}, std::size_t{1}, std::size_t{2}}) {
    for (const std::size_t batch : {std::size_t{1}, std::size_t{4}, std::size_t{32}}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " batch=" + std::to_string(batch));
      std::optional<util::ThreadPool> pool;
      if (threads > 0) pool.emplace(threads);
      TileStreamOptions options;
      options.batch_size = batch;
      options.tile_budget = std::max<std::size_t>(batch, 8);
      options.pool = pool ? &*pool : nullptr;
      std::vector<Delivered> got;
      const auto stats = run_stream(fs, paths, options, got);

      EXPECT_EQ(stats.files, paths.size());
      EXPECT_EQ(stats.tiles, std::size_t{7 + 1 + 12});
      EXPECT_EQ(stats.batches, got.size());
      EXPECT_LE(stats.peak_tiles_resident, options.tile_budget);
      EXPECT_GE(stats.peak_tiles_resident, std::size_t{1});

      // Reassemble per-file and compare with the whole-file reference;
      // batches must arrive in (file, tile) order.
      std::vector<std::vector<Tile>> assembled(paths.size());
      std::size_t last_file = 0;
      for (const auto& d : got) {
        EXPECT_GE(d.file_index, last_file) << "file order";
        last_file = d.file_index;
        EXPECT_EQ(d.first_tile, assembled[d.file_index].size())
            << "tile order within file";
        EXPECT_LE(d.tiles.size(), batch);
        for (const auto& tile : d.tiles)
          assembled[d.file_index].push_back(tile);
      }
      for (std::size_t f = 0; f < paths.size(); ++f) {
        ASSERT_EQ(assembled[f].size(), whole[f].size()) << "file " << f;
        for (std::size_t i = 0; i < whole[f].size(); ++i) {
          EXPECT_EQ(assembled[f][i].data, whole[f][i].data);
          EXPECT_EQ(assembled[f][i].origin_row, whole[f][i].origin_row);
        }
      }
    }
  }
}

TEST(TileStream, BudgetBoundsResidentTilesUnderSlowConsumer) {
  storage::MemFs fs("x");
  const std::vector<std::string> paths = {"a.ncl", "b.ncl"};
  write_file(fs, paths[0], 0, 23);
  write_file(fs, paths[1], 1, 17);
  util::ThreadPool pool(2);
  TileStreamOptions options;
  options.batch_size = 3;
  options.tile_budget = 5;  // < one file's tiles: producer must block
  options.pool = &pool;
  std::size_t seen = 0;
  const auto stats = stream_tiles(
      fs, paths, options,
      [&](std::size_t, std::size_t, std::span<const Tile> batch) {
        seen += batch.size();
      });
  EXPECT_EQ(seen, std::size_t{40});
  EXPECT_LE(stats.peak_tiles_resident, std::size_t{5});
}

TEST(TileStream, ManifestFilesDeliverNoBatches) {
  storage::MemFs fs("x");
  write_file(fs, "full.ncl", 0, 5);
  write_tile_manifest(fs, "manifest.ncl", granule_id(1), 99);
  const std::vector<std::string> paths = {"manifest.ncl", "full.ncl"};
  std::vector<Delivered> got;
  const auto stats = run_stream(fs, paths, {}, got);
  EXPECT_EQ(stats.files, std::size_t{2});
  EXPECT_EQ(stats.tiles, std::size_t{5});
  ASSERT_EQ(got.size(), std::size_t{1});
  EXPECT_EQ(got[0].file_index, std::size_t{1});
}

TEST(TileStream, ConsumerExceptionAbortsAndPropagates) {
  storage::MemFs fs("x");
  const std::vector<std::string> paths = {"a.ncl"};
  write_file(fs, paths[0], 0, 30);
  for (const bool pooled : {false, true}) {
    SCOPED_TRACE(pooled ? "pooled" : "sequential");
    std::optional<util::ThreadPool> pool;
    if (pooled) pool.emplace(1);
    TileStreamOptions options;
    options.batch_size = 4;
    options.tile_budget = 8;
    options.pool = pool ? &*pool : nullptr;
    EXPECT_THROW(
        stream_tiles(fs, paths, options,
                     [](std::size_t, std::size_t, std::span<const Tile>) {
                       throw std::runtime_error("consumer boom");
                     }),
        std::runtime_error);
  }
}

TEST(TileStream, ProducerErrorPropagates) {
  storage::MemFs fs("x");
  write_file(fs, "good.ncl", 0, 3);
  const std::vector<std::string> paths = {"good.ncl", "missing.ncl"};
  util::ThreadPool pool(1);
  TileStreamOptions options;
  options.pool = &pool;
  std::size_t seen = 0;
  EXPECT_ANY_THROW(stream_tiles(
      fs, paths, options,
      [&](std::size_t, std::size_t, std::span<const Tile> batch) {
        seen += batch.size();
      }));
  EXPECT_EQ(seen, std::size_t{3});  // the good file still streamed
}

TEST(TileStream, RejectsBadOptions) {
  storage::MemFs fs("x");
  const std::vector<std::string> paths;
  TileStreamOptions zero_batch;
  zero_batch.batch_size = 0;
  EXPECT_THROW(stream_tiles(fs, paths, zero_batch,
                            [](std::size_t, std::size_t, std::span<const Tile>) {}),
               std::invalid_argument);
  TileStreamOptions tight;
  tight.batch_size = 16;
  tight.tile_budget = 8;
  EXPECT_THROW(stream_tiles(fs, paths, tight,
                            [](std::size_t, std::size_t, std::span<const Tile>) {}),
               std::invalid_argument);
}

TEST(TileIo, TileFromNclMatchesBulkAndBoundsChecks) {
  storage::MemFs fs("x");
  write_file(fs, "t.ncl", 0, 6);
  const auto file = read_tile_file(fs, "t.ncl");
  EXPECT_EQ(pixel_tile_count(file), std::size_t{6});
  const auto all = tiles_from_ncl(file);
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Tile one = tile_from_ncl(file, i);
    EXPECT_EQ(one.data, all[i].data);
    EXPECT_EQ(one.origin_row, all[i].origin_row);
    EXPECT_FLOAT_EQ(one.center_lat, all[i].center_lat);
  }
  EXPECT_THROW(tile_from_ncl(file, 6), std::out_of_range);
  // Manifests carry no pixel tiles.
  write_tile_manifest(fs, "m.ncl", granule_id(1), 4);
  const auto manifest = read_tile_file(fs, "m.ncl");
  EXPECT_EQ(pixel_tile_count(manifest), std::size_t{0});
  EXPECT_THROW(tile_from_ncl(manifest, 0), std::out_of_range);
}

}  // namespace
}  // namespace mfw::preprocess
