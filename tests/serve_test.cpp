// Tests for the sharded serving layer: query correctness against the
// brute-force archive-scan oracle (property-tested over random archives),
// lock-free read-during-ingest behaviour (the TSan target), cache hits /
// generation invalidation / LRU eviction, and the mfw.serve/v1 JSON surface.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "analysis/aicca.hpp"
#include "obs/metrics.hpp"
#include "preprocess/tile_io.hpp"
#include "serve/api.hpp"
#include "serve/catalog.hpp"
#include "serve/loadgen.hpp"
#include "serve/service.hpp"
#include "storage/memfs.hpp"
#include "util/rng.hpp"

namespace mfw::serve {
namespace {

analysis::TileRecord random_record(util::Rng& rng, int num_classes,
                                   int max_day) {
  analysis::TileRecord record;
  record.granule.product = modis::ProductKind::kMod02;
  record.granule.satellite =
      rng.bernoulli(0.5) ? modis::Satellite::kTerra : modis::Satellite::kAqua;
  record.granule.year = 2022;
  record.granule.day_of_year = static_cast<int>(rng.uniform_int(1, max_day));
  record.granule.slot = static_cast<int>(rng.uniform_int(0, 287));
  record.label = static_cast<int>(rng.uniform_int(0, num_classes - 1));
  // Occasionally pin the poles / dateline so clamp edges are exercised.
  const double edge = rng.uniform();
  if (edge < 0.02) {
    record.latitude = rng.bernoulli(0.5) ? 90.0f : -90.0f;
  } else {
    record.latitude = static_cast<float>(rng.uniform(-90.0, 90.0));
  }
  if (edge > 0.98) {
    record.longitude = rng.bernoulli(0.5) ? 180.0f : -180.0f;
  } else {
    record.longitude = static_cast<float>(rng.uniform(-180.0, 180.0));
  }
  record.cloud_fraction = static_cast<float>(rng.uniform(0.0, 1.0));
  record.optical_thickness = static_cast<float>(rng.uniform(0.1, 60.0));
  record.cloud_top_pressure = static_cast<float>(rng.uniform(150.0, 1000.0));
  record.water_path = static_cast<float>(rng.uniform(1.0, 400.0));
  return record;
}

std::vector<analysis::TileRecord> random_records(std::uint64_t seed,
                                                 std::size_t n,
                                                 int num_classes = 8,
                                                 int max_day = 40) {
  util::Rng rng(seed);
  std::vector<analysis::TileRecord> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    records.push_back(random_record(rng, num_classes, max_day));
  return records;
}

QueryRequest random_request(util::Rng& rng, int num_classes, int max_day) {
  QueryRequest request;
  const int kind = static_cast<int>(rng.uniform_int(0, 3));
  request.kind = static_cast<QueryKind>(kind);
  request.lat = rng.uniform(-95.0, 95.0);  // may fall outside valid range
  request.lon = rng.uniform(-185.0, 185.0);
  const double lat_a = rng.uniform(-90.0, 90.0);
  const double lat_b = rng.uniform(-90.0, 90.0);
  request.lat_lo = std::min(lat_a, lat_b);
  request.lat_hi = std::max(lat_a, lat_b);
  const double lon_a = rng.uniform(-180.0, 180.0);
  const double lon_b = rng.uniform(-180.0, 180.0);
  request.lon_lo = std::min(lon_a, lon_b);
  request.lon_hi = std::max(lon_a, lon_b);
  request.label = static_cast<int>(rng.uniform_int(-1, num_classes));
  const int d0 = static_cast<int>(rng.uniform_int(1, max_day));
  const int d1 = static_cast<int>(rng.uniform_int(1, max_day));
  request.day_lo = std::min(d0, d1);
  request.day_hi = std::max(d0, d1);
  request.sample_limit = static_cast<std::size_t>(rng.uniform_int(0, 6));
  return request;
}

bool record_matches(const analysis::TileRecord& record,
                    const QueryRequest& request, const Catalog& catalog) {
  const int day = record.granule.day_of_year;
  if (day < request.day_lo || day > request.day_hi) return false;
  switch (request.kind) {
    case QueryKind::kPoint:
      return catalog.cell_of(record.latitude, record.longitude) ==
             catalog.cell_of(request.lat, request.lon);
    case QueryKind::kBbox:
      return record.latitude >= request.lat_lo &&
             record.latitude <= request.lat_hi &&
             record.longitude >= request.lon_lo &&
             record.longitude <= request.lon_hi;
    case QueryKind::kClass:
      return record.label == request.label;
    case QueryKind::kTimeRange:
      return true;
  }
  return false;
}

bool same_record(const analysis::TileRecord& a, const analysis::TileRecord& b) {
  return a.granule == b.granule && a.label == b.label &&
         a.latitude == b.latitude && a.longitude == b.longitude &&
         a.cloud_fraction == b.cloud_fraction &&
         a.optical_thickness == b.optical_thickness &&
         a.cloud_top_pressure == b.cloud_top_pressure &&
         a.water_path == b.water_path;
}

/// Asserts a catalog response is equivalent to the oracle's: counts exact,
/// means within floating-point reassociation tolerance, samples valid.
void expect_matches_oracle(const QueryResponse& got, const QueryResponse& want,
                           const QueryRequest& request,
                           const std::vector<analysis::TileRecord>& records,
                           const Catalog& catalog) {
  EXPECT_EQ(got.matched, want.matched);
  ASSERT_EQ(got.classes.size(), want.classes.size());
  for (std::size_t i = 0; i < got.classes.size(); ++i) {
    EXPECT_EQ(got.classes[i].label, want.classes[i].label);
    const auto& g = got.classes[i].stats;
    const auto& o = want.classes[i].stats;
    EXPECT_EQ(g.count, o.count);
    const auto near = [](double a, double b) {
      return std::abs(a - b) <=
             1e-9 * std::max({1.0, std::abs(a), std::abs(b)});
    };
    EXPECT_TRUE(near(g.mean_cloud_fraction, o.mean_cloud_fraction));
    EXPECT_TRUE(near(g.mean_optical_thickness, o.mean_optical_thickness));
    EXPECT_TRUE(near(g.mean_cloud_top_pressure, o.mean_cloud_top_pressure));
    EXPECT_TRUE(near(g.mean_water_path, o.mean_water_path));
    EXPECT_TRUE(near(g.mean_abs_latitude, o.mean_abs_latitude));
  }
  // Samples may differ in order between execution strategies; every sampled
  // record must satisfy the predicate and exist in the archive, and the
  // sample must be as large as the limit allows.
  EXPECT_EQ(got.sample.size(),
            std::min<std::uint64_t>(request.sample_limit, got.matched));
  for (const auto& sampled : got.sample) {
    EXPECT_TRUE(record_matches(sampled, request, catalog));
    bool found = false;
    for (const auto& record : records) {
      if (same_record(sampled, record)) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(GranulePack, RoundTrips) {
  modis::GranuleId id;
  id.product = modis::ProductKind::kMod06;
  id.satellite = modis::Satellite::kAqua;
  id.year = 2023;
  id.day_of_year = 366;
  id.slot = 287;
  EXPECT_EQ(unpack_granule(pack_granule(id)), id);
  modis::GranuleId zero;
  zero.year = 2000;
  zero.day_of_year = 0;
  EXPECT_EQ(unpack_granule(pack_granule(zero)), zero);
}

TEST(Catalog, CellEdgesClampLikeZonalBands) {
  Catalog catalog;
  const std::uint32_t pole = catalog.cell_of(90.0, 0.0);
  EXPECT_EQ(pole, catalog.cell_of(89.999, 0.0));
  const std::uint32_t dateline = catalog.cell_of(0.0, 180.0);
  EXPECT_EQ(dateline, catalog.cell_of(0.0, 179.999));
  EXPECT_LT(catalog.cell_of(-90.0, -180.0), catalog.cell_count());
  double lat = 0.0, lon = 0.0;
  catalog.cell_center(catalog.cell_of(42.0, 13.0), &lat, &lon);
  EXPECT_EQ(catalog.cell_of(lat, lon), catalog.cell_of(42.0, 13.0));
}

TEST(Catalog, PropertyQueriesMatchBruteForceOracle) {
  for (std::uint64_t trial = 0; trial < 4; ++trial) {
    const auto records =
        random_records(1000 + trial, trial == 0 ? 0 : 2000 * trial);
    CatalogConfig config;
    config.shard_count = 1 + 7 * trial;  // 1, 8, 15, 22
    config.rows_per_chunk = 256;         // force multi-chunk shards
    Catalog catalog(config);
    catalog.ingest(records);
    if (trial % 2 == 1) catalog.seal();

    util::Rng rng(77 + trial);
    for (int q = 0; q < 200; ++q) {
      const QueryRequest request = random_request(rng, 8, 45);
      const QueryResponse got = catalog.query(request);
      const QueryResponse want = brute_force_query(records, request, catalog);
      expect_matches_oracle(got, want, request, records, catalog);
    }
  }
}

TEST(Catalog, SealedAndUnsealedAgree) {
  const auto records = random_records(42, 3000);
  CatalogConfig config;
  config.shard_count = 8;
  config.rows_per_chunk = 512;
  Catalog unsealed(config), sealed(config);
  unsealed.ingest(records);
  sealed.ingest(records);
  sealed.seal();
  EXPECT_TRUE(sealed.sealed());
  EXPECT_FALSE(unsealed.sealed());

  util::Rng rng(7);
  for (int q = 0; q < 100; ++q) {
    const QueryRequest request = random_request(rng, 8, 45);
    const QueryResponse a = unsealed.query(request);
    const QueryResponse b = sealed.query(request);
    EXPECT_EQ(a.matched, b.matched);
    ASSERT_EQ(a.classes.size(), b.classes.size());
    for (std::size_t i = 0; i < a.classes.size(); ++i)
      EXPECT_EQ(a.classes[i].stats.count, b.classes[i].stats.count);
  }
}

TEST(Catalog, AppendAfterSealThrows) {
  Catalog catalog;
  const auto records = random_records(5, 10);
  catalog.ingest(records);
  catalog.seal();
  EXPECT_THROW(catalog.append(records.front()), std::logic_error);
}

TEST(Catalog, LoadsFromAiccaArchive) {
  // End-to-end: tile files on a MemFs -> AiccaArchive -> catalog, responses
  // checked against the oracle scanning the same archive.
  storage::MemFs fs("orion");
  const auto records = random_records(9, 300, 5, 20);
  // Group records into per-slot files like the pipeline writes them.
  for (int slot = 0; slot < 10; ++slot) {
    preprocess::TilerResult result;
    result.daytime = true;
    std::vector<std::int32_t> labels;
    modis::GranuleId id;
    for (std::size_t i = static_cast<std::size_t>(slot) * 30;
         i < static_cast<std::size_t>(slot + 1) * 30; ++i) {
      preprocess::Tile tile;
      tile.tile_size = 4;
      tile.channels = 1;
      tile.data.assign(16, 0.5f);
      tile.center_lat = records[i].latitude;
      tile.center_lon = records[i].longitude;
      tile.cloud_fraction = records[i].cloud_fraction;
      tile.mean_optical_thickness = records[i].optical_thickness;
      tile.mean_cloud_top_pressure = records[i].cloud_top_pressure;
      tile.mean_water_path = records[i].water_path;
      result.tiles.push_back(std::move(tile));
      labels.push_back(records[i].label);
      id = records[i].granule;
    }
    preprocess::write_tile_file(fs, "aicca/f" + std::to_string(slot) + ".ncl",
                                id, result);
    preprocess::append_labels(
        fs, "aicca/f" + std::to_string(slot) + ".ncl", labels);
  }
  const auto archive = analysis::AiccaArchive::load(fs, "aicca/*.ncl");
  ASSERT_EQ(archive.tile_count(), 300u);

  Catalog catalog;
  EXPECT_EQ(catalog.ingest(archive), 300u);
  catalog.seal();
  util::Rng rng(11);
  for (int q = 0; q < 50; ++q) {
    const QueryRequest request = random_request(rng, 5, 25);
    const QueryResponse got = catalog.query(request);
    const QueryResponse want =
        brute_force_query(archive.records(), request, catalog);
    expect_matches_oracle(got, want, request, archive.records(), catalog);
  }
}

TEST(Catalog, ConcurrentReadDuringIngest) {
  // The TSan target: readers run lock-free queries while a writer appends
  // and publishes in batches, then seals. Readers assert monotonicity (a
  // time-range count can only grow); the final state must match the oracle.
  const auto records = random_records(123, 20000);
  CatalogConfig config;
  config.shard_count = 4;
  config.rows_per_chunk = 128;  // force chunk allocation races if any exist
  Catalog catalog(config);

  std::atomic<bool> done{false};
  QueryRequest wide;
  wide.kind = QueryKind::kTimeRange;
  wide.day_lo = 1;
  wide.day_hi = 366;
  wide.sample_limit = 2;

  std::vector<std::thread> readers;
  std::atomic<std::uint64_t> reads{0};
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      util::Rng rng(900 + t);
      std::uint64_t last = 0;
      while (!done.load(std::memory_order_acquire)) {
        const QueryResponse wide_response = catalog.query(wide);
        EXPECT_GE(wide_response.matched, last);
        last = wide_response.matched;
        (void)catalog.query(random_request(rng, 8, 45));
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (std::size_t i = 0; i < records.size(); ++i) {
    catalog.append(records[i]);
    if (i % 512 == 511) catalog.publish();
  }
  catalog.seal();
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_GT(reads.load(), 0u);

  const QueryResponse final_response = catalog.query(wide);
  const QueryResponse want = brute_force_query(records, wide, catalog);
  EXPECT_EQ(final_response.matched, want.matched);
  EXPECT_EQ(final_response.matched, records.size());
}

TEST(ServeService, CacheHitsAndGenerationInvalidation) {
  const auto records = random_records(5, 2000);
  Catalog catalog;
  catalog.ingest(records);

  ServeConfig config;
  config.trace = false;
  ServeService service(catalog, config);
  QueryRequest request;
  request.kind = QueryKind::kTimeRange;

  const QueryResponse first = service.query(request);
  EXPECT_FALSE(first.cache_hit);
  const QueryResponse second = service.query(request);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.matched, first.matched);
  EXPECT_EQ(service.stats().cache_hits, 1u);

  // A publish bumps generations: the entry must be detected stale and the
  // recomputed response must include the new rows.
  catalog.append(records.front());
  catalog.publish();
  const QueryResponse third = service.query(request);
  EXPECT_FALSE(third.cache_hit);
  EXPECT_EQ(third.matched, first.matched + 1);
  EXPECT_EQ(service.stats().cache_stale, 1u);

  // And the fresh entry serves hits again.
  const QueryResponse fourth = service.query(request);
  EXPECT_TRUE(fourth.cache_hit);
  EXPECT_EQ(fourth.matched, third.matched);
}

TEST(ServeService, PointCacheSurvivesOtherShardPublishes) {
  // A point query's generation snapshot covers only its candidate shards;
  // publishing rows that land elsewhere must not invalidate the entry.
  CatalogConfig cat_config;
  cat_config.shard_count = 64;
  Catalog catalog(cat_config);
  const auto records = random_records(6, 2000, 8, 40);
  catalog.ingest(records);

  ServeConfig config;
  config.trace = false;
  ServeService service(catalog, config);

  QueryRequest request;
  request.kind = QueryKind::kPoint;
  request.lat = 10.0;
  request.lon = 10.0;
  request.day_lo = 5;
  request.day_hi = 5;
  (void)service.query(request);

  // Find a record whose (cell, day) maps to a different shard than the
  // query's single candidate.
  const std::uint32_t q_shard =
      catalog.shard_of(catalog.cell_of(request.lat, request.lon), 5);
  analysis::TileRecord other;
  bool found = false;
  for (const auto& record : records) {
    const auto cell = catalog.cell_of(record.latitude, record.longitude);
    if (catalog.shard_of(cell, record.granule.day_of_year) != q_shard) {
      other = record;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  catalog.append(other);
  catalog.publish();

  const QueryResponse hit = service.query(request);
  EXPECT_TRUE(hit.cache_hit);
}

TEST(ServeService, LruEvictsColdEntries) {
  const auto records = random_records(5, 500);
  Catalog catalog;
  catalog.ingest(records);
  catalog.seal();

  ServeConfig config;
  config.trace = false;
  config.cache_capacity = 2;
  config.cache_ways = 1;
  ServeService service(catalog, config);

  QueryRequest a, b, c;
  a.kind = QueryKind::kTimeRange;
  a.day_hi = 10;
  b.kind = QueryKind::kTimeRange;
  b.day_hi = 20;
  c.kind = QueryKind::kTimeRange;
  c.day_hi = 30;
  (void)service.query(a);
  (void)service.query(b);
  (void)service.query(c);  // evicts a
  EXPECT_FALSE(service.query(a).cache_hit);  // cold again
  EXPECT_GE(service.stats().cache_evictions, 1u);
}

TEST(ServeService, MetricsCountersTrackQueryOutcomes) {
  const auto records = random_records(7, 2000);
  Catalog catalog;
  catalog.ingest(records);
  ServeConfig config;
  config.trace = false;
  ServeService service(catalog, config);

  auto& metrics = obs::MetricsRegistry::instance();
  metrics.clear();
  metrics.set_enabled(true);
  QueryRequest request;
  request.kind = QueryKind::kTimeRange;
  service.query(request);  // miss
  service.query(request);  // hit
  metrics.set_enabled(false);

  const obs::Labels by_kind{{"kind", kind_name(QueryKind::kTimeRange)}};
  EXPECT_DOUBLE_EQ(metrics.counter("mfw.serve.queries_total", by_kind), 2.0);
  EXPECT_DOUBLE_EQ(
      metrics.counter("mfw.serve.cache_total", {{"result", "miss"}}), 1.0);
  EXPECT_DOUBLE_EQ(
      metrics.counter("mfw.serve.cache_total", {{"result", "hit"}}), 1.0);
  EXPECT_GT(metrics.counter("mfw.serve.shard_probes_total", by_kind), 0.0);
  const auto latency =
      metrics.distribution("mfw.serve.query_latency_seconds", by_kind);
  ASSERT_TRUE(latency.has_value());
  EXPECT_EQ(latency->stats.count(), 2u);
  metrics.clear();

  // Disabled registry: the hot path records nothing.
  service.query(request);
  EXPECT_DOUBLE_EQ(metrics.counter("mfw.serve.queries_total", by_kind), 0.0);
}

TEST(ServeApi, JsonCarriesSchemaAndEchoesRequest) {
  const auto records = random_records(5, 200);
  Catalog catalog;
  catalog.ingest(records);
  QueryRequest request;
  request.kind = QueryKind::kClass;
  request.label = 2;
  request.sample_limit = 3;
  const QueryResponse response = catalog.query(request);
  const std::string json = to_json(request, response);
  EXPECT_NE(json.find("\"schema\": \"mfw.serve/v1\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"class\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"matched\": "), std::string::npos);
  EXPECT_NE(json.find("\"classes\": ["), std::string::npos);

  // Distinct requests must canonicalize to distinct cache keys, identical
  // ones to the same key.
  QueryRequest other = request;
  EXPECT_EQ(cache_key(request), cache_key(other));
  other.label = 3;
  EXPECT_NE(cache_key(request), cache_key(other));
}

TEST(LoadGen, ClosedLoopRunsAndCacheWarms) {
  const auto records = random_records(3, 5000, 8, 20);
  CatalogConfig cat_config;
  cat_config.shard_count = 8;
  Catalog catalog(cat_config);
  catalog.ingest(records);
  catalog.seal();
  ServeConfig svc_config;
  svc_config.trace = false;
  ServeService service(catalog, svc_config);

  LoadConfig load;
  load.users = 5000;
  load.requests = 4000;
  load.threads = 2;
  load.day_hi = 20;
  load.zipf_s = 1.2;
  const LoadResult result = run_load(service, load);
  EXPECT_EQ(result.requests, 4000u);
  EXPECT_GT(result.qps, 0.0);
  EXPECT_GT(result.all.p99_us, 0.0);
  EXPECT_GE(result.all.p99_us, result.all.p50_us);
  // Zipf skew + repeated day windows must produce real cache traffic.
  EXPECT_GT(result.hit_rate, 0.2);
  const std::string json = result.to_json();
  EXPECT_NE(json.find("\"qps\": "), std::string::npos);
  EXPECT_NE(json.find("\"cache_hit_rate\": "), std::string::npos);
}

TEST(LoadGen, OpenLoopFlashCrowdRaisesTail) {
  const auto records = random_records(4, 5000, 8, 20);
  Catalog catalog;
  catalog.ingest(records);
  catalog.seal();
  ServeConfig svc_config;
  svc_config.trace = false;
  ServeService service(catalog, svc_config);

  LoadConfig load;
  load.users = 2000;
  load.requests = 3000;
  load.threads = 2;
  load.day_hi = 20;
  load.arrival_rate = 500.0;  // modest offered load
  load.flash_crowd = true;
  load.flash_boost = 50.0;  // drive the flash window far past capacity
  const LoadResult result = run_load(service, load);
  EXPECT_EQ(result.requests, 3000u);
  EXPECT_GT(result.flash.count, 0u);
  EXPECT_GT(result.base.count, 0u);
  EXPECT_FALSE(result.timeline.empty());
  const std::string json = result.to_json();
  EXPECT_NE(json.find("\"flash\": "), std::string::npos);
  EXPECT_NE(json.find("\"timeline\": ["), std::string::npos);
}

}  // namespace
}  // namespace mfw::serve
