// Tests for the tiler (ocean-cloud selection semantics), tile file I/O, and
// the end-to-end real preprocessing function.
#include <gtest/gtest.h>

#include "preprocess/tasks.hpp"
#include "preprocess/tile_io.hpp"
#include "preprocess/tiler.hpp"
#include "storage/memfs.hpp"

namespace mfw::preprocess {
namespace {

// A small daytime granule triplet.
struct Triplet {
  modis::Mod02Granule mod02;
  modis::Mod03Granule mod03;
  modis::Mod06Granule mod06;
};

Triplet make_triplet(int slot_hint = 0, modis::GranuleGeometry geometry = {
                                            128, 96, 4}) {
  modis::GranuleGenerator gen(2022);
  modis::GranuleSpec spec;
  spec.geometry = geometry;
  spec.slot = slot_hint;
  while (!modis::is_daytime(spec.satellite, spec.slot, spec.day_of_year))
    ++spec.slot;
  return Triplet{gen.mod02(spec), gen.mod03(spec), gen.mod06(spec)};
}

TilerOptions small_options() {
  TilerOptions options;
  options.tile_size = 32;
  options.channels = 3;
  options.min_cloud_fraction = 0.3;
  return options;
}

TEST(Tiler, ProducesTilesWithExpectedShape) {
  const auto t = make_triplet();
  const auto result = make_tiles(t.mod02, t.mod03, t.mod06, small_options());
  EXPECT_TRUE(result.daytime);
  EXPECT_EQ(result.candidate_positions, (128 / 32) * (96 / 32));
  for (const auto& tile : result.tiles) {
    EXPECT_EQ(tile.tile_size, 32);
    EXPECT_EQ(tile.channels, 3);
    EXPECT_EQ(tile.data.size(), 3u * 32 * 32);
    EXPECT_GE(tile.cloud_fraction, 0.3f);
  }
  EXPECT_EQ(static_cast<int>(result.tiles.size()) + result.rejected_land +
                result.rejected_clear,
            result.candidate_positions);
}

TEST(Tiler, SelectionRespectsCloudThreshold) {
  const auto t = make_triplet();
  auto options = small_options();
  options.min_cloud_fraction = 0.0;
  const auto all = make_tiles(t.mod02, t.mod03, t.mod06, options);
  options.min_cloud_fraction = 0.99;
  const auto strict = make_tiles(t.mod02, t.mod03, t.mod06, options);
  EXPECT_LE(strict.tiles.size(), all.tiles.size());
  // With threshold 0 every no-land tile is selected.
  EXPECT_EQ(static_cast<int>(all.tiles.size()),
            all.candidate_positions - all.rejected_land);
}

TEST(Tiler, NoLandPixelsInSelectedTiles) {
  const auto t = make_triplet();
  const auto result = make_tiles(t.mod02, t.mod03, t.mod06, small_options());
  const int cols = t.mod02.spec.geometry.cols;
  for (const auto& tile : result.tiles) {
    for (int r = tile.origin_row; r < tile.origin_row + tile.tile_size; ++r) {
      for (int c = tile.origin_col; c < tile.origin_col + tile.tile_size; ++c) {
        ASSERT_EQ(t.mod03.land_mask[static_cast<std::size_t>(r) * cols + c], 0);
      }
    }
  }
}

TEST(Tiler, TileDataMatchesSourceRadiance) {
  const auto t = make_triplet();
  const auto result = make_tiles(t.mod02, t.mod03, t.mod06, small_options());
  ASSERT_FALSE(result.tiles.empty());
  const auto& tile = result.tiles.front();
  EXPECT_FLOAT_EQ(tile.at(1, 3, 5),
                  t.mod02.at(1, tile.origin_row + 3, tile.origin_col + 5));
}

TEST(Tiler, NightGranuleYieldsNothing) {
  modis::GranuleGenerator gen(2022);
  modis::GranuleSpec spec;
  spec.geometry = modis::GranuleGeometry{64, 64, 4};
  while (modis::is_daytime(spec.satellite, spec.slot, spec.day_of_year))
    ++spec.slot;
  const auto result = make_tiles(gen.mod02(spec), gen.mod03(spec),
                                 gen.mod06(spec), small_options());
  EXPECT_FALSE(result.daytime);
  EXPECT_TRUE(result.tiles.empty());
}

TEST(Tiler, MismatchedProductsRejected) {
  const auto t1 = make_triplet(0);
  auto t2 = make_triplet(t1.mod02.spec.slot + 1);
  EXPECT_THROW(make_tiles(t1.mod02, t2.mod03, t1.mod06, small_options()),
               std::invalid_argument);
  auto options = small_options();
  options.channels = 99;
  EXPECT_THROW(make_tiles(t1.mod02, t1.mod03, t1.mod06, options),
               std::invalid_argument);
}

TEST(TileIo, FullFileRoundTrip) {
  const auto t = make_triplet();
  const auto result = make_tiles(t.mod02, t.mod03, t.mod06, small_options());
  ASSERT_FALSE(result.tiles.empty());
  storage::MemFs fs("x");
  modis::GranuleId id{modis::ProductKind::kMod02, t.mod02.spec.satellite,
                      t.mod02.spec.year, t.mod02.spec.day_of_year,
                      t.mod02.spec.slot};
  write_tile_file(fs, "tiles/out.ncl", id, result);

  const auto summary = read_tile_summary(fs, "tiles/out.ncl");
  EXPECT_EQ(summary.tile_count, result.tiles.size());
  EXPECT_TRUE(summary.has_pixel_data);
  EXPECT_FALSE(summary.has_labels);
  EXPECT_EQ(summary.granule.slot, id.slot);

  const auto tiles = tiles_from_ncl(read_tile_file(fs, "tiles/out.ncl"));
  ASSERT_EQ(tiles.size(), result.tiles.size());
  EXPECT_EQ(tiles[0].data, result.tiles[0].data);
  EXPECT_FLOAT_EQ(tiles[0].center_lat, result.tiles[0].center_lat);
  EXPECT_EQ(tiles[0].origin_row, result.tiles[0].origin_row);
}

TEST(TileIo, ManifestRoundTrip) {
  storage::MemFs fs("x");
  modis::GranuleId id{modis::ProductKind::kMod02, modis::Satellite::kTerra,
                      2022, 1, 95};
  write_tile_manifest(fs, "tiles/m.ncl", id, 77);
  const auto summary = read_tile_summary(fs, "tiles/m.ncl");
  EXPECT_EQ(summary.tile_count, 77u);
  EXPECT_FALSE(summary.has_pixel_data);
  EXPECT_EQ(summary.granule, id);
}

TEST(TileIo, AppendLabels) {
  const auto t = make_triplet();
  const auto result = make_tiles(t.mod02, t.mod03, t.mod06, small_options());
  ASSERT_FALSE(result.tiles.empty());
  storage::MemFs fs("x");
  modis::GranuleId id{modis::ProductKind::kMod02, t.mod02.spec.satellite,
                      t.mod02.spec.year, t.mod02.spec.day_of_year,
                      t.mod02.spec.slot};
  write_tile_file(fs, "t.ncl", id, result);
  std::vector<std::int32_t> labels(result.tiles.size());
  for (std::size_t i = 0; i < labels.size(); ++i)
    labels[i] = static_cast<std::int32_t>(i % 42);
  append_labels(fs, "t.ncl", labels);

  const auto file = read_tile_file(fs, "t.ncl");
  ASSERT_TRUE(file.has_var("label"));
  EXPECT_EQ(file.var("label").as_i32()[0], 0);
  EXPECT_TRUE(read_tile_summary(fs, "t.ncl").has_labels);

  // Wrong label count rejected.
  std::vector<std::int32_t> bad(labels.size() + 1, 0);
  EXPECT_THROW(append_labels(fs, "t.ncl", bad), std::invalid_argument);
}

TEST(TileIo, AppendLabelsOnManifest) {
  storage::MemFs fs("x");
  modis::GranuleId id{modis::ProductKind::kMod02, modis::Satellite::kTerra,
                      2022, 1, 95};
  write_tile_manifest(fs, "m.ncl", id, 3);
  const std::vector<std::int32_t> labels{1, 2, 3};
  append_labels(fs, "m.ncl", labels);
  EXPECT_TRUE(read_tile_summary(fs, "m.ncl").has_labels);
}

TEST(RunPreprocess, EndToEndFromHdflFiles) {
  modis::GranuleGenerator gen(2022);
  modis::GranuleSpec spec;
  spec.geometry = modis::GranuleGeometry{96, 64, 4};
  while (!modis::is_daytime(spec.satellite, spec.slot, spec.day_of_year))
    ++spec.slot;
  storage::MemFs fs("defiant");
  fs.write_file("staging/m02.hdf", gen.mod02(spec).to_hdfl().serialize());
  fs.write_file("staging/m03.hdf", gen.mod03(spec).to_hdfl().serialize());
  fs.write_file("staging/m06.hdf", gen.mod06(spec).to_hdfl().serialize());

  GranulePaths paths{"staging/m02.hdf", "staging/m03.hdf", "staging/m06.hdf"};
  TilerOptions options;
  options.tile_size = 32;
  options.channels = 4;
  const auto result = run_preprocess(fs, paths, fs, "tiles/out.ncl", options);
  EXPECT_TRUE(fs.exists("tiles/out.ncl"));
  const auto summary = read_tile_summary(fs, "tiles/out.ncl");
  EXPECT_EQ(summary.tile_count, result.tiles.size());
}

}  // namespace
}  // namespace mfw::preprocess
