// Unit tests for the tensor/layer substrate, including finite-difference
// gradient checks for every trainable layer.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/layers.hpp"
#include "ml/loss.hpp"
#include "ml/tensor.hpp"

namespace mfw::ml {
namespace {

TEST(Tensor, ConstructionAndIndexing) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  t.at2(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(t.at2(1, 2), 5.0f);
  Tensor u({2, 2, 2});
  u.at3(1, 0, 1) = 3.0f;
  EXPECT_FLOAT_EQ(u[5], 3.0f);
}

TEST(Tensor, ShapeValidation) {
  EXPECT_THROW(Tensor({0, 3}), std::invalid_argument);
  EXPECT_THROW(Tensor({2}, {1.0f}), std::invalid_argument);
  Tensor t({4});
  EXPECT_THROW(t.reshaped({3}), std::invalid_argument);
  EXPECT_NO_THROW(t.reshaped({2, 2}));
}

TEST(Tensor, ArithmeticAndNorm) {
  Tensor a({3}, {1, 2, 2});
  Tensor b({3}, {1, 1, 1});
  a += b;
  EXPECT_FLOAT_EQ(a[1], 3.0f);
  a -= b;
  a *= 2.0f;
  EXPECT_FLOAT_EQ(a[2], 4.0f);
  EXPECT_FLOAT_EQ(Tensor({2}, {3, 4}).norm(), 5.0f);
  EXPECT_FLOAT_EQ(Tensor({2}, {3, 5}).mean(), 4.0f);
  Tensor c({2});
  EXPECT_THROW(c += a, std::invalid_argument);
}

TEST(Tensor, Rotate90Correctness) {
  // 1x2x2 tile: [[1,2],[3,4]].
  Tensor t({1, 2, 2}, {1, 2, 3, 4});
  const Tensor r1 = rotate90(t, 1);  // CCW: [[2,4],[1,3]]
  EXPECT_FLOAT_EQ(r1.at3(0, 0, 0), 2);
  EXPECT_FLOAT_EQ(r1.at3(0, 0, 1), 4);
  EXPECT_FLOAT_EQ(r1.at3(0, 1, 0), 1);
  EXPECT_FLOAT_EQ(r1.at3(0, 1, 1), 3);
  const Tensor r2 = rotate90(t, 2);
  EXPECT_FLOAT_EQ(r2.at3(0, 0, 0), 4);
  const Tensor r4 = rotate90(rotate90(t, 3), 1);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_FLOAT_EQ(r4[i], t[i]);
  const Tensor r0 = rotate90(t, 0);
  EXPECT_FLOAT_EQ(r0[0], t[0]);
  EXPECT_THROW(rotate90(Tensor({1, 2, 3}), 1), std::invalid_argument);
}

TEST(Tensor, MseAndDistance) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {3, 2});
  EXPECT_FLOAT_EQ(mse(a, b), 2.0f);
  EXPECT_FLOAT_EQ(squared_distance(a.span(), b.span()), 4.0f);
  EXPECT_THROW(mse(a, Tensor({3})), std::invalid_argument);
}

// Finite-difference gradient verification for a layer under MSE loss.
void check_gradients(Layer& layer, const Tensor& input, double tol = 2e-2) {
  Tensor out = layer.forward(input);
  Tensor target = out;
  for (std::size_t i = 0; i < target.size(); ++i)
    target[i] += 0.1f * static_cast<float>((i % 5)) - 0.2f;

  auto loss_at = [&](const Tensor& x) {
    Tensor y = layer.forward(x);
    return mse(y, target);
  };

  // Analytic input gradient.
  const LossGrad lg = mse_loss(out, target);
  for (Param* p : layer.params()) p->grad.zero();
  const Tensor grad_in = layer.backward(lg.grad);

  const float eps = 1e-3f;
  // Input gradient, sampled entries.
  for (std::size_t i = 0; i < input.size(); i += std::max<std::size_t>(1, input.size() / 13)) {
    Tensor plus = input, minus = input;
    plus[i] += eps;
    minus[i] -= eps;
    const double numeric = (loss_at(plus) - loss_at(minus)) / (2 * eps);
    ASSERT_NEAR(grad_in[i], numeric, tol) << "input grad at " << i;
  }
  // Parameter gradients, sampled entries. Re-establish the forward/backward
  // caches for the unperturbed input first.
  (void)layer.forward(input);
  for (Param* p : layer.params()) p->grad.zero();
  (void)layer.backward(lg.grad);
  for (Param* p : layer.params()) {
    for (std::size_t i = 0; i < p->value.size();
         i += std::max<std::size_t>(1, p->value.size() / 11)) {
      const float saved = p->value[i];
      p->value[i] = saved + eps;
      const double lp = loss_at(input);
      p->value[i] = saved - eps;
      const double lm = loss_at(input);
      p->value[i] = saved;
      const double numeric = (lp - lm) / (2 * eps);
      ASSERT_NEAR(p->grad[i], numeric, tol)
          << p->name << " grad at " << i;
    }
  }
}

TEST(Layers, DenseGradientsMatchFiniteDifference) {
  util::Rng rng(3);
  Dense dense(6, 4, rng);
  Tensor input({6});
  for (std::size_t i = 0; i < 6; ++i) input[i] = static_cast<float>(rng.normal());
  check_gradients(dense, input);
}

TEST(Layers, Conv2dGradientsMatchFiniteDifference) {
  util::Rng rng(4);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  Tensor input({2, 6, 6});
  for (std::size_t i = 0; i < input.size(); ++i)
    input[i] = static_cast<float>(rng.normal());
  check_gradients(conv, input);
}

TEST(Layers, Conv2dStridedShape) {
  util::Rng rng(5);
  Conv2d conv(1, 2, 3, 2, 1, rng);
  Tensor input({1, 8, 8});
  const Tensor out = conv.forward(input);
  EXPECT_EQ(out.shape(), (std::vector<int>{2, 4, 4}));
  EXPECT_EQ(conv.backward(Tensor(out.shape())).shape(), input.shape());
}

TEST(Layers, ActivationGradients) {
  util::Rng rng(6);
  Tensor input({10});
  for (std::size_t i = 0; i < 10; ++i) input[i] = static_cast<float>(rng.normal());
  ReLU relu;
  check_gradients(relu, input);
  LeakyReLU leaky(0.1f);
  check_gradients(leaky, input);
  Sigmoid sigmoid;
  check_gradients(sigmoid, input);
}

TEST(Layers, MaxPoolSelectsMaxAndRoutesGradient) {
  MaxPool2x2 pool;
  Tensor input({1, 2, 2}, {1, 5, 2, 3});
  const Tensor out = pool.forward(input);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FLOAT_EQ(out[0], 5.0f);
  Tensor grad({1, 1, 1}, {2.0f});
  const Tensor gin = pool.backward(grad);
  EXPECT_FLOAT_EQ(gin[1], 2.0f);  // only the argmax receives gradient
  EXPECT_FLOAT_EQ(gin[0], 0.0f);
  EXPECT_THROW(pool.forward(Tensor({1, 3, 3})), std::invalid_argument);
}

TEST(Layers, UpsampleInvertsPoolShapes) {
  UpsampleNearest2x up;
  Tensor input({2, 3, 3});
  input.fill(1.0f);
  const Tensor out = up.forward(input);
  EXPECT_EQ(out.shape(), (std::vector<int>{2, 6, 6}));
  const Tensor gin = up.backward(Tensor::full({2, 6, 6}, 1.0f));
  // Each input pixel gathers gradient from its 4 copies.
  EXPECT_FLOAT_EQ(gin[0], 4.0f);
}

TEST(Layers, SequentialComposesAndCountsParams) {
  util::Rng rng(7);
  Sequential net;
  net.emplace<Conv2d>(1, 2, 3, 1, 1, rng);
  net.emplace<ReLU>();
  net.emplace<MaxPool2x2>();
  net.emplace<Flatten>();
  net.emplace<Dense>(2 * 2 * 2, 3, rng);
  Tensor input({1, 4, 4});
  for (std::size_t i = 0; i < input.size(); ++i)
    input[i] = static_cast<float>(rng.normal());
  const Tensor out = net.forward(input);
  EXPECT_EQ(out.shape(), (std::vector<int>{3}));
  const Tensor gin = net.backward(Tensor::full({3}, 1.0f));
  EXPECT_EQ(gin.shape(), input.shape());
  // conv: 2*1*3*3 + 2, dense: 3*8 + 3.
  EXPECT_EQ(net.param_count(), 18u + 2u + 24u + 3u);
}

TEST(Layers, HeInitHasSensibleScale) {
  util::Rng rng(8);
  const Tensor w = Tensor::he_normal({64, 32}, rng);
  double sum = 0, sum2 = 0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    sum += w[i];
    sum2 += static_cast<double>(w[i]) * w[i];
  }
  const double mean = sum / static_cast<double>(w.size());
  const double var = sum2 / static_cast<double>(w.size()) - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 2.0 / 32.0, 0.02);
}

}  // namespace
}  // namespace mfw::ml
