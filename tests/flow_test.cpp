// Tests for the flow engine: definition parsing/validation, runner
// semantics (actions, choices, waits, context, overhead, failure), the
// event bus, the filesystem monitor, and the dataflow layer (typed events +
// GranuleTracker triplet assembly).
#include <gtest/gtest.h>

#include "flow/definition.hpp"
#include "flow/event_bus.hpp"
#include "flow/events.hpp"
#include "flow/granule_tracker.hpp"
#include "flow/monitor.hpp"
#include "flow/provenance.hpp"
#include "flow/runner.hpp"
#include "obs/trace.hpp"
#include "storage/memfs.hpp"

namespace mfw::flow {
namespace {

constexpr const char* kSimpleFlow = R"(
name: simple
start_at: work
states:
  work:
    type: action
    action: echo
    parameters:
      value: 42
    result_path: result
    next: finish
  finish:
    type: succeed
)";

TEST(Definition, ParsesFromYaml) {
  const auto def = FlowDefinition::from_yaml_text(kSimpleFlow);
  EXPECT_EQ(def.name(), "simple");
  EXPECT_EQ(def.start_at(), "work");
  ASSERT_TRUE(def.has_state("work"));
  EXPECT_EQ(def.state("work").action, "echo");
  EXPECT_EQ(def.state("work").parameters["value"].as_int(), 42);
}

TEST(Definition, ValidatesGraph) {
  EXPECT_THROW(FlowDefinition::from_yaml_text(R"(
start_at: missing
states:
  other:
    type: succeed
)"),
               util::YamlError);
  EXPECT_THROW(FlowDefinition::from_yaml_text(R"(
start_at: a
states:
  a:
    type: action
    action: x
    next: nowhere
)"),
               util::YamlError);
  EXPECT_THROW(FlowDefinition::from_yaml_text(R"(
start_at: a
states:
  a:
    type: pass
)"),
               util::YamlError);  // non-terminal without next
}

TEST(Definition, ChoiceParsing) {
  const auto def = FlowDefinition::from_yaml_text(R"(
start_at: decide
states:
  decide:
    type: choice
    choices:
      - variable: count
        greater_than: 0
        next: go
    default: stop
  go:
    type: succeed
  stop:
    type: fail
    error: empty
)");
  const auto& decide = def.state("decide");
  ASSERT_EQ(decide.choices.size(), 1u);
  EXPECT_EQ(decide.choices[0].op, ChoiceRule::Op::kGreaterThan);
  EXPECT_EQ(decide.default_next, "stop");
}

struct RunnerFixture {
  sim::SimEngine engine;
  ProvenanceLog provenance;
  FlowRunner runner{engine, &provenance};
};

TEST(Runner, ActionResultStoredInContext) {
  RunnerFixture fx;
  fx.runner.register_action(
      "echo", [](const util::YamlNode& params, const util::YamlNode&,
                 ActionHandle handle) {
        handle.succeed(params["value"]);
      });
  util::YamlNode final_context;
  bool succeeded = false;
  fx.runner.start(FlowDefinition::from_yaml_text(kSimpleFlow),
                  util::YamlNode::map(),
                  [&](const RunRecord& record, const util::YamlNode& context) {
                    succeeded = record.succeeded;
                    final_context = context;
                  });
  fx.engine.run();
  ASSERT_TRUE(succeeded);
  EXPECT_EQ(final_context["result"].as_int(), 42);
}

TEST(Runner, ParameterReferencesResolveFromContext) {
  RunnerFixture fx;
  std::string seen;
  fx.runner.register_action(
      "consume", [&](const util::YamlNode& params, const util::YamlNode&,
                     ActionHandle handle) {
        seen = params["path"].as_string();
        handle.succeed(util::YamlNode::map());
      });
  const auto def = FlowDefinition::from_yaml_text(R"(
start_at: s
states:
  s:
    type: action
    action: consume
    parameters:
      path: $.file.path
    next: end
  end:
    type: succeed
)");
  auto context = util::YamlNode::map();
  auto file = util::YamlNode::map();
  file.set("path", util::YamlNode::scalar("tiles/x.ncl"));
  context.set("file", std::move(file));
  fx.runner.start(def, std::move(context));
  fx.engine.run();
  EXPECT_EQ(seen, "tiles/x.ncl");
}

TEST(Runner, ChoiceRoutesOnContext) {
  RunnerFixture fx;
  const auto def = FlowDefinition::from_yaml_text(R"(
start_at: decide
states:
  decide:
    type: choice
    choices:
      - variable: n
        greater_than: 10
        next: big
      - variable: n
        greater_or_equal: 0
        next: small
    default: neg
  big:
    type: succeed
  small:
    type: succeed
  neg:
    type: fail
    error: negative
)");
  auto run_with = [&](const std::string& n) {
    auto context = util::YamlNode::map();
    context.set("n", util::YamlNode::scalar(n));
    std::string last_state;
    bool ok = false;
    fx.runner.start(def, std::move(context),
                    [&](const RunRecord& record, const util::YamlNode&) {
                      ok = record.succeeded;
                      last_state = record.states.back().state;
                    });
    fx.engine.run();
    return std::make_pair(ok, last_state);
  };
  EXPECT_EQ(run_with("50"), std::make_pair(true, std::string("big")));
  EXPECT_EQ(run_with("3"), std::make_pair(true, std::string("small")));
  EXPECT_EQ(run_with("-2"), std::make_pair(false, std::string("neg")));
}

TEST(Runner, WaitAdvancesVirtualTime) {
  RunnerFixture fx;
  const auto def = FlowDefinition::from_yaml_text(R"(
start_at: nap
states:
  nap:
    type: wait
    seconds: 7.5
    next: end
  end:
    type: succeed
)");
  double finished = -1;
  fx.runner.start(def, util::YamlNode::map(),
                  [&](const RunRecord& r, const util::YamlNode&) {
                    finished = r.finished_at;
                  });
  fx.engine.run();
  EXPECT_NEAR(finished, 7.5, 1e-9);
}

TEST(Runner, PassAssignsContext) {
  RunnerFixture fx;
  const auto def = FlowDefinition::from_yaml_text(R"(
start_at: set
states:
  set:
    type: pass
    set:
      mode: fast
      copy: $.input
    next: end
  end:
    type: succeed
)");
  auto context = util::YamlNode::map();
  context.set("input", util::YamlNode::scalar("original"));
  util::YamlNode final_context;
  fx.runner.start(def, std::move(context),
                  [&](const RunRecord&, const util::YamlNode& ctx) {
                    final_context = ctx;
                  });
  fx.engine.run();
  EXPECT_EQ(final_context["mode"].as_string(), "fast");
  EXPECT_EQ(final_context["copy"].as_string(), "original");
}

TEST(Runner, ActionFailureFailsRun) {
  RunnerFixture fx;
  fx.runner.register_action(
      "echo", [](const util::YamlNode&, const util::YamlNode&,
                 ActionHandle handle) { handle.fail("kaput"); });
  bool succeeded = true;
  std::string error;
  fx.runner.start(FlowDefinition::from_yaml_text(kSimpleFlow),
                  util::YamlNode::map(),
                  [&](const RunRecord& record, const util::YamlNode&) {
                    succeeded = record.succeeded;
                    error = record.error;
                  });
  fx.engine.run();
  EXPECT_FALSE(succeeded);
  EXPECT_EQ(error, "kaput");
}

TEST(Runner, UnregisteredActionRejectedAtStart) {
  RunnerFixture fx;
  EXPECT_THROW(
      fx.runner.start(FlowDefinition::from_yaml_text(kSimpleFlow)),
      std::invalid_argument);
}

TEST(Runner, ActionOverheadChargedPerAction) {
  sim::SimEngine engine;
  ProvenanceLog provenance;
  FlowRunner runner(engine, &provenance, FlowRunnerConfig{0.05, 1000});
  runner.register_action("echo",
                         [](const util::YamlNode& p, const util::YamlNode&,
                            ActionHandle h) { h.succeed(p["value"]); });
  double finished = -1;
  runner.start(FlowDefinition::from_yaml_text(kSimpleFlow),
               util::YamlNode::map(),
               [&](const RunRecord& r, const util::YamlNode&) {
                 finished = r.finished_at;
               });
  engine.run();
  EXPECT_NEAR(finished, 0.05, 1e-9);  // one action, ~50 ms overhead
  EXPECT_NEAR(provenance.mean_action_overhead(), 0.05, 1e-9);
}

TEST(Runner, AsyncActionsCompleteAcrossEvents) {
  RunnerFixture fx;
  fx.runner.register_action(
      "echo", [&](const util::YamlNode& p, const util::YamlNode&,
                  ActionHandle handle) {
        // Succeed three seconds later, from a different event.
        fx.engine.schedule_after(
            3.0, [p, succeed = handle.succeed] { succeed(p["value"]); });
      });
  double finished = -1;
  fx.runner.start(FlowDefinition::from_yaml_text(kSimpleFlow),
                  util::YamlNode::map(),
                  [&](const RunRecord& r, const util::YamlNode&) {
                    finished = r.finished_at;
                  });
  fx.engine.run();
  EXPECT_GT(finished, 3.0);
}

TEST(Runner, DefinitionLoopHitsTransitionGuard) {
  sim::SimEngine engine;
  FlowRunner runner(engine, nullptr, FlowRunnerConfig{0.0, 50});
  // pass <-> bounce loop with no exit: the guard must fail the run.
  const auto def = FlowDefinition::from_yaml_text(R"(
start_at: a
states:
  a:
    type: pass
    next: b
  b:
    type: pass
    next: a
)");
  bool succeeded = true;
  std::string error;
  runner.start(def, util::YamlNode::map(),
               [&](const RunRecord& r, const util::YamlNode&) {
                 succeeded = r.succeeded;
                 error = r.error;
               });
  engine.run();
  EXPECT_FALSE(succeeded);
  EXPECT_NE(error.find("max_transitions"), std::string::npos);
}

TEST(Runner, MultipleConcurrentRuns) {
  RunnerFixture fx;
  fx.runner.register_action("echo",
                            [](const util::YamlNode& p, const util::YamlNode&,
                               ActionHandle h) { h.succeed(p["value"]); });
  int finished = 0;
  const auto def = FlowDefinition::from_yaml_text(kSimpleFlow);
  for (int i = 0; i < 20; ++i)
    fx.runner.start(def, util::YamlNode::map(),
                    [&](const RunRecord& r, const util::YamlNode&) {
                      EXPECT_TRUE(r.succeeded);
                      ++finished;
                    });
  EXPECT_EQ(fx.runner.active_runs(), 20u);
  fx.engine.run();
  EXPECT_EQ(finished, 20);
  EXPECT_EQ(fx.runner.active_runs(), 0u);
}

TEST(Runner, ProvenanceRecordsStates) {
  RunnerFixture fx;
  fx.runner.register_action("echo",
                            [](const util::YamlNode& p, const util::YamlNode&,
                               ActionHandle h) { h.succeed(p["value"]); });
  fx.runner.start(FlowDefinition::from_yaml_text(kSimpleFlow));
  fx.engine.run();
  ASSERT_EQ(fx.provenance.size(), 1u);
  const auto& run = fx.provenance.run(0);
  ASSERT_EQ(run.states.size(), 2u);
  EXPECT_EQ(run.states[0].state, "work");
  EXPECT_EQ(run.states[0].kind, "action");
  EXPECT_EQ(run.states[1].kind, "succeed");
  EXPECT_TRUE(run.succeeded);
  EXPECT_FALSE(fx.provenance.dump().empty());
  EXPECT_EQ(fx.provenance.runs_of("simple").size(), 1u);
  EXPECT_TRUE(fx.provenance.runs_of("other").empty());
}

TEST(Schema, FieldValidation) {
  const auto doc = util::parse_yaml(
      "path: tiles/x.ncl\nlabels: [1, 2]\nmeta: {a: 1}\n");
  std::vector<FieldSpec> ok{{"path", util::YamlNode::Kind::kScalar, true},
                            {"labels", util::YamlNode::Kind::kList, true},
                            {"meta.a", util::YamlNode::Kind::kScalar, true},
                            {"optional", util::YamlNode::Kind::kMap, false}};
  EXPECT_FALSE(validate_fields(doc, ok).has_value());

  std::vector<FieldSpec> missing{{"nope", util::YamlNode::Kind::kScalar, true}};
  const auto err1 = validate_fields(doc, missing);
  ASSERT_TRUE(err1.has_value());
  EXPECT_NE(err1->find("missing"), std::string::npos);

  std::vector<FieldSpec> wrong_kind{{"labels", util::YamlNode::Kind::kMap, true}};
  const auto err2 = validate_fields(doc, wrong_kind);
  ASSERT_TRUE(err2.has_value());
  EXPECT_NE(err2->find("expected map"), std::string::npos);
}

TEST(Schema, RunnerEnforcesInputSchema) {
  RunnerFixture fx;
  ActionSchema schema;
  schema.inputs = {{"value", util::YamlNode::Kind::kScalar, true},
                   {"count", util::YamlNode::Kind::kScalar, true}};
  fx.runner.register_action(
      "echo",
      [](const util::YamlNode& p, const util::YamlNode&, ActionHandle h) {
        h.succeed(p["value"]);
      },
      schema);
  ASSERT_NE(fx.runner.schema("echo"), nullptr);
  // kSimpleFlow passes only `value`; the missing `count` must fail the run
  // before the action executes.
  bool succeeded = true;
  std::string error;
  fx.runner.start(FlowDefinition::from_yaml_text(kSimpleFlow),
                  util::YamlNode::map(),
                  [&](const RunRecord& r, const util::YamlNode&) {
                    succeeded = r.succeeded;
                    error = r.error;
                  });
  fx.engine.run();
  EXPECT_FALSE(succeeded);
  EXPECT_NE(error.find("input schema"), std::string::npos);
}

TEST(Schema, RunnerEnforcesOutputSchema) {
  RunnerFixture fx;
  ActionSchema schema;
  schema.outputs = {{"labels", util::YamlNode::Kind::kList, true}};
  fx.runner.register_action(
      "echo",
      [](const util::YamlNode&, const util::YamlNode&, ActionHandle h) {
        auto result = util::YamlNode::map();
        result.set("labels", util::YamlNode::scalar("oops-not-a-list"));
        h.succeed(std::move(result));
      },
      schema);
  bool succeeded = true;
  std::string error;
  fx.runner.start(FlowDefinition::from_yaml_text(kSimpleFlow),
                  util::YamlNode::map(),
                  [&](const RunRecord& r, const util::YamlNode&) {
                    succeeded = r.succeeded;
                    error = r.error;
                  });
  fx.engine.run();
  EXPECT_FALSE(succeeded);
  EXPECT_NE(error.find("output schema"), std::string::npos);
}

TEST(Schema, ValidActionPassesBothSchemas) {
  RunnerFixture fx;
  ActionSchema schema;
  schema.inputs = {{"value", util::YamlNode::Kind::kScalar, true}};
  schema.outputs = {{"doubled", util::YamlNode::Kind::kScalar, true}};
  fx.runner.register_action(
      "echo",
      [](const util::YamlNode& p, const util::YamlNode&, ActionHandle h) {
        auto result = util::YamlNode::map();
        result.set("doubled", util::YamlNode::scalar(std::to_string(
                                  p["value"].as_int() * 2)));
        h.succeed(std::move(result));
      },
      schema);
  util::YamlNode context;
  bool succeeded = false;
  fx.runner.start(FlowDefinition::from_yaml_text(kSimpleFlow),
                  util::YamlNode::map(),
                  [&](const RunRecord& r, const util::YamlNode& ctx) {
                    succeeded = r.succeeded;
                    context = ctx;
                  });
  fx.engine.run();
  ASSERT_TRUE(succeeded);
  EXPECT_EQ(context.path("result.doubled").as_int(), 84);
}

TEST(ContextSet, CreatesNestedMaps) {
  auto root = util::YamlNode::map();
  context_set(root, "a.b.c", util::YamlNode::scalar("1"));
  context_set(root, "a.d", util::YamlNode::scalar("2"));
  EXPECT_EQ(root.path("a.b.c").as_int(), 1);
  EXPECT_EQ(root.path("a.d").as_int(), 2);
}

TEST(EventBus, DeliversAsynchronously) {
  sim::SimEngine engine;
  EventBus bus(engine);
  std::vector<std::string> seen;
  bus.subscribe("topic", [&](const util::YamlNode& event) {
    seen.push_back(event["msg"].as_string());
  });
  auto event = util::YamlNode::map();
  event.set("msg", util::YamlNode::scalar("hello"));
  bus.publish("topic", std::move(event));
  EXPECT_TRUE(seen.empty());  // not delivered synchronously
  engine.run();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "hello");
}

TEST(EventBus, UnsubscribeStopsDelivery) {
  sim::SimEngine engine;
  EventBus bus(engine);
  int count = 0;
  const auto sub = bus.subscribe("t", [&](const util::YamlNode&) { ++count; });
  bus.publish("t", util::YamlNode::map());
  engine.run();
  bus.unsubscribe(sub);
  bus.publish("t", util::YamlNode::map());
  engine.run();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(bus.subscriber_count("t"), 0u);
  EXPECT_EQ(bus.published_count(), 2u);
}

TEST(Monitor, DetectsNewAndModifiedFiles) {
  sim::SimEngine engine;
  storage::MemFs fs("defiant", &engine);
  std::vector<std::string> triggered;
  FsMonitor monitor(engine, fs, FsMonitorConfig{"tiles/*.ncl", 1.0},
                    [&](const std::vector<storage::FileInfo>& files) {
                      for (const auto& f : files) triggered.push_back(f.path);
                    });
  monitor.start();
  engine.schedule_at(0.5, [&] { fs.write_text("tiles/a.ncl", "1"); });
  engine.schedule_at(2.5, [&] { fs.write_text("tiles/b.ncl", "2"); });
  engine.schedule_at(4.5, [&] { fs.write_text("tiles/a.ncl", "modified"); });
  engine.schedule_at(6.0, [&] { monitor.stop(); });
  engine.run();
  EXPECT_EQ(triggered,
            (std::vector<std::string>{"tiles/a.ncl", "tiles/b.ncl",
                                      "tiles/a.ncl"}));
  EXPECT_FALSE(monitor.running());
  EXPECT_EQ(monitor.batches_triggered(), 3u);
}

TEST(Monitor, IgnoresNonMatchingPaths) {
  sim::SimEngine engine;
  storage::MemFs fs("defiant", &engine);
  int batches = 0;
  FsMonitor monitor(engine, fs, FsMonitorConfig{"tiles/*.ncl", 1.0},
                    [&](const auto&) { ++batches; });
  monitor.start();
  engine.schedule_at(0.5, [&] { fs.write_text("staging/x.hdf", "1"); });
  engine.schedule_at(2.0, [&] { monitor.stop(); });
  engine.run();
  EXPECT_EQ(batches, 0);
}

TEST(Monitor, StopDrainsLastBatch) {
  sim::SimEngine engine;
  storage::MemFs fs("defiant", &engine);
  int files_seen = 0;
  FsMonitor monitor(engine, fs, FsMonitorConfig{"*.ncl", 5.0},
                    [&](const auto& files) { files_seen += files.size(); });
  monitor.start();
  // File lands just before stop; the drain poll must pick it up.
  engine.schedule_at(6.0, [&] {
    fs.write_text("late.ncl", "x");
    monitor.stop();
  });
  engine.run();
  EXPECT_EQ(files_seen, 1);
}

TEST(Monitor, RejectsBadConfig) {
  sim::SimEngine engine;
  storage::MemFs fs("x");
  EXPECT_THROW(FsMonitor(engine, fs, FsMonitorConfig{"", 1.0}, [](const auto&) {}),
               std::invalid_argument);
  EXPECT_THROW(FsMonitor(engine, fs, FsMonitorConfig{"*", 0.0}, [](const auto&) {}),
               std::invalid_argument);
  EXPECT_THROW(FsMonitor(engine, fs, FsMonitorConfig{"*", 1.0}, nullptr),
               std::invalid_argument);
}

TEST(EventBus, SelfUnsubscribeDuringDispatchIsSafe) {
  sim::SimEngine engine;
  EventBus bus(engine);
  int count = 0;
  Subscription sub;
  sub = bus.subscribe("t", [&](const util::YamlNode&) {
    ++count;
    bus.unsubscribe(sub);  // from inside the handler, mid-dispatch
  });
  bus.publish("t", util::YamlNode::map());
  bus.publish("t", util::YamlNode::map());
  engine.run();
  EXPECT_EQ(count, 1);  // the second pending delivery is suppressed
  EXPECT_EQ(bus.subscriber_count("t"), 0u);
}

TEST(EventBus, HandlerUnsubscribingPeerSuppressesPendingDelivery) {
  sim::SimEngine engine;
  EventBus bus(engine);
  int first = 0;
  int second = 0;
  Subscription peer;
  bus.subscribe("t", [&](const util::YamlNode&) {
    ++first;
    bus.unsubscribe(peer);  // removes the next subscriber in this dispatch
  });
  peer = bus.subscribe("t", [&](const util::YamlNode&) { ++second; });
  bus.publish("t", util::YamlNode::map());
  engine.run();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 0);
}

TEST(EventBus, LateSubscriberDoesNotSeeEarlierPublish) {
  sim::SimEngine engine;
  EventBus bus(engine);
  int early = 0;
  int late = 0;
  bus.subscribe("t", [&](const util::YamlNode&) {
    ++early;
    if (early == 1)
      bus.subscribe("t", [&](const util::YamlNode&) { ++late; });
  });
  bus.publish("t", util::YamlNode::map());
  engine.run();
  EXPECT_EQ(early, 1);
  EXPECT_EQ(late, 0);  // subscribed after publish: event not replayed
  bus.publish("t", util::YamlNode::map());
  engine.run();
  EXPECT_EQ(early, 2);
  EXPECT_EQ(late, 1);
}

TEST(Monitor, OverwriteWithNewMtimeRetriggersSamePath) {
  sim::SimEngine engine;
  storage::MemFs fs("defiant", &engine);
  int batches = 0;
  FsMonitor monitor(engine, fs, FsMonitorConfig{"tiles/*.ncl", 1.0},
                    [&](const auto&) { ++batches; });
  monitor.start();
  engine.schedule_at(0.5, [&] { fs.write_text("tiles/a.ncl", "v"); });
  // Identical content, later mtime: path+mtime bookkeeping must re-trigger.
  engine.schedule_at(2.5, [&] { fs.write_text("tiles/a.ncl", "v"); });
  engine.schedule_at(5.0, [&] { monitor.stop(); });
  engine.run();
  EXPECT_EQ(batches, 2);
  // Polls between the writes saw an unchanged mtime and stayed quiet.
  EXPECT_EQ(monitor.files_seen(), 1u);
}

TEST(Monitor, StickyDrainKeepsPollingUntilQuiet) {
  sim::SimEngine engine;
  storage::MemFs fs("defiant", &engine);
  int files_seen = 0;
  FsMonitorConfig config{"*.ncl", 1.0};
  config.sticky = true;
  FsMonitor monitor(engine, fs, config,
                    [&](const auto& files) { files_seen += files.size(); });
  monitor.start();
  engine.schedule_at(1.5, [&] {
    fs.write_text("a.ncl", "x");
    monitor.stop();
  });
  // Lands after the drain poll delivered a.ncl; sticky keeps polling because
  // that drain batch was non-empty, so b.ncl is still picked up.
  engine.schedule_at(2.0, [&] { fs.write_text("b.ncl", "x"); });
  engine.run();
  EXPECT_EQ(files_seen, 2);
  EXPECT_FALSE(monitor.running());
}

TEST(Monitor, NonStickyStopsAfterSingleDrainPoll) {
  sim::SimEngine engine;
  storage::MemFs fs("defiant", &engine);
  int files_seen = 0;
  FsMonitorConfig config{"*.ncl", 1.0};
  config.sticky = false;
  FsMonitor monitor(engine, fs, config,
                    [&](const auto& files) { files_seen += files.size(); });
  monitor.start();
  engine.schedule_at(1.5, [&] {
    fs.write_text("a.ncl", "x");
    monitor.stop();
  });
  engine.schedule_at(2.0, [&] { fs.write_text("b.ncl", "x"); });
  engine.run();
  // The drain poll delivers a.ncl but is the last poll: b.ncl is dropped.
  EXPECT_EQ(files_seen, 1);
  EXPECT_FALSE(monitor.running());
}

// -- dataflow events + granule tracker ---------------------------------------

FileEvent make_file_event(modis::ProductKind product, int slot,
                          double at = 1.0) {
  FileEvent event;
  event.id =
      modis::GranuleId{product, modis::Satellite::kTerra, 2022, 1, slot};
  event.path = "staging/" + event.id.filename();
  event.bytes = 1000;
  event.finished_at = at;
  return event;
}

TEST(DataflowEvents, FileEventRoundTripsThroughYaml) {
  const auto event = make_file_event(modis::ProductKind::kMod06, 95, 12.25);
  const auto parsed = FileEvent::from_yaml(event.to_yaml());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->id, event.id);
  EXPECT_EQ(parsed->path, event.path);
  EXPECT_EQ(parsed->bytes, event.bytes);
  EXPECT_NEAR(parsed->finished_at, event.finished_at, 1e-6);
  // Payloads without a parseable granule filename are rejected, not thrown.
  EXPECT_FALSE(FileEvent::from_yaml(util::YamlNode::map()).has_value());
}

TEST(DataflowEvents, ReadyGranuleRoundTripsThroughYaml) {
  ReadyGranule ready;
  ready.key = GranuleKey{modis::Satellite::kAqua, 2022, 123, 40};
  ready.mod02_path = "staging/a";
  ready.mod03_path = "staging/b";
  ready.mod06_path = "staging/c";
  ready.first_file_at = 1.5;
  ready.ready_at = 9.75;
  const auto parsed = ReadyGranule::from_yaml(ready.to_yaml());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->key, ready.key);
  EXPECT_EQ(parsed->mod02_path, "staging/a");
  EXPECT_EQ(parsed->mod06_path, "staging/c");
  EXPECT_NEAR(parsed->ready_at, 9.75, 1e-6);
  EXPECT_EQ(ready.key.to_string(), "aqua.A2022123.s0040");
}

TEST(GranuleTracker, EmitsReadyOnceTripletIsWhole) {
  sim::SimEngine engine;
  EventBus bus(engine);
  GranuleTracker tracker(bus);
  std::vector<ReadyGranule> ready;
  tracker.on_ready([&](const ReadyGranule& g) { ready.push_back(g); });
  tracker.observe_file(make_file_event(modis::ProductKind::kMod02, 5, 1.0));
  tracker.observe_file(make_file_event(modis::ProductKind::kMod06, 5, 2.0));
  engine.run();
  EXPECT_TRUE(ready.empty());
  EXPECT_EQ(tracker.pending(), 1u);
  tracker.observe_file(make_file_event(modis::ProductKind::kMod03, 5, 3.0));
  engine.run();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].key.slot, 5);
  EXPECT_DOUBLE_EQ(ready[0].first_file_at, 1.0);
  EXPECT_DOUBLE_EQ(ready[0].ready_at, 3.0);
  EXPECT_FALSE(ready[0].mod03_path.empty());
  EXPECT_EQ(tracker.pending(), 0u);
  EXPECT_EQ(tracker.ready_count(), 1u);
}

TEST(GranuleTracker, AssemblesFromBusEventsAndPublishesObservableYaml) {
  sim::SimEngine engine;
  EventBus bus(engine);
  GranuleTracker tracker(bus);
  std::vector<util::YamlNode> raw;
  bus.subscribe(topics::kGranuleReady,
                [&](const util::YamlNode& node) { raw.push_back(node); });
  for (const auto product :
       {modis::ProductKind::kMod02, modis::ProductKind::kMod03,
        modis::ProductKind::kMod06})
    bus.publish(topics::kDownloadFile,
                make_file_event(product, 7, 4.0).to_yaml());
  engine.run();
  EXPECT_EQ(tracker.files_seen(), 3u);
  ASSERT_EQ(raw.size(), 1u);
  // Any subscriber can decode the wire payload without the tracker.
  const auto parsed = ReadyGranule::from_yaml(raw[0]);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->key.slot, 7);
  EXPECT_DOUBLE_EQ(parsed->ready_at, 4.0);
}

TEST(GranuleTracker, DuplicateFilesAreIdempotent) {
  sim::SimEngine engine;
  EventBus bus(engine);
  GranuleTracker tracker(bus);
  std::size_t ready = 0;
  tracker.on_ready([&](const ReadyGranule&) { ++ready; });
  tracker.observe_file(make_file_event(modis::ProductKind::kMod02, 9, 1.0));
  tracker.observe_file(make_file_event(modis::ProductKind::kMod02, 9, 1.5));
  tracker.observe_file(make_file_event(modis::ProductKind::kMod03, 9, 2.0));
  tracker.observe_file(make_file_event(modis::ProductKind::kMod06, 9, 3.0));
  // A retried overwrite arriving after the triplet completed must not
  // resurrect the granule.
  tracker.observe_file(make_file_event(modis::ProductKind::kMod03, 9, 4.0));
  engine.run();
  EXPECT_EQ(ready, 1u);
  EXPECT_EQ(tracker.pending(), 0u);
}

TEST(GranuleTracker, TracksInterleavedGranulesIndependently) {
  sim::SimEngine engine;
  EventBus bus(engine);
  GranuleTracker tracker(bus);
  std::vector<int> ready_slots;
  tracker.on_ready(
      [&](const ReadyGranule& g) { ready_slots.push_back(g.key.slot); });
  tracker.observe_file(make_file_event(modis::ProductKind::kMod02, 1, 1.0));
  tracker.observe_file(make_file_event(modis::ProductKind::kMod02, 2, 1.1));
  tracker.observe_file(make_file_event(modis::ProductKind::kMod03, 2, 1.2));
  tracker.observe_file(make_file_event(modis::ProductKind::kMod06, 2, 1.3));
  tracker.observe_file(make_file_event(modis::ProductKind::kMod03, 1, 1.4));
  EXPECT_EQ(tracker.pending(), 1u);
  ASSERT_EQ(tracker.pending_keys().size(), 1u);
  EXPECT_EQ(tracker.pending_keys()[0].slot, 1);
  tracker.observe_file(make_file_event(modis::ProductKind::kMod06, 1, 1.5));
  engine.run();
  EXPECT_EQ(ready_slots, (std::vector<int>{2, 1}));
}

TEST(GranuleTracker, CustomRequiredProductsIgnoreOthers) {
  sim::SimEngine engine;
  EventBus bus(engine);
  GranuleTrackerConfig config;
  config.required = {modis::ProductKind::kMod02};
  GranuleTracker tracker(bus, config);
  std::size_t ready = 0;
  tracker.on_ready([&](const ReadyGranule&) { ++ready; });
  tracker.observe_file(make_file_event(modis::ProductKind::kMod03, 3, 1.0));
  EXPECT_EQ(tracker.pending(), 0u);  // not a required product
  tracker.observe_file(make_file_event(modis::ProductKind::kMod02, 3, 2.0));
  engine.run();
  EXPECT_EQ(ready, 1u);
}

namespace {
RunRecord make_run(std::uint64_t id, bool ok) {
  RunRecord run;
  run.run_id = id;
  run.flow_name = "aicca-inference";
  run.started_at = 1.0;
  run.finished_at = 4.0;
  run.succeeded = ok;
  if (!ok) run.error = "action 'infer' failed";
  // Action state with 0.05 s orchestration overhead, then a pass state.
  run.states.push_back(
      {"infer", "action", 1.0, 1.05, 2.0, ok ? "ok" : "failed"});
  run.states.push_back({"move", "pass", 2.0, 0.0, 4.0, "ok"});
  return run;
}
}  // namespace

TEST(Provenance, DumpRendersRunsAndStates) {
  ProvenanceLog log;
  log.record(make_run(7, true));
  log.record(make_run(8, false));
  const auto text = log.dump();
  EXPECT_NE(text.find("run: 7"), std::string::npos);
  EXPECT_NE(text.find("run: 8"), std::string::npos);
  EXPECT_NE(text.find("flow: aicca-inference"), std::string::npos);
  EXPECT_NE(text.find("status: ok"), std::string::npos);
  EXPECT_NE(text.find("status: failed"), std::string::npos);
  EXPECT_NE(text.find("error: action 'infer' failed"), std::string::npos);
  EXPECT_NE(text.find("{name: infer, kind: action"), std::string::npos);
  EXPECT_NE(text.find("{name: move, kind: pass"), std::string::npos);
}

TEST(Provenance, MeanActionOverheadAveragesActionStatesOnly) {
  ProvenanceLog log;
  EXPECT_DOUBLE_EQ(log.mean_action_overhead(), 0.0);
  log.record(make_run(1, true));
  auto second = make_run(2, true);
  second.states[0].action_started_at = 1.15;  // 0.15 s overhead
  log.record(second);
  // Two action states (0.05 and 0.15); the pass states must not dilute.
  EXPECT_NEAR(log.mean_action_overhead(), 0.10, 1e-12);
}

TEST(Provenance, ExportToTraceProducesFlowSpans) {
  ProvenanceLog log;
  log.record(make_run(7, true));

  obs::TraceRecorder disabled;
  export_to_trace(log, disabled);
  EXPECT_EQ(disabled.span_count(), 0u);

  obs::TraceRecorder rec;
  rec.set_enabled(true);
  export_to_trace(log, rec);
  const auto spans = rec.spans();
  ASSERT_EQ(spans.size(), 3u);  // run + 2 states
  EXPECT_EQ(spans[0].category, "flow");
  EXPECT_EQ(spans[0].name, "aicca-inference");
  EXPECT_DOUBLE_EQ(spans[0].start, 1.0);
  EXPECT_DOUBLE_EQ(spans[0].end, 4.0);
  EXPECT_EQ(spans[1].category, "flow.state");
  EXPECT_EQ(spans[1].name, "infer");
  // State spans share the run's track and nest inside the run span.
  EXPECT_EQ(spans[1].track, spans[0].track);
  EXPECT_GE(spans[1].start, spans[0].start);
  EXPECT_LE(spans[1].end, spans[0].end);
  const auto tracks = rec.tracks();
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_EQ(tracks[0].name, "flows/run7");
  // The action state carries its orchestration overhead as an arg.
  bool overhead_seen = false;
  for (const auto& [key, value] : spans[1].args)
    if (key == "orchestration_overhead_s") overhead_seen = true;
  EXPECT_TRUE(overhead_seen);
}

}  // namespace
}  // namespace mfw::flow
