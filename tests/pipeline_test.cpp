// Tests for pipeline configuration parsing and the timeline recorder.
#include <gtest/gtest.h>

#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "obs/watch.hpp"
#include "pipeline/config.hpp"
#include "pipeline/eoml_workflow.hpp"
#include "pipeline/spec_compile.hpp"
#include "pipeline/timeline.hpp"

namespace mfw::pipeline {
namespace {

TEST(Config, UnknownTopLevelKeyNamesKeyAndNearest) {
  // A misspelled section must be rejected up front, naming both the stray
  // key and the closest valid section, so typos don't silently fall back
  // to defaults.
  try {
    EomlConfig::from_yaml_text("workflw:\n  max_files: 4\n");
    FAIL() << "expected YamlError";
  } catch (const util::YamlError& e) {
    EXPECT_STREQ(e.what(),
                 "config: unknown top-level key 'workflw' "
                 "(did you mean 'workflow'?)");
  }
  try {
    EomlConfig::from_yaml_text("inferrence:\n  workers: 2\n");
    FAIL() << "expected YamlError";
  } catch (const util::YamlError& e) {
    EXPECT_STREQ(e.what(),
                 "config: unknown top-level key 'inferrence' "
                 "(did you mean 'inference'?)");
  }
}

TEST(SpecCompile, BuiltinSpecMirrorsConfig) {
  // The paper pipeline is itself a compiled spec: five stages in pipeline
  // order, with the download->preprocess coupling following the config's
  // scheduling mode and the rest fixed by the paper's architecture.
  EomlConfig config;
  const auto graph = compile_config(config);
  const auto& topo = graph.topo_order();
  ASSERT_EQ(topo.size(), 5u);
  EXPECT_EQ(topo.front(), "download");
  EXPECT_EQ(topo.back(), "shipment");
  EXPECT_EQ(graph.edge_mode("download", "preprocess"),
            spec::EdgeMode::kBarrier);
  EXPECT_EQ(graph.edge_mode("preprocess", "monitor"),
            spec::EdgeMode::kStreaming);
  config.max_files = 12;
  EXPECT_EQ(compile_config(config).spec().campaign.items, 12);

  config.scheduling = SchedulingMode::kStreaming;
  EXPECT_EQ(compile_config(config).edge_mode("download", "preprocess"),
            spec::EdgeMode::kStreaming);
}

TEST(SpecCompile, ClaimsRespectFacilityCaps) {
  // compile_config validates the paper claims against the config's own
  // facility, so an oversubscribed config fails at compile, not mid-run.
  EomlConfig config;
  config.preprocess_nodes = config.facility_total_nodes + 1;
  EXPECT_THROW(compile_config(config), spec::SpecError);
}

TEST(Config, DefaultsAreValid) {
  EomlConfig config;
  EXPECT_NO_THROW(config.validate());
  EXPECT_EQ(config.download_workers, 3);
  EXPECT_EQ(config.products.size(), 3u);
}

TEST(Config, ParsesFullYaml) {
  const auto config = EomlConfig::from_yaml_text(R"(
workflow:
  satellite: Terra
  products: [MOD02, MOD03, MOD06]
  span:
    year: 2022
    first_day: 1
    last_day: 2
  max_files: 80
  daytime_only: true
  seed: 99
download:
  workers: 6
  wan_capacity: 200MB
  connection_speed: 10MB
preprocess:
  nodes: 10
  workers_per_node: 8
  tile_size: 128
  channels: 6
  min_cloud_fraction: 0.3
  slurm_latency: 2.0
monitor:
  poll_interval: 0.5
  action_overhead: 0.05
inference:
  workers: 1
shipment:
  streams: 8
  link_capacity: 2GB
content:
  materialize: false
)");
  EXPECT_EQ(config.satellite, modis::Satellite::kTerra);
  EXPECT_EQ(config.span.last_day, 2);
  ASSERT_TRUE(config.max_files.has_value());
  EXPECT_EQ(*config.max_files, 80u);
  EXPECT_EQ(config.download_workers, 6);
  EXPECT_DOUBLE_EQ(config.wan_capacity_bps, 200.0 * 1024 * 1024);
  EXPECT_EQ(config.preprocess_nodes, 10);
  EXPECT_EQ(config.workers_per_node, 8);
  EXPECT_DOUBLE_EQ(config.slurm_latency, 2.0);
  EXPECT_DOUBLE_EQ(config.poll_interval, 0.5);
  EXPECT_EQ(config.shipment_streams, 8);
  EXPECT_EQ(config.seed, 99u);
}

TEST(Config, ElasticBlockParsing) {
  const auto config = EomlConfig::from_yaml_text(R"(
preprocess:
  elastic: true
  block:
    nodes_per_block: 2
    init_blocks: 1
    max_blocks: 5
    idle_timeout: 10
)");
  EXPECT_TRUE(config.elastic);
  EXPECT_EQ(config.block.nodes_per_block, 2);
  EXPECT_EQ(config.block.max_blocks, 5);
  EXPECT_DOUBLE_EQ(config.block.idle_timeout, 10.0);
}

TEST(Config, RejectsInvalidValues) {
  EomlConfig config;
  config.download_workers = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = EomlConfig{};
  config.span.last_day = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = EomlConfig{};
  config.products.clear();
  EXPECT_THROW(config.validate(), std::invalid_argument);
  EXPECT_THROW(EomlConfig::from_yaml_text("workflow:\n  satellite: Hubble\n"),
               util::YamlError);
  EXPECT_THROW(EomlConfig::from_yaml_text("workflow:\n  products: [SENTINEL]\n"),
               util::YamlError);
}

TEST(Config, SchedulingModeParsing) {
  // Barrier is the paper-faithful reproduction default.
  EXPECT_EQ(EomlConfig{}.scheduling, SchedulingMode::kBarrier);
  auto config =
      EomlConfig::from_yaml_text("workflow:\n  scheduling: streaming\n");
  EXPECT_EQ(config.scheduling, SchedulingMode::kStreaming);
  config = EomlConfig::from_yaml_text("workflow:\n  scheduling: barrier\n");
  EXPECT_EQ(config.scheduling, SchedulingMode::kBarrier);
  EXPECT_THROW(EomlConfig::from_yaml_text("workflow:\n  scheduling: eager\n"),
               util::YamlError);
  EXPECT_STREQ(to_string(SchedulingMode::kBarrier), "barrier");
  EXPECT_STREQ(to_string(SchedulingMode::kStreaming), "streaming");
}

TEST(Config, StreamingRequiresWholeTripletProducts) {
  EomlConfig config;
  config.scheduling = SchedulingMode::kStreaming;
  EXPECT_NO_THROW(config.validate());
  // granule.ready is defined over whole MOD02/03/06 triplets; a stream
  // missing a product would never trigger.
  config.products = {modis::ProductKind::kMod02, modis::ProductKind::kMod03};
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.scheduling = SchedulingMode::kBarrier;
  EXPECT_NO_THROW(config.validate());
}

TEST(Config, MaterializeGeometryValidation) {
  EomlConfig config;
  config.materialize = true;
  config.geometry = modis::GranuleGeometry{64, 64, 6};
  config.tiler.tile_size = 128;  // larger than the content grid
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.tiler.tile_size = 32;
  EXPECT_NO_THROW(config.validate());
}

TEST(Timeline, StepFunctionSemantics) {
  StageTimeline stage;
  stage.stage = "download";
  stage.transitions = {{0.0, 1}, {2.0, 3}, {5.0, 0}};
  EXPECT_EQ(stage.at(-1.0), 0);
  EXPECT_EQ(stage.at(0.0), 1);
  EXPECT_EQ(stage.at(1.9), 1);
  EXPECT_EQ(stage.at(2.0), 3);
  EXPECT_EQ(stage.at(10.0), 0);
  EXPECT_EQ(stage.peak(), 3);
}

TEST(Timeline, RenderWindowZoomsIn) {
  TimelineRecorder recorder;
  recorder.add_stage("download", {{0.0, 3}, {100.0, 0}});
  recorder.add_stage("preprocess", {{100.0, 32}, {130.0, 0}});
  // Full render spans 0..130; the window render spans 95..130 only.
  const auto zoomed = recorder.render_window(95.0, 130.0, 40, 50, 8);
  EXPECT_NE(zoomed.find("95"), std::string::npos);
  EXPECT_NE(zoomed.find("130"), std::string::npos);
  // Degenerate window does not crash.
  EXPECT_FALSE(recorder.render_window(5.0, 5.0, 10, 20, 4).empty());
}

TEST(Timeline, RecorderCsvAndRender) {
  TimelineRecorder recorder;
  recorder.add_stage("download", {{0.0, 3}, {10.0, 0}});
  recorder.add_stage("preprocess", {{10.0, 32}, {40.0, 0}});
  recorder.add_stage("inference", {{12.0, 1}, {42.0, 0}});
  EXPECT_DOUBLE_EQ(recorder.end_time(), 42.0);
  EXPECT_EQ(recorder.stage("preprocess").peak(), 32);
  EXPECT_THROW(recorder.stage("nope"), std::invalid_argument);

  const auto csv = recorder.to_csv(10);
  EXPECT_NE(csv.find("time_s,download,preprocess,inference"), std::string::npos);
  const auto plot = recorder.render(50, 60, 10);
  EXPECT_NE(plot.find("active workers"), std::string::npos);
  EXPECT_NE(plot.find("download"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Config-declared SLOs and the live health layer (DESIGN.md §12)

TEST(ConfigSlo, ParsesAndFlowsIntoTheCompiledPlan) {
  const auto config = EomlConfig::from_yaml_text(
      "workflow:\n"
      "  max_files: 4\n"
      "slo:\n"
      "  - name: pp-queue\n"
      "    stage: preprocess\n"
      "    metric: queue_wait_p99\n"
      "    threshold: 5\n"
      "    window: 30\n");
  ASSERT_EQ(config.slos.size(), 1u);
  EXPECT_EQ(config.slos[0].name, "pp-queue");
  EXPECT_EQ(config.slos[0].stage, "preprocess");
  EXPECT_DOUBLE_EQ(config.slos[0].threshold, 5.0);

  const auto graph = compile_config(config);
  const auto rules = spec::health_rules(graph.spec());
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].name, "pp-queue");
  EXPECT_EQ(rules[0].metric, obs::SloMetric::kQueueWaitP99);
  EXPECT_DOUBLE_EQ(rules[0].window_s, 30.0);
  EXPECT_NE(graph.describe().find("slo:"), std::string::npos);
}

TEST(ConfigSlo, RejectsUnknownStageAndStrayKeys) {
  // The stage reference is validated against the compiled paper DAG with
  // the config's own line anchors.
  auto config = EomlConfig::from_yaml_text(
      "slo:\n"
      "  - name: bad\n"
      "    stage: nope\n"
      "    metric: p99_latency\n"
      "    threshold: 1\n");
  EXPECT_THROW(compile_config(config), spec::SpecError);

  EXPECT_THROW(EomlConfig::from_yaml_text("slo:\n"
                                          "  - name: bad\n"
                                          "    bogus: 1\n"
                                          "    threshold: 1\n"),
               spec::SpecError);
}

TEST(WorkflowHealth, WatchedRunFiresSloAlertAndDoesNotPerturbTheRun) {
  EomlConfig config;
  config.max_files = 6;
  config.preprocess_nodes = 1;
  config.workers_per_node = 1;  // force queueing in preprocess
  {
    spec::SloSpec rule;
    rule.name = "pp-queue";
    rule.stage = "preprocess";
    rule.metric = "queue_wait_p99";
    rule.threshold = 0.5;
    rule.window_s = 60.0;
    config.slos.push_back(rule);
  }

  // Reference run: no recorder, no bus, no monitor.
  double plain_makespan = 0.0;
  std::size_t plain_tiles = 0;
  {
    EomlWorkflow workflow(config);
    const auto report = workflow.run();
    plain_makespan = report.makespan;
    plain_tiles = report.total_tiles;
  }

  // Watched run: full health chain attached.
  auto& rec = obs::TraceRecorder::instance();
  obs::set_globally_enabled(true);
  obs::TelemetryBus bus;
  EomlWorkflow workflow(config);
  obs::HealthMonitor monitor({}, spec::health_rules(workflow.plan().spec()));
  monitor.attach(bus);
  workflow.attach_health(monitor, 30.0);
  rec.set_span_sink(&bus);
  const auto report = workflow.run();
  monitor.finish(workflow.engine().now());
  rec.set_span_sink(nullptr);
  obs::set_globally_enabled(false);
  rec.clear();

  // Zero-perturbation: the watched run's numbers are bit-for-bit identical.
  EXPECT_EQ(report.makespan, plain_makespan);
  EXPECT_EQ(report.total_tiles, plain_tiles);

  // One worker serializes six granules, so queue waits blow the 0.5 s
  // budget: the rule fires and stays firing at end of run.
  ASSERT_GE(monitor.alerts().size(), 1u);
  EXPECT_EQ(monitor.alerts()[0].rule, "pp-queue");
  EXPECT_EQ(monitor.alerts()[0].state, "firing");
  EXPECT_EQ(monitor.alerts()[0].cause, "queue-wait");
  EXPECT_GT(monitor.events_seen(), 0u);
  EXPECT_EQ(monitor.dropped_events(), 0u);
}

}  // namespace
}  // namespace mfw::pipeline
