// Unit tests for mfw::util: statistics, byte formatting, CRC32, strings,
// globbing, RNG determinism, blocking queue, and thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "util/ascii_plot.hpp"
#include "util/blocking_queue.hpp"
#include "util/bytes.hpp"
#include "util/crc32.hpp"
#include "util/json_writer.hpp"
#include "util/log.hpp"
#include "util/lru.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/zipf.hpp"

namespace mfw::util {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(StreamingStats, MatchesClosedForm) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, SingleSampleHasZeroVariance) {
  StreamingStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
}

TEST(Percentile, RejectsOutOfRange) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(percentile(xs, -1), std::invalid_argument);
  EXPECT_THROW(percentile(xs, 101), std::invalid_argument);
  // Out-of-range p is rejected even when the sample is empty.
  EXPECT_THROW(percentile({}, -1), std::invalid_argument);
  EXPECT_THROW(percentile({}, 101), std::invalid_argument);
}

TEST(Percentile, EmptySampleIsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 0), 0.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile({}, 100), 0.0);
}

TEST(Percentile, SingleSampleIsThatSample) {
  const std::vector<double> xs{42.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 42.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 95), 42.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 42.0);
}

TEST(Percentile, TwoSamplesInterpolateBetween) {
  const std::vector<double> xs{10.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 15.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 20.0);
}

TEST(Histogram, BinsAndClamps) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);  // clamps into first bin
  h.add(0.5);
  h.add(9.99);
  h.add(100.0);  // clamps into last bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Bytes, ParsesUnits) {
  EXPECT_EQ(parse_bytes("512"), 512u);
  EXPECT_EQ(parse_bytes("1KB"), 1024u);
  EXPECT_EQ(parse_bytes("32GB"), 32ull * kGiB);
  EXPECT_EQ(parse_bytes("8.4 GB"),
            static_cast<std::uint64_t>(
                std::llround(8.4 * static_cast<double>(kGiB))));
  EXPECT_EQ(parse_bytes("1.5TiB"),
            static_cast<std::uint64_t>(
                std::llround(1.5 * static_cast<double>(kTiB))));
}

TEST(Bytes, RejectsGarbage) {
  EXPECT_THROW(parse_bytes("abc"), std::invalid_argument);
  EXPECT_THROW(parse_bytes("12parsecs"), std::invalid_argument);
}

TEST(Bytes, FormatsRoundTrippable) {
  EXPECT_EQ(format_bytes(32ull * kGiB), "32.0GB");
  EXPECT_EQ(format_bytes(100), "100B");
  EXPECT_EQ(format_bytes(1536), "1.50KB");
}

TEST(Bytes, FormatsSeconds) {
  EXPECT_EQ(format_seconds(44.0), "44.00s");
  EXPECT_EQ(format_seconds(0.05), "50ms");
  EXPECT_EQ(format_seconds(125.0), "2m05s");
}

TEST(Crc32, KnownVectors) {
  // Standard check value for "123456789".
  EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
  EXPECT_EQ(crc32("", 0), 0x00000000u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  Crc32 inc;
  inc.update("1234", 4);
  inc.update("56789", 5);
  EXPECT_EQ(inc.value(), crc32("123456789", 9));
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, TrimAndJoin) {
  EXPECT_EQ(trim("  x \t"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(join({"a", "b", "c"}, "/"), "a/b/c");
}

TEST(Strings, GlobMatch) {
  EXPECT_TRUE(glob_match("*.ncl", "tiles/file.ncl"));
  EXPECT_TRUE(glob_match("tiles/*.ncl", "tiles/file.ncl"));
  EXPECT_FALSE(glob_match("tiles/*.ncl", "outbox/file.ncl"));
  EXPECT_TRUE(glob_match("MOD0?1KM*", "MOD021KM.A2022001.0000.061.hdf"));
  EXPECT_TRUE(glob_match("*", ""));
  EXPECT_FALSE(glob_match("?", ""));
  EXPECT_TRUE(glob_match("a*b*c", "axxbyyc"));
  EXPECT_FALSE(glob_match("a*b*c", "axxbyy"));
}

TEST(Strings, PathHelpers) {
  EXPECT_EQ(path_join("a/", "/b"), "a/b");
  EXPECT_EQ(path_join("", "b"), "b");
  EXPECT_EQ(path_basename("a/b/c.nc"), "c.nc");
  EXPECT_EQ(path_dirname("a/b/c.nc"), "a/b");
  EXPECT_EQ(path_dirname("c.nc"), "");
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(1234), b(1234), c(99);
  EXPECT_EQ(a(), b());
  Rng a2(1234);
  (void)c();
  EXPECT_NE(a2(), c());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  StreamingStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.03);
  EXPECT_NEAR(s.stddev(), 1.0, 0.03);
}

TEST(Rng, LognormalMedianIsMedian) {
  Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 10001; ++i) xs.push_back(rng.lognormal_median(8.0, 0.3));
  EXPECT_NEAR(percentile(xs, 50), 8.0, 0.25);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.try_pop().value(), 3);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BlockingQueue, CloseDrainsThenStops) {
  BlockingQueue<int> q;
  q.push(1);
  q.close();
  EXPECT_FALSE(q.push(2));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BlockingQueue, CrossThreadDelivery) {
  BlockingQueue<int> q;
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) q.push(i);
    q.close();
  });
  int count = 0;
  while (q.pop()) ++count;
  producer.join();
  EXPECT_EQ(count, 100);
}

TEST(ThreadPool, RunsAllTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 200; ++i) pool.submit([&] { ++counter; });
    pool.shutdown();
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPool, SubmitAfterShutdownFails) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ChunkedOverloadSeesContiguousRanges) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  parallel_for(pool, 103, 10, [&](std::size_t begin, std::size_t end) {
    EXPECT_LT(begin, end);
    EXPECT_LE(end, 103u);
    EXPECT_EQ(begin % 10, 0u);  // boundaries depend only on (n, chunk)
    total += end - begin;
  });
  EXPECT_EQ(total.load(), 103u);
}

TEST(ParallelFor, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(pool, 0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, OneThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  parallel_for(pool, 57, 4, [&](std::size_t begin, std::size_t end) {
    counter += static_cast<int>(end - begin);
  });
  EXPECT_EQ(counter.load(), 57);
}

TEST(ParallelFor, WorksAfterPoolShutdown) {
  ThreadPool pool(2);
  pool.shutdown();  // submit() now fails; the caller runs every chunk itself
  std::atomic<int> counter{0};
  parallel_for(pool, 20, 3, [&](std::size_t begin, std::size_t end) {
    counter += static_cast<int>(end - begin);
  });
  EXPECT_EQ(counter.load(), 20);
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 100, 1,
                   [&](std::size_t begin, std::size_t) {
                     if (begin == 42) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, RejectsZeroChunk) {
  ThreadPool pool(1);
  EXPECT_THROW(parallel_for(pool, 5, 0, [](std::size_t, std::size_t) {}),
               std::invalid_argument);
}

TEST(Table, RendersAlignedAndCsv) {
  Table t({"a", "longer"});
  t.add_row({"1", "2"});
  const auto text = t.render();
  EXPECT_NE(text.find("longer"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "a,longer\n1,2\n");
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvQuotesSpecials) {
  Table t({"x"});
  t.add_row({"a,b\"c"});
  EXPECT_EQ(t.to_csv(), "x\n\"a,b\"\"c\"\n");
}

TEST(Bytes, FormatsRates) {
  EXPECT_EQ(format_rate(12.4 * 1024 * 1024), "12.4MB/s");
  EXPECT_EQ(format_rate(3.0), "3.00B/s");
  EXPECT_EQ(format_rate(2.0 * 1024 * 1024 * 1024), "2.00GB/s");
}

TEST(Histogram, RenderShowsBars) {
  Histogram h(0.0, 4.0, 2);
  h.add(1.0);
  h.add(1.5);
  h.add(3.0);
  const auto text = h.render(10);
  EXPECT_NE(text.find("(2)"), std::string::npos);
  EXPECT_NE(text.find("(1)"), std::string::npos);
  EXPECT_THROW(Histogram(0.0, 4.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(4.0, 4.0, 2), std::invalid_argument);
}

TEST(AsciiPlot, RendersSeriesAndLegend) {
  // Smoke: output contains axes labels, legend names, and markers.
  Series a{"alpha", {0, 1, 2}, {0, 1, 4}, 'a'};
  Series b{"beta", {0, 1, 2}, {4, 1, 0}, 'b'};
  const auto plot = ascii_plot({a, b}, 30, 8, "xs", "ys");
  EXPECT_NE(plot.find("xs"), std::string::npos);
  EXPECT_NE(plot.find("ys"), std::string::npos);
  EXPECT_NE(plot.find("alpha"), std::string::npos);
  EXPECT_NE(plot.find('a'), std::string::npos);
  EXPECT_NE(plot.find('b'), std::string::npos);
}

TEST(AsciiPlot, BarsScaleToPeak) {
  const auto bars = ascii_bars({{"long", 10.0}, {"short", 1.0}}, 20);
  // The peak bar is 20 chars; the small one about 2.
  EXPECT_NE(bars.find(std::string(20, '#')), std::string::npos);
  EXPECT_EQ(bars.find(std::string(21, '#')), std::string::npos);
}

TEST(AsciiPlot, DegenerateInputsDoNotCrash) {
  EXPECT_FALSE(ascii_plot({}, 10, 4).empty());
  Series flat{"flat", {1, 1}, {2, 2}, '*'};
  EXPECT_FALSE(ascii_plot({flat}, 10, 4).empty());
  EXPECT_TRUE(ascii_bars({}).empty());
}

TEST(Logger, SinkReceivesFormattedLine) {
  auto& logger = Logger::instance();
  std::vector<std::string> lines;
  logger.set_sink([&](LogLevel, const std::string& line) {
    lines.push_back(line);
  });
  logger.set_level(LogLevel::kInfo);
  MFW_INFO("test", "hello ", 42);
  MFW_DEBUG("test", "hidden");
  logger.set_sink(nullptr);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "[INFO] test: hello 42");
}

TEST(Logger, LevelChecksAreLockFreeAndOrdered) {
  auto& logger = Logger::instance();
  logger.set_level(LogLevel::kWarn);
  EXPECT_EQ(logger.level(), LogLevel::kWarn);
  EXPECT_FALSE(logger.enabled(LogLevel::kDebug));
  EXPECT_FALSE(logger.enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.enabled(LogLevel::kWarn));
  EXPECT_TRUE(logger.enabled(LogLevel::kError));
  logger.set_level(LogLevel::kOff);
  EXPECT_FALSE(logger.enabled(LogLevel::kError));
  logger.set_level(LogLevel::kInfo);
}

TEST(Logger, LevelFiltersEvenWithSinkInstalled) {
  auto& logger = Logger::instance();
  std::vector<std::string> lines;
  logger.set_sink(
      [&](LogLevel, const std::string& line) { lines.push_back(line); });
  logger.set_level(LogLevel::kError);
  // Below-threshold calls must not reach the sink even when invoked
  // directly (bypassing the macro's early-out).
  logger.log(LogLevel::kInfo, "test", "filtered");
  logger.log(LogLevel::kError, "test", "kept");
  logger.set_sink(nullptr);
  logger.set_level(LogLevel::kInfo);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "[ERROR] test: kept");
}

TEST(JsonWriter, SeparatorControlReproducesReportIdioms) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", "mfw.test/v1");
  w.field("count", 3);
  w.key("items", "\n ").begin_array();
  w.item("\n  ").begin_object().field("id", 1).end_object();
  w.item("\n  ").begin_object().field("id", 2).end_object();
  w.end_array("\n ");
  w.key("flat", "\n ").begin_array();
  w.inline_item().value(1);
  w.inline_item().value(2);
  w.inline_item().value(3);
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"schema\": \"mfw.test/v1\", \"count\": 3,"
            "\n \"items\": ["
            "\n  {\"id\": 1},"
            "\n  {\"id\": 2}\n ],"
            "\n \"flat\": [1, 2, 3]}");
}

TEST(JsonWriter, EmptyContainersAndEscaping) {
  JsonWriter w;
  w.begin_object();
  w.key("empty", "").begin_array().end_array("\n");  // close_prefix skipped
  w.field("text", "a\"b\\c\nd");
  w.field("flag", true);
  w.field("neg", -12);
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"empty\": [], \"text\": \"a\\\"b\\\\c\\nd\", "
            "\"flag\": true, \"neg\": -12}");
  EXPECT_EQ(json_escape("tab\tend"), "tab\\tend");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  EXPECT_EQ(cache.get(1).value(), 10);  // promotes 1
  cache.put(3, 30);                     // evicts 2
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_EQ(cache.get(1).value(), 10);
  EXPECT_EQ(cache.get(3).value(), 30);
  EXPECT_EQ(cache.evictions(), 1u);
  cache.put(1, 11);  // overwrite keeps size
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.get(1).value(), 11);
  EXPECT_TRUE(cache.erase(3));
  EXPECT_FALSE(cache.erase(3));
}

TEST(ShardedLruCache, CountsHitsAcrossThreads) {
  ShardedLruCache<int, int> cache(64, 4);
  for (int i = 0; i < 32; ++i) cache.put(i, i * 2);
  std::vector<std::thread> threads;
  std::atomic<int> found{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 32; ++i) {
        if (auto v = cache.get(i); v && *v == i * 2)
          found.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(found.load(), 4 * 32);
  EXPECT_EQ(cache.hits(), 4u * 32u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_GT(cache.hit_rate(), 0.99);
}

TEST(ZipfGenerator, SkewsTowardLowRanksAndIsDeterministic) {
  ZipfGenerator zipf(100, 1.1);
  Rng rng_a(7), rng_b(7);
  std::vector<std::size_t> counts(100, 0);
  for (int i = 0; i < 20000; ++i) {
    const std::size_t rank = zipf(rng_a);
    ASSERT_LT(rank, 100u);
    ++counts[rank];
    EXPECT_EQ(zipf(rng_b), rank);  // deterministic given the Rng
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 20000 / 20);  // rank 0 well above uniform share
  // CDF is monotone and complete.
  EXPECT_DOUBLE_EQ(zipf.cdf(99), 1.0);
  EXPECT_LT(zipf.cdf(0), 1.0);
  EXPECT_GT(zipf.cdf(0), zipf.cdf(1) - zipf.cdf(0));  // mass decreasing

  ZipfGenerator uniform(4, 0.0);
  EXPECT_NEAR(uniform.cdf(0), 0.25, 1e-12);
}

}  // namespace
}  // namespace mfw::util
