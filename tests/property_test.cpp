// Property-based tests (parameterized sweeps) over the simulation and data
// substrates: conservation laws, monotonicity, and round-trip invariants
// that must hold for any parameter combination.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "compute/cluster.hpp"
#include "util/strings.hpp"
#include "util/yamlite.hpp"
#include "ml/cluster.hpp"
#include "pipeline/eoml_workflow.hpp"
#include "preprocess/tiler.hpp"
#include "sim/link.hpp"
#include "storage/ncl.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace mfw {
namespace {

class QuietEnvironment : public ::testing::Environment {
 public:
  void SetUp() override {
    util::Logger::instance().set_level(util::LogLevel::kError);
  }
};
[[maybe_unused]] const auto* const kQuiet =
    ::testing::AddGlobalTestEnvironment(new QuietEnvironment);

// ---------------------------------------------------------------------------
// Task farm conservation + monotonicity across worker/node shapes.

struct FarmShape {
  int nodes;
  int workers_per_node;
  int tasks;
};

class FarmSweep : public ::testing::TestWithParam<FarmShape> {};

TEST_P(FarmSweep, PayloadConservedAndWorkersBounded) {
  const auto shape = GetParam();
  sim::SimEngine engine;
  compute::ClusterExecutor exec(engine, compute::defiant_law_factory());
  for (int i = 0; i < shape.nodes; ++i) exec.add_node(shape.workers_per_node);
  util::Rng rng(static_cast<std::uint64_t>(shape.tasks * 31 + shape.nodes));
  double submitted_payload = 0.0;
  for (int i = 0; i < shape.tasks; ++i) {
    compute::SimTaskDesc desc;
    desc.cpu_seconds = rng.uniform(0.0, 0.4);
    desc.shared_demand = rng.uniform(1.0, 120.0);
    desc.payload = desc.shared_demand;
    submitted_payload += desc.payload;
    exec.submit(desc);
  }
  engine.run();
  EXPECT_EQ(exec.completed(), static_cast<std::size_t>(shape.tasks));
  EXPECT_NEAR(exec.completed_payload(), submitted_payload, 1e-6);
  EXPECT_EQ(exec.queued(), 0u);
  EXPECT_EQ(exec.running(), 0u);
  const int max_workers = shape.nodes * shape.workers_per_node;
  for (const auto& [t, n] : exec.activity()) {
    ASSERT_GE(n, 0);
    ASSERT_LE(n, max_workers);
  }
  // Every task's spans are sane.
  for (const auto& r : exec.results()) {
    ASSERT_GE(r.started_at, r.submitted_at);
    ASSERT_GT(r.finished_at, r.started_at);
    ASSERT_GE(r.node, 0);
    ASSERT_LT(r.node, shape.nodes);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FarmSweep,
    ::testing::Values(FarmShape{1, 1, 8}, FarmShape{1, 8, 40},
                      FarmShape{2, 4, 40}, FarmShape{4, 8, 100},
                      FarmShape{10, 8, 80}, FarmShape{3, 16, 64}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.nodes) + "w" +
             std::to_string(info.param.workers_per_node) + "t" +
             std::to_string(info.param.tasks);
    });

class NodeMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(NodeMonotonicity, MoreNodesHelpModuloStragglers) {
  // Task-farm makespans are not strictly monotone in node count: with a
  // fixed discrete task mix, n+1 nodes can lose to n through load imbalance
  // (the paper's own Table I shows the same wiggle at 7 -> 8 weak-scaling
  // nodes). The property that must hold: adding a node never hurts by more
  // than a straggler's worth, and doubling nodes is a clear win.
  const int nodes = GetParam();
  auto makespan_with = [](int n) {
    sim::SimEngine engine;
    compute::ClusterExecutor exec(engine, compute::defiant_law_factory());
    for (int i = 0; i < n; ++i) exec.add_node(8);
    for (int i = 0; i < 64; ++i) {
      compute::SimTaskDesc desc;
      desc.shared_demand = 30.0 + (i % 9) * 10.0;
      exec.submit(desc);
    }
    engine.run();
    return exec.results().back().finished_at;
  };
  EXPECT_LE(makespan_with(nodes + 1), makespan_with(nodes) * 1.30);
  EXPECT_LT(makespan_with(2 * nodes), makespan_with(nodes));
}

INSTANTIATE_TEST_SUITE_P(Nodes, NodeMonotonicity, ::testing::Values(1, 2, 4, 8));

// ---------------------------------------------------------------------------
// Contention laws: monotone non-decreasing aggregate rate.

class LawSweep
    : public ::testing::TestWithParam<std::shared_ptr<sim::ContentionLaw>> {};

TEST_P(LawSweep, AggregateRateMonotone) {
  const auto& law = *GetParam();
  double prev = 0.0;
  for (std::size_t n = 1; n <= 256; ++n) {
    const double rate = law.aggregate_rate(n);
    ASSERT_GE(rate, prev - 1e-12) << law.name() << " at n=" << n;
    prev = rate;
  }
}

TEST_P(LawSweep, PerTaskRateNonIncreasing) {
  const auto& law = *GetParam();
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t n = 1; n <= 256; ++n) {
    const double per_task = law.aggregate_rate(n) / static_cast<double>(n);
    ASSERT_LE(per_task, prev + 1e-12) << law.name() << " at n=" << n;
    prev = per_task;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Laws, LawSweep,
    ::testing::Values(
        std::make_shared<sim::LinearCapLaw>(10.5, 38.0),
        std::make_shared<sim::SaturatingExpLaw>(38.5, 3.1),
        std::make_shared<sim::StepCapLaw>(10.5, 4)),
    [](const auto& info) { return info.param->name() == "linear-cap" ? "linear"
                           : info.param->name() == "saturating-exp" ? "satexp"
                                                                    : "step"; });

// ---------------------------------------------------------------------------
// FlowLink: byte conservation and capacity bound for random flow sets.

class LinkSweep : public ::testing::TestWithParam<int> {};

TEST_P(LinkSweep, BytesConservedAndCapacityRespected) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  sim::SimEngine engine;
  const double capacity = rng.uniform(50e6, 500e6);
  sim::FlowLink link(engine, "wan", capacity);
  double total_bytes = 0.0;
  int completed = 0;
  const int flows = 40;
  double last_done = 0.0;
  for (int i = 0; i < flows; ++i) {
    const double bytes = rng.uniform(1e5, 5e8);
    const double cap = rng.uniform(2e6, 40e6);
    total_bytes += bytes;
    engine.schedule_at(rng.uniform(0.0, 5.0), [&, bytes, cap] {
      link.start_flow(bytes, cap, [&](double bps) {
        ++completed;
        last_done = engine.now();
        EXPECT_GT(bps, 0.0);
      });
    });
  }
  engine.run();
  EXPECT_EQ(completed, flows);
  // The link cannot move bytes faster than capacity allows.
  EXPECT_GE(last_done, total_bytes / capacity - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkSweep, ::testing::Range(1, 6));

// ---------------------------------------------------------------------------
// Tiler: accounting identity over tile sizes and thresholds.

struct TilerCase {
  int tile_size;
  double threshold;
};

class TilerSweep : public ::testing::TestWithParam<TilerCase> {};

TEST_P(TilerSweep, AccountingIdentityHolds) {
  const auto param = GetParam();
  modis::GranuleGenerator gen(2022);
  modis::GranuleSpec spec;
  spec.geometry = modis::GranuleGeometry{128, 96, 4};
  while (!modis::is_daytime(spec.satellite, spec.slot, spec.day_of_year))
    ++spec.slot;
  const auto m02 = gen.mod02(spec);
  const auto m03 = gen.mod03(spec);
  const auto m06 = gen.mod06(spec);
  preprocess::TilerOptions options;
  options.tile_size = param.tile_size;
  options.channels = 3;
  options.min_cloud_fraction = param.threshold;
  const auto result = preprocess::make_tiles(m02, m03, m06, options);
  EXPECT_EQ(result.candidate_positions,
            (128 / param.tile_size) * (96 / param.tile_size));
  EXPECT_EQ(static_cast<int>(result.tiles.size()) + result.rejected_land +
                result.rejected_clear,
            result.candidate_positions);
  for (const auto& tile : result.tiles) {
    ASSERT_GE(tile.cloud_fraction, param.threshold - 1e-6f);
    ASSERT_LE(tile.cloud_fraction, 1.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TilerSweep,
    ::testing::Values(TilerCase{16, 0.0}, TilerCase{16, 0.3},
                      TilerCase{32, 0.3}, TilerCase{32, 0.8},
                      TilerCase{8, 0.5}),
    [](const auto& info) {
      return "ts" + std::to_string(info.param.tile_size) + "th" +
             std::to_string(static_cast<int>(info.param.threshold * 100));
    });

// ---------------------------------------------------------------------------
// ncl containers: random round-trips.

class NclSweep : public ::testing::TestWithParam<int> {};

TEST_P(NclSweep, RandomContainersRoundTrip) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  storage::NclFile file;
  const auto dims = static_cast<int>(rng.uniform_int(1, 4));
  std::vector<std::string> dim_names;
  for (int d = 0; d < dims; ++d) {
    dim_names.push_back("d" + std::to_string(d));
    file.add_dim(dim_names.back(),
                 static_cast<std::uint64_t>(rng.uniform_int(1, 9)));
  }
  const auto vars = static_cast<int>(rng.uniform_int(1, 6));
  for (int v = 0; v < vars; ++v) {
    // Random subset of dims (non-empty prefix).
    std::vector<std::string> vdims(
        dim_names.begin(),
        dim_names.begin() +
            static_cast<std::ptrdiff_t>(rng.uniform_int(1, dims)));
    std::size_t count = 1;
    for (const auto& d : vdims) count *= file.dim(d);
    std::vector<float> values(count);
    for (auto& x : values) x = static_cast<float>(rng.normal());
    file.add_f32("v" + std::to_string(v), vdims, values,
                 {{"attr", std::to_string(v)}});
  }
  const auto loaded = storage::NclFile::deserialize(file.serialize());
  EXPECT_EQ(loaded.var_count(), file.var_count());
  for (const auto& name : file.var_names()) {
    const auto& a = file.var(name);
    const auto& b = loaded.var(name);
    ASSERT_EQ(a.dims, b.dims);
    ASSERT_EQ(a.data, b.data);
    ASSERT_EQ(a.attrs, b.attrs);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NclSweep, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// k-means vs Ward: for well-separated data both recover structure.

class ClusterKSweep : public ::testing::TestWithParam<int> {};

TEST_P(ClusterKSweep, WardLabelsAlwaysCompactAndComplete) {
  const int k = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(k));
  const std::size_t n = 60;
  std::vector<float> data(n * 3);
  for (auto& v : data) v = static_cast<float>(rng.normal());
  const auto result = ml::agglomerative_ward(data, n, 3, k);
  std::vector<int> counts(static_cast<std::size_t>(k), 0);
  for (int label : result.labels) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, k);
    ++counts[static_cast<std::size_t>(label)];
  }
  for (int c : counts) EXPECT_GT(c, 0);  // every cluster non-empty
}

INSTANTIATE_TEST_SUITE_P(K, ClusterKSweep, ::testing::Values(1, 2, 5, 13, 42));

// ---------------------------------------------------------------------------
// SharedResource conservation: total service delivered equals total demand,
// for any contention law and arrival pattern.

class ResourceConservation : public ::testing::TestWithParam<int> {};

TEST_P(ResourceConservation, ServiceEqualsDemand) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 101);
  sim::SimEngine engine;
  sim::SharedResource resource(
      engine, std::make_unique<sim::SaturatingExpLaw>(38.5, 3.1));
  double total_demand = 0.0;
  int completed = 0;
  const int jobs = 120;
  std::vector<double> completion_times;
  for (int i = 0; i < jobs; ++i) {
    const double demand = rng.uniform(0.5, 60.0);
    total_demand += demand;
    engine.schedule_at(rng.uniform(0.0, 30.0), [&, demand] {
      resource.submit(demand, [&] {
        ++completed;
        completion_times.push_back(engine.now());
      });
    });
  }
  engine.run();
  EXPECT_EQ(completed, jobs);
  // Lower bound: even at the law's peak rate the work cannot finish faster
  // than total_demand / r_max after the last arrival window opens.
  const double last = *std::max_element(completion_times.begin(),
                                        completion_times.end());
  EXPECT_GE(last + 1e-6, total_demand / 38.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResourceConservation, ::testing::Range(1, 6));

// ---------------------------------------------------------------------------
// Glob matcher agreement with a reference recursive implementation.

namespace {
bool ref_glob(std::string_view p, std::string_view t) {
  if (p.empty()) return t.empty();
  if (p[0] == '*')
    return ref_glob(p.substr(1), t) ||
           (!t.empty() && ref_glob(p, t.substr(1)));
  if (t.empty()) return false;
  if (p[0] == '?' || p[0] == t[0]) return ref_glob(p.substr(1), t.substr(1));
  return false;
}
}  // namespace

class GlobFuzz : public ::testing::TestWithParam<int> {};

TEST_P(GlobFuzz, MatchesReferenceImplementation) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 3);
  const char alphabet[] = {'a', 'b', '/', '.', '*', '?'};
  for (int round = 0; round < 3000; ++round) {
    std::string pattern, text;
    const auto plen = rng.uniform_int(0, 8);
    const auto tlen = rng.uniform_int(0, 10);
    for (int i = 0; i < plen; ++i)
      pattern.push_back(alphabet[rng.uniform_int(0, 5)]);
    for (int i = 0; i < tlen; ++i)
      text.push_back(alphabet[rng.uniform_int(0, 3)]);  // no wildcards in text
    ASSERT_EQ(util::glob_match(pattern, text), ref_glob(pattern, text))
        << "pattern='" << pattern << "' text='" << text << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlobFuzz, ::testing::Range(1, 4));

// ---------------------------------------------------------------------------
// YAML round trip: parse(dump(parse(x))) == parse(x) for generated docs.

class YamlRoundTrip : public ::testing::TestWithParam<int> {};

namespace {
util::YamlNode random_node(util::Rng& rng, int depth) {
  const auto pick = rng.uniform_int(0, depth >= 2 ? 1 : 3);
  switch (pick) {
    case 0:
      return util::YamlNode::scalar("v" + std::to_string(rng.uniform_int(0, 99)));
    case 1: {
      return rng.bernoulli(0.5)
                 ? util::YamlNode::scalar(std::to_string(rng.uniform_int(-50, 50)))
                 : util::YamlNode{};
    }
    case 2: {
      // Non-empty: the block dump format cannot represent empty lists.
      auto list = util::YamlNode::list();
      const auto n = rng.uniform_int(1, 3);
      for (int i = 0; i < n; ++i) list.push_back(random_node(rng, depth + 1));
      return list;
    }
    default: {
      auto map = util::YamlNode::map();
      const auto n = rng.uniform_int(1, 3);
      for (int i = 0; i < n; ++i)
        map.set("k" + std::to_string(i), random_node(rng, depth + 1));
      return map;
    }
  }
}

void expect_same(const util::YamlNode& a, const util::YamlNode& b) {
  ASSERT_EQ(a.kind(), b.kind());
  switch (a.kind()) {
    case util::YamlNode::Kind::kNull:
      break;
    case util::YamlNode::Kind::kScalar:
      ASSERT_EQ(a.as_string(), b.as_string());
      break;
    case util::YamlNode::Kind::kList:
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) expect_same(a.at(i), b.at(i));
      break;
    case util::YamlNode::Kind::kMap:
      ASSERT_EQ(a.keys(), b.keys());
      for (const auto& key : a.keys()) expect_same(a[key], b[key]);
      break;
  }
}
}  // namespace

TEST_P(YamlRoundTrip, DumpParseIsIdentity) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1337);
  for (int round = 0; round < 40; ++round) {
    auto map = util::YamlNode::map();
    const auto n = rng.uniform_int(1, 4);
    for (int i = 0; i < n; ++i)
      map.set("top" + std::to_string(i), random_node(rng, 0));
    const auto reparsed = util::parse_yaml(map.dump());
    expect_same(map, reparsed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, YamlRoundTrip, ::testing::Range(1, 4));

// ---------------------------------------------------------------------------
// End-to-end pipeline invariants across resource shapes.

struct PipelineShape {
  int nodes;
  int workers;
  int files;
};

class PipelineSweep : public ::testing::TestWithParam<PipelineShape> {};

TEST_P(PipelineSweep, ConservationAcrossStages) {
  const auto shape = GetParam();
  pipeline::EomlConfig config;
  config.max_files = static_cast<std::size_t>(shape.files);
  config.daytime_only = true;
  config.preprocess_nodes = shape.nodes;
  config.workers_per_node = shape.workers;
  pipeline::EomlWorkflow workflow(config);
  const auto report = workflow.run();
  EXPECT_EQ(report.granules, static_cast<std::size_t>(shape.files));
  EXPECT_EQ(report.labeled_files, report.granules);
  EXPECT_EQ(report.shipped_files, report.granules);
  EXPECT_EQ(report.labeled_tiles, report.total_tiles);
  EXPECT_GE(report.makespan, report.download_span.duration());
  EXPECT_EQ(workflow.orion_fs().list("aicca/*.ncl").size(), report.granules);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PipelineSweep,
    ::testing::Values(PipelineShape{1, 1, 4}, PipelineShape{1, 8, 8},
                      PipelineShape{4, 8, 16}, PipelineShape{10, 8, 20}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.nodes) + "w" +
             std::to_string(info.param.workers) + "f" +
             std::to_string(info.param.files);
    });

}  // namespace
}  // namespace mfw
