// Validator and compiler tests for mfw::spec: every diagnostic the
// StageGraph compiler emits must be anchored to the YAML line of the
// offending element, so each negative test asserts the full "spec:<line>:"
// prefix, not just the message tail.
#include <gtest/gtest.h>

#include <string>

#include "spec/lab.hpp"
#include "spec/spec.hpp"

namespace mfw::spec {
namespace {

/// Parses + compiles `yaml`, returning the SpecError message ("" if none).
std::string compile_error(const char* yaml, FacilityCaps caps = {}) {
  try {
    StageGraph::compile(WorkflowSpec::from_yaml_text(yaml), caps);
  } catch (const SpecError& e) {
    return e.what();
  }
  return "";
}

TEST(SpecValidate, DuplicateStageNameIsLineAnchored) {
  const auto err = compile_error(
      "stages:\n"
      "  - name: tile\n"
      "  - name: tile\n");
  EXPECT_EQ(err, "spec:3: duplicate stage name 'tile' (first declared at "
                 "line 2)");
}

TEST(SpecValidate, UndeclaredInputIsLineAnchored) {
  const auto err = compile_error(
      "stages:\n"
      "  - name: tile\n"
      "    inputs: [ingest]\n");
  EXPECT_EQ(err, "spec:2: stage 'tile' reads from undeclared input 'ingest'");
}

TEST(SpecValidate, SelfInputIsRejected) {
  const auto err = compile_error(
      "stages:\n"
      "  - name: tile\n"
      "    inputs: [tile]\n");
  EXPECT_EQ(err, "spec:2: stage 'tile' lists itself as input");
}

TEST(SpecValidate, CyclicDagIsLineAnchored) {
  const auto err = compile_error(
      "stages:\n"
      "  - name: a\n"
      "    inputs: [b]\n"
      "  - name: b\n"
      "    inputs: [a]\n");
  EXPECT_EQ(err, "spec:2: dependency cycle involving stage 'a'");
}

TEST(SpecValidate, ClaimExceedsNodeCapacity) {
  const auto err = compile_error(
      "stages:\n"
      "  - name: tile\n"
      "    claim:\n"
      "      nodes: 99\n");
  EXPECT_EQ(err, "spec:4: stage 'tile' claims 99 nodes but facility "
                 "'olcf_defiant' has 36");
}

TEST(SpecValidate, ClaimExceedsWanCapacity) {
  FacilityCaps caps;
  caps.name = "lab";
  caps.wan_bps = 100.0;
  const auto err = compile_error(
      "stages:\n"
      "  - name: ship\n"
      "    kind: transfer\n"
      "    claim:\n"
      "      wan: 200\n",
      caps);
  EXPECT_NE(err.find("spec:5: stage 'ship' claims 200"), std::string::npos)
      << err;
  EXPECT_NE(err.find("facility 'lab' has 100"), std::string::npos) << err;
}

TEST(SpecValidate, DataflowEdgeMustMatchDeclaredInput) {
  const auto err = compile_error(
      "stages:\n"
      "  - name: a\n"
      "  - name: b\n"
      "dataflow:\n"
      "  - {from: a, to: b}\n");
  EXPECT_EQ(err, "spec:5: dataflow edge 'a -> b': stage 'b' does not "
                 "declare input 'a'");
}

TEST(SpecValidate, UnknownTopLevelKeyIsLineAnchored) {
  const auto err = compile_error(
      "stages:\n"
      "  - name: a\n"
      "bogus: 3\n");
  EXPECT_EQ(err, "spec:3: spec: unknown key 'bogus'");
}

TEST(SpecCompile, TopoOrderAndEdgeModes) {
  const auto graph = StageGraph::compile(
      WorkflowSpec::from_yaml_text(
          "name: demo\n"
          "stages:\n"
          "  - name: label\n"
          "    inputs: [tile]\n"
          "  - name: tile\n"
          "    inputs: [ingest]\n"
          "  - name: ingest\n"
          "    kind: transfer\n"
          "dataflow:\n"
          "  - {from: ingest, to: tile, mode: streaming}\n"
          "campaign:\n"
          "  count: 2\n"
          "  spacing: 30\n"
          "  items: 8\n"),
      FacilityCaps{});
  const auto& topo = graph.topo_order();
  ASSERT_EQ(topo.size(), 3u);
  EXPECT_EQ(topo[0], "ingest");
  EXPECT_EQ(topo[1], "tile");
  EXPECT_EQ(topo[2], "label");
  EXPECT_EQ(graph.edge_mode("ingest", "tile"), EdgeMode::kStreaming);
  // Edges without a dataflow override default to barrier coupling.
  EXPECT_EQ(graph.edge_mode("tile", "label"), EdgeMode::kBarrier);
  EXPECT_THROW(graph.edge_mode("ingest", "label"), SpecError);
  EXPECT_EQ(graph.spec().campaign.count, 2);
  EXPECT_EQ(graph.spec().campaign.items, 8);

  const auto plan = graph.describe();
  EXPECT_NE(plan.find("workflow 'demo'"), std::string::npos);
  EXPECT_NE(plan.find("ingest -> tile [streaming]"), std::string::npos);
  EXPECT_NE(plan.find("tile -> label [barrier]"), std::string::npos);
}

TEST(SpecLab, RunsCompiledGraphAndEmitsSchema) {
  FacilityCaps caps;
  caps.name = "lab";
  caps.total_nodes = 2;
  caps.max_workers_per_node = 4;
  LabConfig config;
  config.graph = StageGraph::compile(
      WorkflowSpec::from_yaml_text(
          "name: mini\n"
          "stages:\n"
          "  - name: tile\n"
          "    claim:\n"
          "      nodes: 2\n"
          "      workers_per_node: 2\n"
          "      cpu_per_item: 0.5\n"
          "  - name: label\n"
          "    inputs: [tile]\n"
          "    claim:\n"
          "      cpu_per_item: 0.1\n"
          "dataflow:\n"
          "  - {from: tile, to: label, mode: streaming}\n"
          "campaign:\n"
          "  count: 2\n"
          "  spacing: 1\n"
          "  items: 6\n"),
      caps);
  config.policy = "fair_share";
  const auto result = run_lab(config);
  EXPECT_GT(result.makespan, 0.0);
  EXPECT_EQ(result.campaigns, 2);
  EXPECT_EQ(result.tasks, 2u * 6u * 2u);  // two stages x items x campaigns
  EXPECT_GT(result.utilization, 0.0);
  EXPECT_LE(result.utilization, 1.0);

  const auto json = results_to_json({result});
  EXPECT_NE(json.find("\"schema\": \"mfw.policies/v1\""), std::string::npos);
  EXPECT_NE(json.find("\"policy\": \"fair_share\""), std::string::npos);
  EXPECT_NE(json.find("\"makespan\": "), std::string::npos);
}

TEST(SpecLab, LoadScalesCampaignCount) {
  FacilityCaps caps;
  caps.total_nodes = 1;
  caps.max_workers_per_node = 2;
  LabConfig config;
  config.graph = StageGraph::compile(
      WorkflowSpec::from_yaml_text(
          "stages:\n"
          "  - name: tile\n"
          "    claim:\n"
          "      cpu_per_item: 0.1\n"
          "campaign:\n"
          "  count: 2\n"
          "  items: 3\n"),
      caps);
  config.load = 2.0;
  const auto result = run_lab(config);
  EXPECT_EQ(result.campaigns, 4);
  EXPECT_EQ(result.tasks, 4u * 3u);
}

// ---------------------------------------------------------------------------
// Spec-declared SLOs (DESIGN.md §12)

TEST(SpecSlo, UnknownMetricIsLineAnchored) {
  const auto err = compile_error(
      "stages:\n"
      "  - name: tile\n"
      "slo:\n"
      "  - name: r1\n"
      "    metric: p42_latency\n"
      "    threshold: 1\n");
  EXPECT_NE(err.find("spec:5: slo 'r1': unknown metric 'p42_latency'"),
            std::string::npos)
      << err;
}

TEST(SpecSlo, MissingThresholdIsLineAnchored) {
  const auto err = compile_error(
      "stages:\n"
      "  - name: tile\n"
      "slo:\n"
      "  - name: r1\n"
      "    stage: tile\n");
  EXPECT_EQ(err, "spec:4: slo 'r1' is missing 'threshold'");
}

TEST(SpecSlo, StageRuleNeedsDeclaredStage) {
  const auto err = compile_error(
      "stages:\n"
      "  - name: tile\n"
      "slo:\n"
      "  - name: r1\n"
      "    stage: nope\n"
      "    metric: p99_latency\n"
      "    threshold: 1\n");
  EXPECT_EQ(err, "spec:4: slo 'r1' watches undeclared stage 'nope'");

  const auto err2 = compile_error(
      "stages:\n"
      "  - name: tile\n"
      "slo:\n"
      "  - name: r1\n"
      "    metric: p99_latency\n"
      "    threshold: 1\n");
  EXPECT_EQ(err2, "spec:4: slo 'r1': metric 'p99_latency' needs a 'stage'");
}

TEST(SpecSlo, DeadlineRuleIsWorkflowWideWithFractionThreshold) {
  const auto err = compile_error(
      "stages:\n"
      "  - name: tile\n"
      "slo:\n"
      "  - name: r1\n"
      "    stage: tile\n"
      "    metric: deadline_miss_rate\n"
      "    threshold: 0.1\n");
  EXPECT_NE(err.find("deadline_miss_rate is workflow-wide"),
            std::string::npos)
      << err;

  const auto err2 = compile_error(
      "stages:\n"
      "  - name: tile\n"
      "slo:\n"
      "  - name: r1\n"
      "    metric: deadline_miss_rate\n"
      "    threshold: 1.5\n");
  EXPECT_NE(err2.find("threshold must be in [0, 1)"), std::string::npos)
      << err2;
}

TEST(SpecSlo, DuplicateNameAndBadWindowAndUtilizationRange) {
  const auto dup = compile_error(
      "stages:\n"
      "  - name: tile\n"
      "slo:\n"
      "  - name: r1\n"
      "    stage: tile\n"
      "    metric: p99_latency\n"
      "    threshold: 1\n"
      "  - name: r1\n"
      "    stage: tile\n"
      "    metric: queue_wait_p99\n"
      "    threshold: 1\n");
  EXPECT_EQ(dup, "spec:8: duplicate slo name 'r1'");

  const auto window = compile_error(
      "stages:\n"
      "  - name: tile\n"
      "slo:\n"
      "  - name: r1\n"
      "    stage: tile\n"
      "    metric: p99_latency\n"
      "    threshold: 1\n"
      "    window: 0\n");
  EXPECT_EQ(window, "spec:8: slo 'r1': window must be > 0");

  const auto util = compile_error(
      "stages:\n"
      "  - name: tile\n"
      "slo:\n"
      "  - name: r1\n"
      "    stage: tile\n"
      "    metric: utilization_floor\n"
      "    threshold: 1.5\n");
  EXPECT_NE(util.find("utilization_floor threshold must be in (0, 1]"),
            std::string::npos)
      << util;
}

TEST(SpecSlo, CompilesIntoHealthRulesAndDescribe) {
  const auto graph = StageGraph::compile(
      WorkflowSpec::from_yaml_text(
          "name: watched\n"
          "stages:\n"
          "  - name: tile\n"
          "slo:\n"
          "  - name: tile-lat\n"
          "    stage: tile\n"
          "    metric: p99_latency\n"
          "    threshold: 2.5\n"
          "    window: 30\n"
          "  - name: deadlines\n"
          "    metric: deadline_miss_rate\n"
          "    threshold: 0.1\n"),
      FacilityCaps{});
  const auto rules = health_rules(graph.spec());
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].name, "tile-lat");
  EXPECT_EQ(rules[0].stage, "tile");
  EXPECT_EQ(rules[0].metric, obs::SloMetric::kP99Latency);
  EXPECT_DOUBLE_EQ(rules[0].threshold, 2.5);
  EXPECT_DOUBLE_EQ(rules[0].window_s, 30.0);
  EXPECT_EQ(rules[1].stage, "");
  EXPECT_EQ(rules[1].metric, obs::SloMetric::kDeadlineMissRate);

  const auto plan = graph.describe();
  EXPECT_NE(plan.find("slo:"), std::string::npos);
  EXPECT_NE(plan.find("tile-lat: tile p99_latency <= 2.5 over 30s windows"),
            std::string::npos)
      << plan;
  EXPECT_NE(plan.find("deadlines: workflow deadline_miss_rate <= 0.1"),
            std::string::npos)
      << plan;
}

TEST(SpecLab, DeadlineSloEvaluatedFromCampaignOutcomes) {
  FacilityCaps caps;
  caps.total_nodes = 1;
  caps.max_workers_per_node = 2;
  LabConfig config;
  config.graph = StageGraph::compile(
      WorkflowSpec::from_yaml_text(
          "stages:\n"
          "  - name: tile\n"
          "    claim:\n"
          "      cpu_per_item: 0.5\n"
          "campaign:\n"
          "  count: 2\n"
          "  spacing: 1\n"
          "  items: 6\n"
          "  deadline: 0.1\n"  // impossible: every campaign misses
          "slo:\n"
          "  - name: deadline-budget\n"
          "    metric: deadline_miss_rate\n"
          "    threshold: 0.25\n"
          "    window: 60\n"),
      caps);
  const auto result = run_lab(config);
  EXPECT_EQ(result.deadline_misses, 2);
  EXPECT_EQ(result.slo_rules, 1);
  EXPECT_GE(result.slo_alerts, 1);
  EXPECT_EQ(result.slo_firing, 1);

  const auto json = results_to_json({result});
  EXPECT_NE(json.find("\"slo_rules\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"slo_firing\": 1"), std::string::npos);
}

}  // namespace
}  // namespace mfw::spec
