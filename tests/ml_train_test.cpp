// Tests for RICC training: optimizers, autoencoder convergence, rotation
// invariance, centroid fitting, prediction, and model serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "ml/optim.hpp"
#include "ml/ricc.hpp"

namespace mfw::ml {
namespace {

RiccConfig tiny_config() {
  RiccConfig config;
  config.tile_size = 8;
  config.channels = 2;
  config.base_channels = 4;
  config.conv_blocks = 2;
  config.latent_dim = 6;
  config.num_classes = 4;
  config.seed = 11;
  return config;
}

// Synthetic "cloud texture" tiles from two visually distinct families.
std::vector<Tensor> make_tiles(const RiccConfig& config, std::size_t count,
                               util::Rng& rng) {
  std::vector<Tensor> tiles;
  for (std::size_t i = 0; i < count; ++i) {
    Tensor tile({config.channels, config.tile_size, config.tile_size});
    const bool family = i % 2 == 0;
    for (int c = 0; c < config.channels; ++c) {
      for (int h = 0; h < config.tile_size; ++h) {
        for (int w = 0; w < config.tile_size; ++w) {
          const double base =
              family ? std::sin(0.9 * h) * std::cos(0.9 * w)
                     : std::exp(-0.08 * ((h - 4.0) * (h - 4.0) +
                                         (w - 4.0) * (w - 4.0)));
          tile.at3(c, h, w) =
              static_cast<float>(0.5 + 0.4 * base + 0.02 * rng.normal());
        }
      }
    }
    tiles.push_back(std::move(tile));
  }
  return tiles;
}

TEST(Optim, SgdDescendsQuadratic) {
  // Minimise f(w) = (w-3)^2 by hand-feeding gradients.
  Param p{"w", Tensor({1}, {0.0f}), Tensor({1}, {0.0f})};
  Sgd sgd({&p}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    sgd.step(1);
  }
  EXPECT_NEAR(p.value[0], 3.0f, 1e-3);
}

TEST(Optim, AdamDescendsQuadratic) {
  Param p{"w", Tensor({1}, {0.0f}), Tensor({1}, {0.0f})};
  Adam adam({&p}, 0.1f);
  for (int i = 0; i < 300; ++i) {
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    adam.step(1);
  }
  EXPECT_NEAR(p.value[0], 3.0f, 1e-2);
}

TEST(Optim, StepScalesByBatchAndClearsGrad) {
  Param p{"w", Tensor({1}, {0.0f}), Tensor({1}, {4.0f})};
  Sgd sgd({&p}, 1.0f);
  sgd.step(4);  // effective gradient 1.0
  EXPECT_FLOAT_EQ(p.value[0], -1.0f);
  EXPECT_FLOAT_EQ(p.grad[0], 0.0f);
}

TEST(RiccConfig, Validation) {
  RiccConfig config = tiny_config();
  EXPECT_NO_THROW(config.validate());
  config.tile_size = 10;  // not divisible by 2^2
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = tiny_config();
  config.latent_dim = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = tiny_config();
  EXPECT_EQ(config.top_size(), 2);
  EXPECT_EQ(config.top_channels(), 8);
}

TEST(RiccModel, EncodeShapesAndDeterminism) {
  RiccModel model(tiny_config());
  util::Rng rng(1);
  const auto tiles = make_tiles(model.config(), 2, rng);
  const Tensor z1 = model.encode(tiles[0]);
  EXPECT_EQ(z1.shape(), (std::vector<int>{6}));
  const Tensor z2 = model.encode(tiles[0]);
  for (std::size_t i = 0; i < z1.size(); ++i) EXPECT_FLOAT_EQ(z1[i], z2[i]);
  const Tensor recon = model.reconstruct(tiles[0]);
  EXPECT_EQ(recon.shape(), tiles[0].shape());
}

TEST(RiccModel, PredictRequiresCentroids) {
  RiccModel model(tiny_config());
  util::Rng rng(2);
  const auto tiles = make_tiles(model.config(), 1, rng);
  EXPECT_THROW(model.predict(tiles[0]), std::logic_error);
  EXPECT_THROW(model.set_centroids(Tensor({3, 6})), std::invalid_argument);
}

TEST(RiccTraining, ReconstructionLossDecreases) {
  RiccModel model(tiny_config());
  util::Rng rng(3);
  const auto tiles = make_tiles(model.config(), 24, rng);
  RiccTrainOptions options;
  options.epochs = 8;
  options.batch_size = 8;
  options.learning_rate = 2e-3f;
  options.rotations = 0;  // isolate the reconstruction objective
  const auto report = train_autoencoder(model, tiles, options);
  ASSERT_EQ(report.epoch_reconstruction_loss.size(), 8u);
  EXPECT_LT(report.epoch_reconstruction_loss.back(),
            report.epoch_reconstruction_loss.front() * 0.8f);
}

TEST(RiccTraining, InvarianceTermImprovesRotationScore) {
  RiccModel model(tiny_config());
  util::Rng rng(4);
  const auto tiles = make_tiles(model.config(), 24, rng);
  RiccTrainOptions options;
  options.epochs = 10;
  options.batch_size = 8;
  options.learning_rate = 2e-3f;
  options.lambda_invariance = 2.0f;
  options.rotations = 3;
  const auto report = train_autoencoder(model, tiles, options);
  EXPECT_LT(report.invariance_score_after,
            report.invariance_score_before * 0.8);
  // Invariance loss decreases over training.
  EXPECT_LT(report.epoch_invariance_loss.back(),
            report.epoch_invariance_loss.front());
}

TEST(RiccTraining, FitCentroidsEnablesPrediction) {
  RiccModel model(tiny_config());
  util::Rng rng(5);
  const auto tiles = make_tiles(model.config(), 24, rng);
  const auto clusters = fit_centroids(model, tiles);
  EXPECT_EQ(clusters.k, 4);
  EXPECT_TRUE(model.has_centroids());
  for (const auto& tile : tiles) {
    const int label = model.predict(tile);
    ASSERT_GE(label, 0);
    ASSERT_LT(label, 4);
  }
}

TEST(RiccTraining, TwoTextureFamiliesSeparateInLatentSpace) {
  RiccModel model(tiny_config());
  util::Rng rng(6);
  const auto tiles = make_tiles(model.config(), 32, rng);
  RiccTrainOptions options;
  options.epochs = 10;
  options.batch_size = 8;
  options.learning_rate = 2e-3f;
  const auto report = train_ricc(model, tiles, options);
  // Tiles of the same family should mostly map to the same class.
  std::map<int, std::map<int, int>> votes;  // family -> label -> count
  for (std::size_t i = 0; i < tiles.size(); ++i)
    votes[static_cast<int>(i % 2)][model.predict(tiles[i])]++;
  int agree = 0;
  for (auto& [family, counts] : votes) {
    int best = 0;
    for (auto& [label, n] : counts) best = std::max(best, n);
    agree += best;
  }
  EXPECT_GE(agree, static_cast<int>(tiles.size() * 3 / 4));
  EXPECT_GT(report.silhouette, -0.5);
}

TEST(RiccModel, SaveLoadRoundTrip) {
  RiccModel model(tiny_config());
  util::Rng rng(7);
  const auto tiles = make_tiles(model.config(), 16, rng);
  RiccTrainOptions options;
  options.epochs = 2;
  options.batch_size = 8;
  train_ricc(model, tiles, options);

  const auto bytes = model.save().serialize();
  auto loaded = RiccModel::load(storage::HdflFile::deserialize(bytes));
  EXPECT_EQ(loaded.config().latent_dim, model.config().latent_dim);
  ASSERT_TRUE(loaded.has_centroids());
  for (const auto& tile : tiles) {
    const Tensor z1 = model.encode(tile);
    const Tensor z2 = loaded.encode(tile);
    for (std::size_t i = 0; i < z1.size(); ++i)
      ASSERT_FLOAT_EQ(z1[i], z2[i]);
    EXPECT_EQ(model.predict(tile), loaded.predict(tile));
  }
}

TEST(RiccTraining, RejectsBadInputs) {
  RiccModel model(tiny_config());
  RiccTrainOptions options;
  EXPECT_THROW(train_autoencoder(model, {}, options), std::invalid_argument);
  util::Rng rng(8);
  const auto tiles = make_tiles(model.config(), 2, rng);
  EXPECT_THROW(fit_centroids(model, tiles), std::invalid_argument);
}

}  // namespace
}  // namespace mfw::ml
