// Unit tests for per-granule lineage (obs/lineage.hpp): exact causal chains
// on a hand-built synthetic trace, the barrier-vs-streaming contract on the
// real workflow (same granule set and chain shape, different overlap), and
// the bounded-memory LineageRollup.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/lineage.hpp"
#include "obs/trace.hpp"
#include "pipeline/config.hpp"
#include "pipeline/eoml_workflow.hpp"

namespace mfw::obs {
namespace {

// Two granules with exactly known chains:
//   g1: download [0,10] -> ready@10 -> preprocess [30,40] (gap 20) ->
//       inference [40,42] (queue_wait 1)
//   g2: download [5,20] (3 attempts, failed) -> ready@20
void build_synthetic(TraceRecorder& rec) {
  rec.set_enabled(true);
  rec.begin_process("synthetic");
  rec.add_span("download/w0", "download", "d1", 0.0, 10.0,
               {{"granule", "g1"}, {"status", "ok"}, {"attempts", "1"}});
  rec.add_instant("flow/granules", "flow", "granule.ready", 10.0,
                  {{"key", "g1"}});
  rec.add_span("preprocess/node0/w0", "compute", "p1", 30.0, 40.0,
               {{"granule", "g1"}, {"queue_wait_s", "0"}, {"status", "ok"}});
  rec.add_span("inference/node0/w0", "compute", "i1", 40.0, 42.0,
               {{"granule", "g1"}, {"queue_wait_s", "1"}, {"status", "ok"}});
  rec.add_span("download/w1", "download", "d2", 5.0, 20.0,
               {{"granule", "g2"}, {"status", "failed"}, {"attempts", "3"}});
  rec.add_instant("flow/granules", "flow", "granule.ready", 20.0,
                  {{"key", "g2"}});
}

TEST(Lineage, SyntheticChainsAreExact) {
  TraceRecorder rec;
  build_synthetic(rec);
  const auto report = extract_lineage(rec);
  ASSERT_EQ(report.granules.size(), 2u);

  const auto* g1 = report.find("g1");
  ASSERT_NE(g1, nullptr);
  ASSERT_EQ(g1->hops.size(), 4u);
  EXPECT_EQ(g1->hops[0].kind, "download");
  EXPECT_EQ(g1->hops[1].kind, "granule.ready");
  EXPECT_EQ(g1->hops[2].kind, "preprocess");
  EXPECT_EQ(g1->hops[3].kind, "inference");
  // Wait/service split: preprocess waited 20 s (causal gap since ready@10),
  // inference charged its explicit queue_wait_s.
  EXPECT_DOUBLE_EQ(g1->hops[2].wait_s(), 20.0);
  EXPECT_DOUBLE_EQ(g1->hops[2].service_s(), 10.0);
  EXPECT_DOUBLE_EQ(g1->hops[3].wait_s(), 1.0);
  EXPECT_DOUBLE_EQ(g1->latency_s(), 42.0);
  EXPECT_DOUBLE_EQ(g1->service_s, 10.0 + 10.0 + 2.0);
  EXPECT_TRUE(g1->ready);
  EXPECT_FALSE(g1->failed);

  const auto* g2 = report.find("g2");
  ASSERT_NE(g2, nullptr);
  EXPECT_TRUE(g2->failed);
  EXPECT_EQ(g2->hops[0].attempts, 3);

  // Slowest first: g1 (42 s) before g2 (15 s).
  EXPECT_EQ(report.granules[0].granule, "g1");
  EXPECT_EQ(report.find("nope"), nullptr);
  EXPECT_TRUE(report.render_granule("nope").empty());
  EXPECT_NE(report.render_granule("g1").find("preprocess"),
            std::string::npos);
  EXPECT_NE(report.to_json().find("\"mfw.lineage/v1\""), std::string::npos);
}

// The chains the real workflow produces under both scheduling modes: the
// *same* granules travel the *same* kind of chain; only the overlap between
// download and preprocess differs (none under barrier, some under
// streaming). This is the lineage-level statement of the paper's fig. 6.
struct RunLineage {
  std::set<std::string> granules;
  double max_download_end = 0.0;
  double min_preprocess_start = 1e300;
};

RunLineage run_and_extract(const std::string& yaml) {
  auto& rec = TraceRecorder::instance();
  set_globally_enabled(true);
  pipeline::EomlWorkflow workflow(pipeline::EomlConfig::from_yaml_text(yaml));
  workflow.run();
  const auto report = extract_lineage(rec);
  set_globally_enabled(false);
  rec.clear();

  RunLineage out;
  for (const auto& g : report.granules) {
    out.granules.insert(g.granule);
    EXPECT_TRUE(g.ready) << g.granule;
    std::size_t downloads = 0, preprocess = 0, inference = 0;
    for (const auto& hop : g.hops) {
      if (hop.kind == "download") {
        ++downloads;
        out.max_download_end = std::max(out.max_download_end, hop.end);
      } else if (hop.kind == "preprocess") {
        ++preprocess;
        out.min_preprocess_start =
            std::min(out.min_preprocess_start, hop.start);
      } else if (hop.kind == "inference") {
        ++inference;
      }
    }
    // Paper pipeline: a granule is a MOD02/MOD03/MOD06 triplet that is
    // preprocessed once and inferred once.
    EXPECT_EQ(downloads, 3u) << g.granule;
    EXPECT_EQ(preprocess, 1u) << g.granule;
    EXPECT_GE(inference, 1u) << g.granule;
  }
  return out;
}

TEST(Lineage, BarrierAndStreamingShareChainsButNotOverlap) {
  const auto barrier =
      run_and_extract("workflow:\n  max_files: 6\n");
  const auto streaming = run_and_extract(
      "workflow:\n  max_files: 6\n  scheduling: streaming\n");

  ASSERT_FALSE(barrier.granules.empty());
  EXPECT_EQ(barrier.granules, streaming.granules);
  // Barrier: no preprocess task starts until every download has finished.
  EXPECT_GE(barrier.min_preprocess_start, barrier.max_download_end);
  // Streaming: preprocess overlaps the download stage.
  EXPECT_LT(streaming.min_preprocess_start, streaming.max_download_end);
}

TEST(LineageRollup, BoundedMemoryWithFifoEviction) {
  LineageRollupConfig config;
  config.max_granules = 8;
  LineageRollup rollup(config);

  TraceTrack track{0, 1, "preprocess/node0/w0"};
  for (int i = 0; i < 50; ++i) {
    TraceSpan span;
    span.category = "compute";
    span.name = "p";
    span.start = 10.0 * i;
    span.end = 10.0 * i + 5.0;
    span.args = {{"granule", "g" + std::to_string(i)},
                 {"queue_wait_s", "2"},
                 {"status", "ok"}};
    rollup.on_span(track, span);
  }

  EXPECT_EQ(rollup.live_granules(), 8u);
  EXPECT_EQ(rollup.total_granules(), 50u);
  EXPECT_EQ(rollup.evicted(), 42u);

  // FIFO: the oldest granules were folded into the sketches and evicted,
  // the newest are still queryable.
  LineageRollup::Summary summary;
  EXPECT_FALSE(rollup.summary("g0", summary));
  ASSERT_TRUE(rollup.summary("g49", summary));
  EXPECT_EQ(summary.computes, 1u);
  EXPECT_DOUBLE_EQ(summary.service_s, 5.0);
  EXPECT_DOUBLE_EQ(summary.wait_s, 2.0);

  // Whole-campaign quantiles cover evicted granules too (every granule has
  // latency 5 s, so any quantile lands there within sketch error).
  EXPECT_NEAR(rollup.latency_quantile(0.5), 5.0,
              5.0 * LogHistogram::kMaxRelativeError);
  EXPECT_NEAR(rollup.wait_quantile(0.9), 2.0,
              2.0 * LogHistogram::kMaxRelativeError);
  EXPECT_NE(rollup.to_json().find("\"mfw.lineage_rollup/v1\""),
            std::string::npos);
}

/// Counts events; stands in for a downstream rollup on the single sink slot.
struct CountingSink : SpanSink {
  int spans = 0;
  int instants = 0;
  void on_span(const TraceTrack&, const TraceSpan&) override { ++spans; }
  void on_instant(const TraceTrack&, const TraceInstant&) override {
    ++instants;
  }
};

TEST(LineageRollup, ChainsToDownstreamSink) {
  LineageRollup rollup;
  CountingSink downstream;
  rollup.set_next(&downstream);

  TraceRecorder rec;
  rec.set_enabled(true);
  rec.begin_process("p");
  rec.set_span_sink(&rollup);
  rec.add_span("download/w0", "download", "d", 0.0, 1.0,
               {{"granule", "g"}});
  rec.add_instant("flow/granules", "flow", "granule.ready", 1.0,
                  {{"key", "g"}});
  rec.set_span_sink(nullptr);

  EXPECT_EQ(downstream.spans, 1);
  EXPECT_EQ(downstream.instants, 1);
  EXPECT_EQ(rollup.live_granules(), 1u);
  LineageRollup::Summary summary;
  ASSERT_TRUE(rollup.summary("g", summary));
  EXPECT_TRUE(summary.ready);
  EXPECT_EQ(summary.downloads, 1u);
}

}  // namespace
}  // namespace mfw::obs
