// End-to-end integration tests of the five-stage EO-ML workflow: ordering
// invariants, overlap of inference with preprocessing, shipment integrity,
// elastic mode, materialized-content mode with a real RICC model, failure
// handling, and the streaming (per-granule readiness) scheduling mode.
#include <gtest/gtest.h>

#include <algorithm>

#include "flow/events.hpp"
#include "pipeline/eoml_workflow.hpp"
#include "preprocess/tile_io.hpp"
#include "util/log.hpp"

namespace mfw::pipeline {
namespace {

EomlConfig small_config() {
  EomlConfig config;
  config.max_files = 12;
  config.daytime_only = true;
  config.preprocess_nodes = 2;
  config.workers_per_node = 4;
  return config;
}

class QuietLogs : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Logger::instance().set_level(util::LogLevel::kError);
  }
  void TearDown() override {
    util::Logger::instance().set_level(util::LogLevel::kInfo);
  }
};

using EomlIntegration = QuietLogs;

TEST_F(EomlIntegration, FiveStagesRunInOrder) {
  EomlWorkflow workflow(small_config());
  const auto report = workflow.run();

  // Stage ordering: download strictly precedes preprocessing (the paper
  // delays tiling until all downloads land); shipment ends the run.
  EXPECT_GE(report.preprocess_span.start, report.download_span.end);
  EXPECT_GE(report.shipment_span.start, report.preprocess_span.end);
  EXPECT_GE(report.makespan, report.shipment_span.end - 1e-9);

  EXPECT_EQ(report.granules, 12u);
  EXPECT_GT(report.total_tiles, 0u);
  EXPECT_EQ(report.labeled_files, 12u);
  EXPECT_EQ(report.labeled_tiles, report.total_tiles);
  EXPECT_EQ(report.shipped_files, 12u);

  // Every download file landed on the Defiant filesystem during staging and
  // every labelled file reached Orion.
  EXPECT_EQ(workflow.orion_fs().list("aicca/*.ncl").size(), 12u);
  // tiles/ is fully drained (every file moved to outbox/); shipment is a
  // copy (as with Globus Transfer), so outbox/ retains the labelled files.
  EXPECT_TRUE(workflow.defiant_fs().list("tiles/*.ncl").empty());
  EXPECT_EQ(workflow.defiant_fs().list("outbox/*.ncl").size(), 12u);
}

TEST_F(EomlIntegration, InferenceOverlapsPreprocessing) {
  // The paper's Fig. 6 shows inference starting before preprocessing ends.
  auto config = small_config();
  config.max_files = 16;
  EomlWorkflow workflow(config);
  const auto report = workflow.run();
  EXPECT_LT(report.inference_span.start, report.preprocess_span.end);
  EXPECT_GT(report.inference_span.end, report.preprocess_span.end);
}

TEST_F(EomlIntegration, LatencyBreakdownPopulated) {
  EomlWorkflow workflow(small_config());
  const auto report = workflow.run();
  // Fig. 7 quantities: launch ~5.6 s, slurm ~config latency, flow action
  // overhead ~50 ms, trigger gap bounded by the poll interval.
  EXPECT_NEAR(report.download_launch_latency, 5.6, 0.5);
  EXPECT_NEAR(report.slurm_allocation_latency, 1.5, 0.5);
  EXPECT_NEAR(report.mean_flow_action_overhead, 0.05, 0.01);
  EXPECT_GT(report.monitor_trigger_gap, 0.0);
  EXPECT_LE(report.monitor_trigger_gap, 1.0 + 0.2);
}

TEST_F(EomlIntegration, TimelineShowsStagedWorkers) {
  auto config = small_config();
  config.download_workers = 3;
  config.preprocess_nodes = 4;
  config.workers_per_node = 8;
  config.inference_workers = 1;
  config.max_files = 20;
  EomlWorkflow workflow(config);
  const auto report = workflow.run();
  EXPECT_EQ(report.timeline.stage("download").peak(), 3);
  EXPECT_GT(report.timeline.stage("preprocess").peak(), 8);
  EXPECT_EQ(report.timeline.stage("inference").peak(), 1);
  // All stages drain to zero.
  for (const auto& stage : report.timeline.stages())
    EXPECT_EQ(stage.transitions.back().second, 0) << stage.stage;
}

TEST_F(EomlIntegration, ShipmentPreservesContentIntegrity) {
  EomlWorkflow workflow(small_config());
  workflow.run();
  // Every file on Orion parses as a labelled tile container.
  for (const auto& info : workflow.orion_fs().list("aicca/*.ncl")) {
    const auto summary =
        preprocess::read_tile_summary(workflow.orion_fs(), info.path);
    EXPECT_TRUE(summary.has_labels) << info.path;
  }
}

TEST_F(EomlIntegration, ProvenanceRecordsOneRunPerFile) {
  EomlWorkflow workflow(small_config());
  const auto report = workflow.run();
  EXPECT_EQ(report.provenance.size(), report.labeled_files);
  for (const auto& run : report.provenance.runs()) {
    EXPECT_TRUE(run.succeeded);
    EXPECT_EQ(run.flow_name, "aicca-inference");
    ASSERT_EQ(run.states.size(), 4u);  // infer, append, move, done
  }
}

TEST_F(EomlIntegration, ElasticBlocksAlsoComplete) {
  auto config = small_config();
  config.elastic = true;
  config.block.nodes_per_block = 1;
  config.block.init_blocks = 1;
  config.block.max_blocks = 4;
  config.block.idle_timeout = 5.0;
  EomlWorkflow workflow(config);
  const auto report = workflow.run();
  EXPECT_EQ(report.shipped_files, report.granules);
  EXPECT_GT(report.total_tiles, 0u);
}

TEST_F(EomlIntegration, MaterializedContentRunsRealTilerAndModel) {
  auto config = small_config();
  config.max_files = 4;
  config.materialize = true;
  config.geometry = modis::GranuleGeometry{64, 48, 6};
  config.tiler.tile_size = 16;
  config.tiler.channels = 6;
  config.model_path = "models/ricc.hdfl";

  EomlWorkflow workflow(config);

  // Stage a RICC model with centroids onto the Defiant filesystem; the
  // workflow loads it lazily at the first inference.
  ml::RiccConfig mc;
  mc.tile_size = 16;
  mc.channels = 6;
  mc.base_channels = 4;
  mc.conv_blocks = 2;
  mc.latent_dim = 8;
  mc.num_classes = 42;
  ml::RiccModel model(mc);
  util::Rng rng(1);
  model.set_centroids(ml::Tensor::he_normal({42, 8}, rng));
  workflow.defiant_fs().write_file("models/ricc.hdfl",
                                   model.save().serialize());

  const auto report = workflow.run();
  EXPECT_EQ(report.granules, 4u);
  EXPECT_EQ(report.shipped_files, 4u);
  // Labels on Orion must match what the staged model predicts.
  ml::RiccModel reference(mc);
  util::Rng rng2(1);
  reference.set_centroids(ml::Tensor::he_normal({42, 8}, rng2));
  for (const auto& info : workflow.orion_fs().list("aicca/*.ncl")) {
    const auto file =
        preprocess::read_tile_file(workflow.orion_fs(), info.path);
    if (!file.has_var("tiles")) continue;
    const auto tiles = preprocess::tiles_from_ncl(file);
    const auto labels = file.var("label").as_i32();
    ASSERT_EQ(labels.size(), tiles.size());
    for (std::size_t i = 0; i < tiles.size(); ++i) {
      ml::Tensor input({tiles[i].channels, tiles[i].tile_size,
                        tiles[i].tile_size},
                       tiles[i].data);
      ASSERT_EQ(labels[i], reference.predict(input)) << info.path << " #" << i;
    }
  }
}

TEST_F(EomlIntegration, MaterializedFastPathStreamsUnderTileBudget) {
  // Fused fp32 encode + bounded-memory tile streaming must reproduce the
  // classic path's labels bit-for-bit while respecting the tile budget.
  auto config = small_config();
  config.max_files = 4;
  config.materialize = true;
  config.geometry = modis::GranuleGeometry{64, 48, 6};
  config.tiler.tile_size = 16;
  config.tiler.channels = 6;
  config.model_path = "models/ricc.hdfl";
  config.encode_path = "fused";
  config.inference_tile_budget = 6;
  config.inference_batch = 3;

  EomlWorkflow workflow(config);
  ml::RiccConfig mc;
  mc.tile_size = 16;
  mc.channels = 6;
  mc.base_channels = 4;
  mc.conv_blocks = 2;
  mc.latent_dim = 8;
  mc.num_classes = 42;
  ml::RiccModel model(mc);
  util::Rng rng(1);
  model.set_centroids(ml::Tensor::he_normal({42, 8}, rng));
  workflow.defiant_fs().write_file("models/ricc.hdfl",
                                   model.save().serialize());

  const auto report = workflow.run();
  EXPECT_EQ(report.granules, 4u);
  EXPECT_GT(report.inference_streamed_batches, 0u);
  EXPECT_LE(report.inference_peak_tiles_resident,
            config.inference_tile_budget);
  EXPECT_GT(report.inference_peak_tiles_resident, 0u);

  // Labels on Orion must equal the layer-path reference predictions.
  ml::RiccModel reference(mc);
  util::Rng rng2(1);
  reference.set_centroids(ml::Tensor::he_normal({42, 8}, rng2));
  std::size_t checked = 0;
  for (const auto& info : workflow.orion_fs().list("aicca/*.ncl")) {
    const auto file =
        preprocess::read_tile_file(workflow.orion_fs(), info.path);
    if (!file.has_var("tiles")) continue;
    const auto tiles = preprocess::tiles_from_ncl(file);
    const auto labels = file.var("label").as_i32();
    ASSERT_EQ(labels.size(), tiles.size());
    for (std::size_t i = 0; i < tiles.size(); ++i) {
      ml::Tensor input({tiles[i].channels, tiles[i].tile_size,
                        tiles[i].tile_size},
                       tiles[i].data);
      ASSERT_EQ(labels[i], reference.predict(input)) << info.path << " #" << i;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(EomlIntegration, MaterializedPseudoLabelPath) {
  auto config = small_config();
  config.max_files = 3;
  config.materialize = true;
  config.geometry = modis::GranuleGeometry{64, 48, 6};
  config.tiler.tile_size = 16;
  config.tiler.channels = 6;
  EomlWorkflow workflow(config);
  const auto report = workflow.run();
  EXPECT_EQ(report.granules, 3u);
  EXPECT_EQ(report.shipped_files, 3u);
  // Materialized output carries real pixel data + labels end-to-end.
  bool any_tiles = false;
  for (const auto& info : workflow.orion_fs().list("aicca/*.ncl")) {
    const auto file =
        preprocess::read_tile_file(workflow.orion_fs(), info.path);
    if (file.has_var("tiles")) {
      any_tiles = true;
      ASSERT_TRUE(file.has_var("label"));
      const auto labels = file.var("label").as_i32();
      for (const auto label : labels) {
        ASSERT_GE(label, 0);
        ASSERT_LT(label, 42);
      }
    }
  }
  EXPECT_TRUE(any_tiles);
}

TEST_F(EomlIntegration, EventBusPublishesStageLifecycle) {
  EomlWorkflow workflow(small_config());
  std::vector<std::string> events;  // "stage/event"
  workflow.events().subscribe("workflow", [&](const util::YamlNode& event) {
    events.push_back(event["stage"].as_string() + "/" +
                     event["event"].as_string());
  });
  workflow.run();
  // Ordering: download brackets first, shipment completion last.
  ASSERT_GE(events.size(), 8u);
  EXPECT_EQ(events.front(), "download/started");
  EXPECT_EQ(events[1], "download/completed");
  EXPECT_EQ(events[2], "preprocess/started");
  EXPECT_EQ(events.back(), "shipment/completed");
  // Every stage appears with both lifecycle events.
  for (const char* expected :
       {"preprocess/completed", "inference/started", "inference/completed",
        "shipment/started"}) {
    EXPECT_NE(std::find(events.begin(), events.end(), expected), events.end())
        << expected;
  }
}

TEST_F(EomlIntegration, NightGranulesIncludedStillComplete) {
  // With daytime_only off the workload includes night granules that yield
  // zero tiles: inference flows still run over their empty manifests and
  // shipment moves the labelled (possibly empty) files — no deadlock.
  auto config = small_config();
  config.daytime_only = false;
  config.max_files = 8;
  EomlWorkflow workflow(config);
  const auto report = workflow.run();
  EXPECT_EQ(report.granules, 8u);
  EXPECT_EQ(report.shipped_files, 8u);
  EXPECT_EQ(report.labeled_tiles, report.total_tiles);
}

TEST_F(EomlIntegration, AquaSatelliteWorks) {
  auto config = small_config();
  config.satellite = modis::Satellite::kAqua;
  config.max_files = 6;
  EomlWorkflow workflow(config);
  const auto report = workflow.run();
  EXPECT_EQ(report.granules, 6u);
  EXPECT_EQ(report.shipped_files, 6u);
  // Aqua filenames use the MYD prefix.
  for (const auto& info : workflow.orion_fs().list("aicca/*.ncl"))
    EXPECT_NE(info.path.find("MYD021KM"), std::string::npos) << info.path;
}

TEST_F(EomlIntegration, MultiDaySpan) {
  auto config = small_config();
  config.span = modis::DaySpan{2022, 1, 2};
  config.max_files = 10;
  EomlWorkflow workflow(config);
  const auto report = workflow.run();
  EXPECT_EQ(report.granules, 10u);
  EXPECT_EQ(report.shipped_files, 10u);
}

TEST_F(EomlIntegration, SingleFileSingleWorkerMinimalPath) {
  auto config = small_config();
  config.max_files = 1;
  config.download_workers = 1;
  config.preprocess_nodes = 1;
  config.workers_per_node = 1;
  config.shipment_streams = 1;
  EomlWorkflow workflow(config);
  const auto report = workflow.run();
  EXPECT_EQ(report.granules, 1u);
  EXPECT_EQ(report.shipped_files, 1u);
  EXPECT_GT(report.total_tiles, 0u);
}

TEST_F(EomlIntegration, RunTwiceThrows) {
  EomlWorkflow workflow(small_config());
  workflow.run();
  EXPECT_THROW(workflow.run(), std::logic_error);
}

TEST_F(EomlIntegration, DeterministicAcrossRuns) {
  auto run_once = [] {
    EomlWorkflow workflow(small_config());
    return workflow.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_tiles, b.total_tiles);
  EXPECT_EQ(a.download.total_bytes, b.download.total_bytes);
}

TEST_F(EomlIntegration, StreamingOverlapsDownloadAndMatchesBarrierOutput) {
  auto config = small_config();
  config.max_files = 16;
  EomlWorkflow barrier_wf(config);
  const auto barrier = barrier_wf.run();
  config.scheduling = SchedulingMode::kStreaming;
  EomlWorkflow streaming_wf(config);
  const auto streaming = streaming_wf.run();

  EXPECT_EQ(streaming.scheduling, SchedulingMode::kStreaming);
  // Identical work product in both modes...
  EXPECT_EQ(streaming.granules, barrier.granules);
  EXPECT_EQ(streaming.total_tiles, barrier.total_tiles);
  EXPECT_EQ(streaming.labeled_tiles, barrier.labeled_tiles);
  EXPECT_EQ(streaming.shipped_files, barrier.shipped_files);
  EXPECT_EQ(streaming.incomplete_granules, 0u);
  // ...but preprocessing starts while downloads are still in flight, the
  // stages genuinely overlap, and the makespan shrinks.
  EXPECT_LT(streaming.preprocess_span.start, streaming.download_span.end);
  EXPECT_GT(streaming.download_preprocess_overlap(), 0.0);
  EXPECT_DOUBLE_EQ(barrier.download_preprocess_overlap(), 0.0);
  EXPECT_LT(streaming.makespan, barrier.makespan);
  // Per-granule dwell collapses from "wait for the whole stage" to
  // "queue + tile".
  EXPECT_LT(streaming.dwell_p50(), barrier.dwell_p50());
}

TEST_F(EomlIntegration, GranuleReadyObservableInBothModes) {
  for (const auto mode :
       {SchedulingMode::kBarrier, SchedulingMode::kStreaming}) {
    auto config = small_config();
    config.scheduling = mode;
    EomlWorkflow workflow(config);
    std::vector<flow::ReadyGranule> ready;
    workflow.events().subscribe(
        flow::topics::kGranuleReady, [&](const util::YamlNode& node) {
          const auto parsed = flow::ReadyGranule::from_yaml(node);
          ASSERT_TRUE(parsed.has_value());
          ready.push_back(*parsed);
        });
    const auto report = workflow.run();
    // One granule.ready per whole triplet, decodable by any subscriber.
    EXPECT_EQ(ready.size(), report.granules) << to_string(mode);
    for (const auto& granule : ready) {
      EXPECT_GE(granule.ready_at, granule.first_file_at);
      EXPECT_FALSE(granule.mod02_path.empty());
      EXPECT_FALSE(granule.mod06_path.empty());
    }
    // The dwell metric (ready -> tiles written) is recorded in both modes.
    EXPECT_EQ(report.granule_dwell.size(), report.granules) << to_string(mode);
    EXPECT_GE(report.dwell_p95(), report.dwell_p50());
  }
}

TEST_F(EomlIntegration, StreamingLifecycleStartsPreprocessBeforeDownloadEnds) {
  auto config = small_config();
  config.scheduling = SchedulingMode::kStreaming;
  EomlWorkflow workflow(config);
  std::vector<std::string> events;
  workflow.events().subscribe("workflow", [&](const util::YamlNode& event) {
    events.push_back(event["stage"].as_string() + "/" +
                     event["event"].as_string());
  });
  workflow.run();
  const auto pos = [&](const std::string& name) {
    return std::find(events.begin(), events.end(), name) - events.begin();
  };
  EXPECT_LT(pos("preprocess/started"), pos("download/completed"));
  EXPECT_LT(pos("preprocess/completed"), pos("shipment/completed"));
  EXPECT_EQ(events.back(), "shipment/completed");
}

TEST_F(EomlIntegration, StreamingElasticBlocksAlsoComplete) {
  auto config = small_config();
  config.scheduling = SchedulingMode::kStreaming;
  config.elastic = true;
  config.block.nodes_per_block = 1;
  config.block.init_blocks = 1;
  config.block.max_blocks = 4;
  config.block.idle_timeout = 5.0;
  EomlWorkflow workflow(config);
  const auto report = workflow.run();
  EXPECT_EQ(report.shipped_files, report.granules);
  EXPECT_GT(report.total_tiles, 0u);
}

TEST_F(EomlIntegration, StreamingDeterministicAcrossRuns) {
  auto run_once = [] {
    auto config = small_config();
    config.scheduling = SchedulingMode::kStreaming;
    EomlWorkflow workflow(config);
    return workflow.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_tiles, b.total_tiles);
}

TEST_F(EomlIntegration, StreamingSingleWorkerMinimalPath) {
  auto config = small_config();
  config.scheduling = SchedulingMode::kStreaming;
  config.max_files = 1;
  config.download_workers = 1;
  config.preprocess_nodes = 1;
  config.workers_per_node = 1;
  config.shipment_streams = 1;
  EomlWorkflow workflow(config);
  const auto report = workflow.run();
  EXPECT_EQ(report.granules, 1u);
  EXPECT_EQ(report.shipped_files, 1u);
}

}  // namespace
}  // namespace mfw::pipeline
