// Unit tests for the trace-analysis engine (obs/analyze.hpp) and the
// bounded-memory rollups (obs/rollup.hpp): a hand-built synthetic trace with
// exact expected critical path, utilization, and straggler output; rollup
// quantiles vs exact percentiles (within the documented sketch error);
// window eviction; and TraceRecorder retention-policy memory bounds.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "obs/analyze.hpp"
#include "obs/rollup.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace mfw::obs {
namespace {

// ---------------------------------------------------------------------------
// Synthetic trace: 5 granules g1..g5 through download (2 workers) ->
// preprocess (2 nodes, 3 lanes) -> one inference flow -> shipment. Every
// number below is chosen so the analyzer's outputs are exactly predictable.
//
//   downloads  w0: g1 [0,10]   g3 [10,20]  g5 [50,100] (slow, 1 attempt)
//              w1: g2 [0,10]   g4 [10,50]  (3 attempts -> wan-retry)
//   preprocess n0/w0: g1 [100,130] payload 300 (input-size straggler)
//              n0/w1: g2 [100,110]  g4 [110,120] (qw 10)
//              n1/w0: g3 [100,110]  g5 [110,115] (qw 10)
//   flow run1 (g1): [131,140] = infer [131.05,138] append [138.05,139]
//              move [139.05,140], 0.05 s orchestration gaps
//   shipment   [140,180]
void build_synthetic(TraceRecorder& rec) {
  rec.set_enabled(true);
  rec.begin_process("synthetic");

  rec.add_span("stages/download", "stage", "download", 0.0, 100.0);
  rec.add_span("stages/preprocess", "stage", "preprocess", 100.0, 130.0);
  rec.add_span("stages/inference", "stage", "inference", 131.0, 140.0);
  rec.add_span("stages/shipment", "stage", "shipment", 140.0, 180.0);

  const auto dl = [&](const char* worker, const char* name,
                      const char* granule, double start, double end,
                      const char* attempts) {
    rec.add_span(worker, "download", name, start, end,
                 {{"granule", granule}, {"attempts", attempts},
                  {"bytes", "1000"}, {"status", "ok"}});
    rec.add_instant("flow/granules", "flow", "granule.ready", end,
                    {{"key", granule}});
  };
  dl("download/w0", "d1", "g1", 0.0, 10.0, "1");
  dl("download/w1", "d2", "g2", 0.0, 10.0, "1");
  dl("download/w0", "d3", "g3", 10.0, 20.0, "1");
  dl("download/w1", "d4", "g4", 10.0, 50.0, "3");
  dl("download/w0", "d5", "g5", 50.0, 100.0, "1");

  const auto pp = [&](const char* lane, const char* name, const char* granule,
                      double start, double end, const char* queue_wait,
                      const char* payload) {
    rec.add_span(lane, "compute", name, start, end,
                 {{"granule", granule}, {"queue_wait_s", queue_wait},
                  {"payload", payload}, {"status", "ok"}});
  };
  pp("preprocess/node0/w0", "p1", "g1", 100.0, 130.0, "0", "300");
  pp("preprocess/node0/w1", "p2", "g2", 100.0, 110.0, "0", "100");
  pp("preprocess/node1/w0", "p3", "g3", 100.0, 110.0, "0", "100");
  pp("preprocess/node0/w1", "p4", "g4", 110.0, 120.0, "10", "100");
  pp("preprocess/node1/w0", "p5", "g5", 110.0, 115.0, "10", "100");

  rec.add_span("flows/run1", "flow", "aicca-inference", 131.0, 140.0,
               {{"granule", "g1"}, {"status", "ok"}});
  rec.add_span("flows/run1", "flow.state", "infer", 131.05, 138.0,
               {{"orchestration_overhead_s", "0.05"}});
  rec.add_span("flows/run1", "flow.state", "append", 138.05, 139.0,
               {{"orchestration_overhead_s", "0.05"}});
  rec.add_span("flows/run1", "flow.state", "move", 139.05, 140.0,
               {{"orchestration_overhead_s", "0.05"}});
}

AnalyzeOptions synthetic_options() {
  AnalyzeOptions options;
  options.min_group = 2;     // groups of 5 must be scanned
  options.straggler_k = 2.5; // p1 at 3x the median must be flagged
  return options;
}

const StageStat* stage_named(const ProcessReport& process,
                             const std::string& name) {
  for (const auto& stage : process.stages)
    if (stage.stage == name) return &stage;
  return nullptr;
}

const StragglerGroup* group_named(const ProcessReport& process,
                                  const std::string& name) {
  for (const auto& group : process.stragglers)
    if (group.group == name) return &group;
  return nullptr;
}

TEST(Analyze, SyntheticProcessShape) {
  TraceRecorder rec;
  build_synthetic(rec);
  const auto report = analyze_trace(rec, synthetic_options());

  // The implicit "mfw" process has no events and is skipped.
  ASSERT_EQ(report.processes.size(), 1u);
  const auto& process = report.processes[0];
  EXPECT_EQ(process.process, "synthetic");
  EXPECT_DOUBLE_EQ(process.start, 0.0);
  EXPECT_DOUBLE_EQ(process.end, 180.0);
  EXPECT_DOUBLE_EQ(process.makespan(), 180.0);
  EXPECT_EQ(process.spans, 18u);
  EXPECT_EQ(process.instants, 5u);
  // Dominant stage = longest stage span, matching a rendered timeline.
  EXPECT_EQ(process.dominant_stage, "download");
}

TEST(Analyze, SyntheticStageAndNodeUtilization) {
  TraceRecorder rec;
  build_synthetic(rec);
  const auto report = analyze_trace(rec, synthetic_options());
  ASSERT_EQ(report.processes.size(), 1u);
  const auto& process = report.processes[0];

  const StageStat* download = stage_named(process, "download");
  ASSERT_NE(download, nullptr);
  EXPECT_EQ(download->tasks, 5u);
  EXPECT_EQ(download->workers, 2u);
  EXPECT_DOUBLE_EQ(download->busy_s, 120.0);
  EXPECT_NEAR(download->utilization, 120.0 / (100.0 * 2), 1e-12);
  EXPECT_DOUBLE_EQ(download->p50, 10.0);
  EXPECT_DOUBLE_EQ(download->max, 50.0);

  const StageStat* preprocess = stage_named(process, "preprocess");
  ASSERT_NE(preprocess, nullptr);
  EXPECT_EQ(preprocess->tasks, 5u);
  EXPECT_EQ(preprocess->workers, 3u);
  EXPECT_DOUBLE_EQ(preprocess->busy_s, 65.0);
  EXPECT_NEAR(preprocess->utilization, 65.0 / (30.0 * 3), 1e-12);
  EXPECT_DOUBLE_EQ(preprocess->queue_max, 10.0);

  // Stage-span-only rows still appear (no task group).
  const StageStat* shipment = stage_named(process, "shipment");
  ASSERT_NE(shipment, nullptr);
  EXPECT_EQ(shipment->tasks, 0u);
  EXPECT_DOUBLE_EQ(shipment->start, 140.0);
  EXPECT_DOUBLE_EQ(shipment->end, 180.0);

  // Per-node occupancy: node0 runs p1+p2+p4 on 2 lanes, node1 p3+p5 on 1.
  const NodeStat* node0 = nullptr;
  const NodeStat* node1 = nullptr;
  for (const auto& node : process.nodes) {
    if (node.stage != "preprocess") continue;
    if (node.node == "node0") node0 = &node;
    if (node.node == "node1") node1 = &node;
  }
  ASSERT_NE(node0, nullptr);
  ASSERT_NE(node1, nullptr);
  EXPECT_EQ(node0->workers, 2u);
  EXPECT_EQ(node0->tasks, 3u);
  EXPECT_NEAR(node0->utilization, 50.0 / (30.0 * 2), 1e-12);
  EXPECT_EQ(node1->workers, 1u);
  EXPECT_NEAR(node1->utilization, 15.0 / 30.0, 1e-12);

  // The binned timeline conserves busy time.
  for (const auto& timeline : process.timelines) {
    if (timeline.stage != "preprocess") continue;
    double busy = 0.0;
    for (const double b : timeline.busy) busy += b * timeline.bin_s;
    EXPECT_NEAR(busy, 65.0, 1e-9);
  }
}

TEST(Analyze, SyntheticCriticalPathTilesTheMakespan) {
  TraceRecorder rec;
  build_synthetic(rec);
  const auto report = analyze_trace(rec, synthetic_options());
  ASSERT_EQ(report.processes.size(), 1u);
  const auto& path = report.processes[0].critical_path;

  EXPECT_DOUBLE_EQ(path.makespan, 180.0);
  EXPECT_NEAR(path.length, 180.0, 1e-9);
  EXPECT_NEAR(path.coverage, 1.0, 1e-12);
  EXPECT_EQ(path.dominant_stage, "download");

  // Exact tiling: pipeline [0,50] -> d5 [50,100] -> p1 [100,130] ->
  // monitor-wait [130,131] -> flow (3 states + 3 gaps) -> shipment.
  ASSERT_EQ(path.segments.size(), 11u);
  EXPECT_EQ(path.segments[0].kind, "download-pipeline");
  EXPECT_DOUBLE_EQ(path.segments[0].start, 0.0);
  EXPECT_DOUBLE_EQ(path.segments[0].end, 50.0);
  EXPECT_EQ(path.segments[1].kind, "download");
  EXPECT_EQ(path.segments[1].granule, "g5");
  EXPECT_EQ(path.segments[2].kind, "preprocess");
  EXPECT_EQ(path.segments[2].granule, "g1");
  EXPECT_EQ(path.segments[3].kind, "monitor-wait");
  EXPECT_DOUBLE_EQ(path.segments[3].start, 130.0);
  EXPECT_DOUBLE_EQ(path.segments[3].end, 131.0);
  EXPECT_EQ(path.segments[5].kind, "inference");
  EXPECT_EQ(path.segments[5].granule, "g1");
  EXPECT_EQ(path.segments[10].kind, "shipment");

  // Contiguous tiling: each segment starts where the previous ended.
  for (std::size_t i = 1; i < path.segments.size(); ++i)
    EXPECT_NEAR(path.segments[i].start, path.segments[i - 1].end, 1e-9);

  // Per-stage attribution: 100 s download, 30 preprocess, 10 inference
  // (monitor-wait + orchestration + flow states), 40 shipment.
  double download_s = 0, preprocess_s = 0, inference_s = 0, shipment_s = 0;
  for (const auto& [stage, seconds] : path.by_stage) {
    if (stage == "download") download_s = seconds;
    if (stage == "preprocess") preprocess_s = seconds;
    if (stage == "inference") inference_s = seconds;
    if (stage == "shipment") shipment_s = seconds;
  }
  EXPECT_NEAR(download_s, 100.0, 1e-9);
  EXPECT_NEAR(preprocess_s, 30.0, 1e-9);
  EXPECT_NEAR(inference_s, 10.0, 1e-9);
  EXPECT_NEAR(shipment_s, 40.0, 1e-9);
}

TEST(Analyze, SyntheticStragglersWithAttribution) {
  TraceRecorder rec;
  build_synthetic(rec);
  const auto report = analyze_trace(rec, synthetic_options());
  ASSERT_EQ(report.processes.size(), 1u);
  const auto& process = report.processes[0];

  const StragglerGroup* download = group_named(process, "download");
  ASSERT_NE(download, nullptr);
  EXPECT_EQ(download->count, 5u);
  EXPECT_DOUBLE_EQ(download->median, 10.0);
  ASSERT_EQ(download->flagged_count, 2u);
  // Sorted by duration descending: d5 (50 s, single attempt -> the WAN was
  // slow) then d4 (40 s, 3 attempts -> retries).
  EXPECT_EQ(download->flagged[0].name, "d5");
  EXPECT_EQ(download->flagged[0].attribution, "wan-slow");
  EXPECT_DOUBLE_EQ(download->flagged[0].ratio, 5.0);
  EXPECT_EQ(download->flagged[1].name, "d4");
  EXPECT_EQ(download->flagged[1].attribution, "wan-retry");
  EXPECT_EQ(download->flagged[1].granule, "g4");
  EXPECT_DOUBLE_EQ(download->flagged[1].ratio, 4.0);

  const StragglerGroup* preprocess = group_named(process, "preprocess");
  ASSERT_NE(preprocess, nullptr);
  EXPECT_DOUBLE_EQ(preprocess->median, 10.0);
  ASSERT_EQ(preprocess->flagged_count, 1u);
  // p1: 30 s at payload 300 vs group median payload 100 -> input-size.
  EXPECT_EQ(preprocess->flagged[0].name, "p1");
  EXPECT_EQ(preprocess->flagged[0].granule, "g1");
  EXPECT_EQ(preprocess->flagged[0].attribution, "input-size");
  EXPECT_DOUBLE_EQ(preprocess->flagged[0].ratio, 3.0);
}

TEST(Analyze, ReportSerializesAndRenders) {
  TraceRecorder rec;
  build_synthetic(rec);
  const auto report = analyze_trace(rec, synthetic_options());
  const auto json = report.to_json();
  EXPECT_NE(json.find("\"schema\": \"mfw.trace_report/v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"process\": \"synthetic\""), std::string::npos);
  EXPECT_NE(json.find("\"dominant_stage\": \"download\""), std::string::npos);
  EXPECT_NE(json.find("\"critical_path\""), std::string::npos);
  EXPECT_NE(json.find("wan-retry"), std::string::npos);
  const auto text = report.render_text();
  EXPECT_NE(text.find("synthetic"), std::string::npos);
  EXPECT_NE(text.find("critical path"), std::string::npos);
}

TEST(Analyze, EmptyRecorderYieldsNoProcesses) {
  TraceRecorder rec;
  rec.set_enabled(true);
  const auto report = analyze_trace(rec);
  EXPECT_TRUE(report.processes.empty());
}

// ---------------------------------------------------------------------------
// Rollups

TEST(Rollup, TrackStageMapping) {
  EXPECT_EQ(track_stage("preprocess/node3/w1"), "preprocess");
  EXPECT_EQ(track_stage("download/w0"), "download");
  EXPECT_EQ(track_stage("flow/granules"), "flow");
  EXPECT_EQ(track_stage("standalone"), "standalone");
}

TEST(Rollup, QuantilesMatchExactWithinDocumentedError) {
  // Lognormal service times (the shape of the WAN/download distributions):
  // sketch quantiles must stay within LogHistogram::kMaxRelativeError of the
  // exact linear-interpolated percentiles.
  util::Rng rng(42);
  WindowedSeries series({60.0, 256});
  std::vector<double> values;
  values.reserve(20'000);
  for (int i = 0; i < 20'000; ++i) {
    const double v = rng.lognormal_median(8.0, 0.6);
    values.push_back(v);
    series.add(static_cast<double>(i) * 0.01, v);
  }
  const double exact_p50 = util::percentile(values, 50.0);
  const double exact_p99 = util::percentile(values, 99.0);
  EXPECT_NEAR(series.p50(), exact_p50,
              exact_p50 * LogHistogram::kMaxRelativeError);
  EXPECT_NEAR(series.p99(), exact_p99,
              exact_p99 * LogHistogram::kMaxRelativeError);
  // Whole-stream aggregates are exact regardless of windowing.
  EXPECT_EQ(series.count(), 20'000u);
  double sum = 0.0, mx = 0.0;
  for (const double v : values) {
    sum += v;
    mx = std::max(mx, v);
  }
  EXPECT_NEAR(series.sum(), sum, 1e-6 * sum);
  EXPECT_DOUBLE_EQ(series.max(), mx);
}

TEST(Rollup, WindowEvictionBoundsMemory) {
  WindowedSeries series({1.0, 64});
  for (int w = 0; w < 200; ++w)
    for (int i = 0; i < 3; ++i)
      series.add(static_cast<double>(w) + 0.2 * i, 1.0);
  EXPECT_EQ(series.windows().size(), 64u);
  EXPECT_EQ(series.evicted_windows(), 200u - 64u);
  // Eviction drops windows, never totals.
  EXPECT_EQ(series.count(), 600u);
  EXPECT_DOUBLE_EQ(series.sum(), 600.0);
  // The surviving ring covers the most recent windows.
  EXPECT_EQ(series.windows().front().index, 200 - 64);
  EXPECT_EQ(series.windows().back().index, 199);
}

TEST(Rollup, SpanRollupAggregatesByStageSeries) {
  TraceRecorder rec;
  rec.set_enabled(true);
  SpanRollup rollup({60.0, 16});
  rec.set_span_sink(&rollup);
  rec.add_span("preprocess/node0/w0", "compute", "p", 0.0, 4.0,
               {{"queue_wait_s", "1.5"}});
  rec.add_span("preprocess/node1/w2", "compute", "p", 2.0, 8.0,
               {{"queue_wait_s", "0.5"}});
  rec.add_span("download/w0", "download", "d", 0.0, 30.0);
  rec.add_instant("flow/granules", "flow", "granule.ready", 30.0);
  rec.set_span_sink(nullptr);

  EXPECT_EQ(rollup.spans_seen(), 3u);
  EXPECT_EQ(rollup.instants_seen(), 1u);
  const auto durations = rollup.series("preprocess/compute.duration_s");
  EXPECT_EQ(durations.count(), 2u);
  EXPECT_DOUBLE_EQ(durations.sum(), 10.0);
  const auto waits = rollup.series("preprocess/compute.queue_wait_s");
  EXPECT_EQ(waits.count(), 2u);
  EXPECT_DOUBLE_EQ(waits.sum(), 2.0);
  const auto dl = rollup.series("download/download.duration_s");
  EXPECT_EQ(dl.count(), 1u);
  EXPECT_NE(rollup.to_json().find("preprocess/compute.duration_s"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Retention policy

TEST(Retention, StatsOnlyBoundsRecorderMemory) {
  // A counting sink must see every span even while retention drops them.
  struct CountingSink : SpanSink {
    std::size_t seen = 0;
    void on_span(const TraceTrack&, const TraceSpan&) override { ++seen; }
  } sink;

  TraceRecorder rec;
  rec.set_enabled(true);
  rec.set_retention({RetentionMode::kStatsOnly, 10, 5});
  rec.set_span_sink(&sink);
  for (int i = 0; i < 100; ++i) {
    const auto span = rec.begin_span("w", "compute", "task");
    rec.end_span(span);
  }
  rec.set_span_sink(nullptr);

  EXPECT_EQ(sink.seen, 100u);
  EXPECT_EQ(rec.observed_span_count(), 100u);
  EXPECT_EQ(rec.span_count(), 5u);  // 1-in-10 sample, capped at 5
  EXPECT_EQ(rec.dropped_span_count(), 95u);
  EXPECT_EQ(rec.open_span_count(), 0u);

  // Instants are counted, not stored.
  rec.instant("w", "flow", "tick");
  EXPECT_EQ(rec.instant_count(), 0u);
  EXPECT_EQ(rec.dropped_instant_count(), 1u);

  // Retention policy and bounded-mode counters survive clear(); the default
  // policy restores full recording.
  rec.clear();
  EXPECT_EQ(rec.observed_span_count(), 0u);
  EXPECT_EQ(rec.retention().sample_every, 10u);
  rec.set_retention({});
  const auto span = rec.begin_span("w", "compute", "task");
  rec.end_span(span);
  EXPECT_EQ(rec.span_count(), 1u);
}

TEST(Retention, FullModeIsUnchangedByDefaultPolicy) {
  // kFull + no sink must behave exactly like the legacy recorder: every
  // span retained, ids valid, nothing dropped.
  TraceRecorder rec;
  rec.set_enabled(true);
  for (int i = 0; i < 50; ++i) {
    const auto span = rec.begin_span("w", "c", "t");
    rec.end_span(span);
  }
  EXPECT_EQ(rec.span_count(), 50u);
  EXPECT_EQ(rec.observed_span_count(), 50u);
  EXPECT_EQ(rec.dropped_span_count(), 0u);
}

TEST(Retention, ModeSwitchWithOpenSpans) {
  // A span opened under kStatsOnly closes correctly after switching the
  // policy back to kFull (and vice versa): ids are mode-stable.
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.set_retention({RetentionMode::kStatsOnly, 1, 100});
  const auto bounded = rec.begin_span("w", "c", "bounded");
  rec.set_retention({});
  const auto full = rec.begin_span("w", "c", "full");
  rec.end_span(bounded);
  rec.end_span(full);
  EXPECT_EQ(rec.open_span_count(), 0u);
  EXPECT_EQ(rec.observed_span_count(), 2u);
}

}  // namespace
}  // namespace mfw::obs
