// Unit tests for cross-run trace differencing (obs/diff.hpp): a golden
// attribution test on hand-built reports where the expected makespan
// decomposition is known exactly, the report parser round-trip against the
// analyzer's own serialization, and the parse-error contract the CLI's exit
// codes ride on (schema mismatch vs truncation vs malformed JSON).
#include <gtest/gtest.h>

#include <string>

#include "obs/analyze.hpp"
#include "obs/diff.hpp"
#include "obs/trace.hpp"

namespace mfw::obs {
namespace {

// One-process report whose critical path tiles the makespan exactly:
// download contributes a fixed 60 s, preprocess and inference are knobs.
TraceReport make_report(double pp_path_s, double inf_path_s, double pp_p99) {
  TraceReport report;
  ProcessReport p;
  p.process = "eoml";
  p.start = 0.0;
  p.end = 60.0 + pp_path_s + inf_path_s;
  p.dominant_stage = "download";
  p.critical_path.makespan = p.end;
  p.critical_path.length = p.end;
  p.critical_path.coverage = 1.0;
  p.critical_path.dominant_stage = "download";
  p.critical_path.by_stage = {{"download", 60.0},
                              {"preprocess", pp_path_s},
                              {"inference", inf_path_s}};
  for (const char* name : {"download", "preprocess", "inference"}) {
    StageStat stage;
    stage.stage = name;
    stage.tasks = 8;
    stage.p99 = stage.stage == "preprocess" ? pp_p99 : 10.0;
    p.stages.push_back(stage);
  }
  report.processes.push_back(std::move(p));
  return report;
}

TEST(Diff, GoldenAttributionIsExact) {
  // A: 60 + 30 + 10 = 100 s.  B: 60 + 58 + 12 = 130 s.  The +30 s delta
  // decomposes exactly: preprocess +28 s (93.3%), inference +2 s (6.7%).
  const auto a = make_report(30.0, 10.0, 16.0);
  const auto b = make_report(58.0, 12.0, 32.0);
  const auto diff = diff_reports(a, b);

  ASSERT_EQ(diff.processes.size(), 1u);
  const auto& p = diff.processes[0];
  EXPECT_TRUE(p.regression);
  EXPECT_FALSE(p.improvement);
  EXPECT_DOUBLE_EQ(p.delta_s, 30.0);
  EXPECT_DOUBLE_EQ(p.attributed_s, 30.0);
  EXPECT_NEAR(p.attributed_share, 1.0, 1e-9);

  ASSERT_GE(p.findings.size(), 2u);
  EXPECT_EQ(p.findings[0].kind, "stage");
  EXPECT_EQ(p.findings[0].stage, "preprocess");
  EXPECT_DOUBLE_EQ(p.findings[0].delta_s, 28.0);
  EXPECT_NEAR(p.findings[0].share, 28.0 / 30.0, 1e-9);
  EXPECT_EQ(p.findings[1].stage, "inference");
  EXPECT_DOUBLE_EQ(p.findings[1].delta_s, 2.0);
  // The p99 doubling shows up as evidence on the top finding.
  EXPECT_NE(p.findings[0].detail.find("p99"), std::string::npos);

  EXPECT_NE(p.verdict.find("preprocess"), std::string::npos);
  EXPECT_NE(p.verdict.find("93% of the +30.00s makespan delta"),
            std::string::npos);
  EXPECT_TRUE(diff.regression());
  EXPECT_NE(diff.to_json().find("\"mfw.trace_diff/v1\""), std::string::npos);
  EXPECT_NE(diff.render_text().find(p.verdict), std::string::npos);
}

TEST(Diff, IdenticalRunsAreNoRegression) {
  const auto a = make_report(30.0, 10.0, 16.0);
  const auto diff = diff_reports(a, a);
  ASSERT_EQ(diff.processes.size(), 1u);
  EXPECT_FALSE(diff.processes[0].regression);
  EXPECT_FALSE(diff.processes[0].improvement);
  EXPECT_FALSE(diff.regression());
  EXPECT_NE(diff.processes[0].verdict.find("no regression"),
            std::string::npos);
}

TEST(Diff, ImprovementIsNotARegression) {
  const auto a = make_report(58.0, 12.0, 32.0);
  const auto b = make_report(30.0, 10.0, 16.0);
  const auto diff = diff_reports(a, b);
  ASSERT_EQ(diff.processes.size(), 1u);
  EXPECT_TRUE(diff.processes[0].improvement);
  EXPECT_FALSE(diff.regression());
  EXPECT_NE(diff.processes[0].verdict.find("improvement"), std::string::npos);
}

TEST(Diff, SubNoiseDeltaIsNoise) {
  const auto a = make_report(30.0, 10.0, 16.0);
  const auto b = make_report(30.02, 10.0, 16.0);  // +0.02 s < noise_abs_s
  const auto diff = diff_reports(a, b);
  EXPECT_FALSE(diff.regression());
  EXPECT_FALSE(diff.processes[0].improvement);
}

// Round-trip: the analyzer's own serialization parses back into a report
// that diffs clean against the original.
TEST(DiffParse, RoundTripsAnalyzerOutput) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.begin_process("p");
  rec.add_span("stages/download", "stage", "download", 0.0, 50.0);
  rec.add_span("download/w0", "download", "d1", 0.0, 20.0,
               {{"granule", "g1"}, {"bytes", "100"}, {"status", "ok"}});
  rec.add_span("download/w0", "download", "d2", 20.0, 50.0,
               {{"granule", "g2"}, {"bytes", "100"}, {"status", "ok"}});
  rec.add_span("stages/preprocess", "stage", "preprocess", 50.0, 70.0);
  rec.add_span("preprocess/node0/w0", "compute", "p1", 50.0, 60.0,
               {{"granule", "g1"}, {"queue_wait_s", "0"}});
  rec.add_span("preprocess/node0/w0", "compute", "p2", 60.0, 70.0,
               {{"granule", "g2"}, {"queue_wait_s", "10"}});
  const auto analysis = analyze_trace(rec);
  ASSERT_EQ(analysis.processes.size(), 1u);

  const auto parsed = parse_trace_report(analysis.to_json());
  ASSERT_EQ(parsed.processes.size(), 1u);
  const auto& want = analysis.processes[0];
  const auto& got = parsed.processes[0];
  EXPECT_EQ(got.process, want.process);
  EXPECT_NEAR(got.makespan(), want.makespan(), 1e-6);
  ASSERT_EQ(got.stages.size(), want.stages.size());
  for (std::size_t i = 0; i < got.stages.size(); ++i) {
    EXPECT_EQ(got.stages[i].stage, want.stages[i].stage);
    EXPECT_NEAR(got.stages[i].p99, want.stages[i].p99,
                1e-5 * (1.0 + want.stages[i].p99));
    EXPECT_EQ(got.stages[i].tasks, want.stages[i].tasks);
  }
  EXPECT_NEAR(got.critical_path.length, want.critical_path.length, 1e-4);
  ASSERT_EQ(got.critical_path.by_stage.size(),
            want.critical_path.by_stage.size());

  // A report diffed against its own serialization is exactly "no change".
  const auto diff = diff_reports(analysis, parsed);
  EXPECT_FALSE(diff.regression());
}

TEST(DiffParse, RejectsWrongSchemaTruncationAndGarbage) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.begin_process("p");
  rec.add_span("download/w0", "download", "d", 0.0, 1.0, {{"granule", "g"}});
  const std::string doc = analyze_trace(rec).to_json();

  // Schema version mismatch: clear message, not flagged as truncation.
  std::string wrong = doc;
  wrong.replace(wrong.find("mfw.trace_report/v1"),
                std::string("mfw.trace_report/v1").size(),
                "mfw.trace_report/v2");
  try {
    parse_trace_report(wrong);
    FAIL() << "expected ReportParseError";
  } catch (const ReportParseError& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported report schema"),
              std::string::npos);
    EXPECT_FALSE(e.truncated());
  }

  // Truncated file (killed writer): flagged as truncation.
  try {
    parse_trace_report(doc.substr(0, doc.size() / 2));
    FAIL() << "expected ReportParseError";
  } catch (const ReportParseError& e) {
    EXPECT_TRUE(e.truncated());
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }

  // Garbage and non-report documents.
  EXPECT_THROW(parse_trace_report("not json at all"), ReportParseError);
  EXPECT_THROW(parse_trace_report("[1, 2, 3]"), ReportParseError);
  EXPECT_THROW(parse_trace_report("{\"schema\": \"mfw.trace_report/v1\"}"),
               ReportParseError);
}

}  // namespace
}  // namespace mfw::obs
