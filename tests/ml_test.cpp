// Equivalence and determinism tests for the fast ML substrate: GEMM vs
// naive convolution (forward + backward), bitwise-reproducible batched
// encode and data-parallel training across pool sizes, and cached-NN Ward
// clustering against the full-rescan path.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ml/cluster.hpp"
#include "ml/kernels.hpp"
#include "ml/layers.hpp"
#include "ml/ricc.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace mfw::ml {
namespace {

// GEMM and naive conv accumulate in the same k-order, but FMA contraction
// and ±0.0 padding terms allow tiny drift; compare with a relative bound.
void expect_close(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float tol = 1e-4f * std::max(1.0f, std::abs(a[i]));
    ASSERT_NEAR(a[i], b[i], tol) << what << " element " << i;
  }
}

Tensor random_tensor(std::vector<int> shape, std::uint64_t seed) {
  Tensor t(std::move(shape));
  util::Rng rng(seed);
  for (std::size_t i = 0; i < t.size(); ++i)
    t[i] = static_cast<float>(rng.normal());
  return t;
}

struct NaiveGuard {
  ~NaiveGuard() { kernels::set_use_naive(false); }
};

TEST(ConvKernels, GemmMatchesNaiveAcrossShapes) {
  NaiveGuard guard;
  const int in_c = 3, out_c = 4, in_h = 9, in_w = 11;
  for (int kernel : {1, 3, 5}) {
    for (int stride : {1, 2}) {
      for (int pad : {0, 1, 2}) {
        if (in_h + 2 * pad < kernel) continue;
        util::Rng rng_a(42), rng_b(42);
        Conv2d naive(in_c, out_c, kernel, stride, pad, rng_a);
        Conv2d gemm(in_c, out_c, kernel, stride, pad, rng_b);
        const Tensor x = random_tensor({in_c, in_h, in_w}, 7);

        kernels::set_use_naive(true);
        const Tensor y_naive = naive.forward(x);
        kernels::set_use_naive(false);
        const Tensor y_gemm = gemm.forward(x);
        SCOPED_TRACE("kernel=" + std::to_string(kernel) +
                     " stride=" + std::to_string(stride) +
                     " pad=" + std::to_string(pad));
        expect_close(y_naive, y_gemm, "forward");

        const Tensor gy = random_tensor(y_naive.shape(), 13);
        kernels::set_use_naive(true);
        const Tensor gx_naive = naive.backward(gy);
        kernels::set_use_naive(false);
        const Tensor gx_gemm = gemm.backward(gy);
        expect_close(gx_naive, gx_gemm, "grad_input");

        const auto pa = naive.params();
        const auto pb = gemm.params();
        ASSERT_EQ(pa.size(), pb.size());
        for (std::size_t p = 0; p < pa.size(); ++p)
          expect_close(pa[p]->grad, pb[p]->grad, pa[p]->name.c_str());
      }
    }
  }
}

TEST(ConvKernels, SgemmSmallCase) {
  // 2x3 * 3x2 against hand-computed values, both accumulate modes.
  const float a[] = {1, 2, 3, 4, 5, 6};
  const float b[] = {7, 8, 9, 10, 11, 12};
  float c[] = {1, 1, 1, 1};
  kernels::sgemm(2, 2, 3, a, b, c, false);
  EXPECT_FLOAT_EQ(c[0], 58);
  EXPECT_FLOAT_EQ(c[1], 64);
  EXPECT_FLOAT_EQ(c[2], 139);
  EXPECT_FLOAT_EQ(c[3], 154);
  kernels::sgemm(2, 2, 3, a, b, c, true);
  EXPECT_FLOAT_EQ(c[0], 116);
  EXPECT_FLOAT_EQ(c[3], 308);
}

RiccConfig tiny_config() {
  RiccConfig config;
  config.tile_size = 8;
  config.channels = 2;
  config.base_channels = 4;
  config.conv_blocks = 2;
  config.latent_dim = 6;
  config.num_classes = 4;
  config.seed = 11;
  return config;
}

std::vector<Tensor> random_tiles(const RiccConfig& config, std::size_t n,
                                 std::uint64_t seed) {
  std::vector<Tensor> tiles;
  tiles.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    tiles.push_back(random_tensor(
        {config.channels, config.tile_size, config.tile_size}, seed + i));
  return tiles;
}

TEST(EncodeBatch, BitwiseIdenticalAcrossPoolSizes) {
  RiccModel model(tiny_config());
  const auto tiles = random_tiles(model.config(), 13, 100);
  const auto sequential = model.encode_batch(tiles, nullptr);
  ASSERT_EQ(sequential.size(), tiles.size());
  for (std::size_t threads : {1u, 3u}) {
    util::ThreadPool pool(threads);
    const auto pooled = model.encode_batch(tiles, &pool);
    ASSERT_EQ(pooled.size(), tiles.size());
    for (std::size_t i = 0; i < tiles.size(); ++i) {
      ASSERT_EQ(pooled[i].shape(), sequential[i].shape());
      for (std::size_t e = 0; e < pooled[i].size(); ++e)
        ASSERT_EQ(pooled[i][e], sequential[i][e])
            << "threads=" << threads << " tile=" << i << " elem=" << e;
    }
  }
  // And both agree with the single-tile entry point.
  const Tensor one = model.encode(tiles[0]);
  for (std::size_t e = 0; e < one.size(); ++e)
    ASSERT_EQ(one[e], sequential[0][e]);
}

TEST(ParallelTraining, DeterministicAcrossThreadCounts) {
  const auto config = tiny_config();
  const auto tiles = random_tiles(config, 12, 500);
  RiccTrainOptions options;
  options.epochs = 2;
  options.batch_size = 8;
  options.rotations = 1;

  auto train_with = [&](std::size_t threads) {
    RiccModel model(config);
    util::ThreadPool pool(threads);
    options.pool = &pool;
    train_autoencoder(model, tiles, options);
    std::vector<float> weights;
    for (Param* p : model.encoder().params())
      weights.insert(weights.end(), p->value.data(),
                     p->value.data() + p->value.size());
    for (Param* p : model.decoder().params())
      weights.insert(weights.end(), p->value.data(),
                     p->value.data() + p->value.size());
    return weights;
  };

  const auto w1 = train_with(1);
  const auto w3 = train_with(3);
  ASSERT_EQ(w1.size(), w3.size());
  for (std::size_t i = 0; i < w1.size(); ++i)
    ASSERT_EQ(w1[i], w3[i]) << "weight " << i;
}

TEST(ObsIntegration, EncodeEmitsSpanAndTileCounter) {
  auto& rec = obs::TraceRecorder::instance();
  auto& metrics = obs::MetricsRegistry::instance();
  rec.clear();
  metrics.clear();
  rec.set_enabled(true);
  metrics.set_enabled(true);

  RiccModel model(tiny_config());
  const auto tiles = random_tiles(model.config(), 3, 900);
  model.encode_batch(tiles, nullptr);
  model.encode(tiles[0]);

  rec.set_enabled(false);
  metrics.set_enabled(false);
  EXPECT_DOUBLE_EQ(metrics.counter("mfw.ml.encode_tiles_total"), 4.0);
  bool saw_encode_span = false;
  for (const auto& span : rec.spans())
    if (span.name == "ml.encode" && span.closed()) saw_encode_span = true;
  EXPECT_TRUE(saw_encode_span);
  EXPECT_EQ(rec.open_span_count(), 0u);
  rec.clear();
  metrics.clear();
}

TEST(ObsIntegration, TrainingEmitsEpochSpans) {
  auto& rec = obs::TraceRecorder::instance();
  rec.clear();
  rec.set_enabled(true);

  RiccModel model(tiny_config());
  const auto tiles = random_tiles(model.config(), 6, 950);
  RiccTrainOptions options;
  options.epochs = 2;
  options.batch_size = 4;
  options.rotations = 0;
  train_autoencoder(model, tiles, options);

  rec.set_enabled(false);
  std::size_t epoch_spans = 0;
  for (const auto& span : rec.spans())
    if (span.name == "ml.train.epoch" && span.closed()) ++epoch_spans;
  EXPECT_EQ(epoch_spans, 2u);
  rec.clear();
}

TEST(WardCachedNN, MatchesFullRescan) {
  NaiveGuard guard;
  const std::size_t n = 200, d = 5;
  util::Rng rng(3);
  std::vector<float> data(n * d);
  for (auto& v : data) v = static_cast<float>(rng.normal());

  kernels::set_use_naive(true);
  const ClusterResult naive = agglomerative_ward(data, n, d, 7);
  kernels::set_use_naive(false);
  const ClusterResult cached = agglomerative_ward(data, n, d, 7);
  ASSERT_EQ(naive.labels, cached.labels);
  for (std::size_t i = 0; i < naive.centroids.size(); ++i)
    ASSERT_EQ(naive.centroids[i], cached.centroids[i]);

  // The parallel distance fill changes nothing about the merge sequence.
  util::ThreadPool pool(3);
  const ClusterResult pooled = agglomerative_ward(data, n, d, 7, &pool);
  ASSERT_EQ(naive.labels, pooled.labels);
}

}  // namespace
}  // namespace mfw::ml
