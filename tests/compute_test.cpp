// Tests for the compute substrate: real-thread executor, SlurmSim scheduling
// semantics, the ClusterExecutor task farm (throughput, stragglers, node
// drain), and the elastic BlockProvider.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <set>

#include "compute/block_provider.hpp"
#include "compute/cluster.hpp"
#include "compute/policy.hpp"
#include "compute/slurm_sim.hpp"
#include "compute/thread_executor.hpp"
#include "preprocess/tasks.hpp"

namespace mfw::compute {
namespace {

TEST(ThreadPoolExecutor, FuturesDeliverResults) {
  ThreadPoolExecutor exec(4);
  auto f1 = exec.submit([] { return 21 * 2; });
  auto f2 = exec.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPoolExecutor, ExceptionsPropagateThroughFuture) {
  ThreadPoolExecutor exec(2);
  auto f = exec.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolExecutor, SubmitAfterShutdownThrows) {
  ThreadPoolExecutor exec(1);
  exec.shutdown();
  EXPECT_THROW(exec.submit([] { return 1; }), std::runtime_error);
}

TEST(SlurmSim, GrantsAfterSchedulingLatency) {
  sim::SimEngine engine;
  SlurmSim slurm(engine, SlurmSimConfig{10, 2.0});
  double granted_at = -1;
  std::size_t nodes = 0;
  slurm.submit(4, 100.0, [&](const SlurmAllocation& alloc) {
    granted_at = engine.now();
    nodes = alloc.node_ids.size();
  });
  engine.run_until(50.0);  // before the walltime expires
  EXPECT_DOUBLE_EQ(granted_at, 2.0);
  EXPECT_EQ(nodes, 4u);
  EXPECT_EQ(slurm.free_nodes(), 6);
  engine.run();  // walltime expiry returns the nodes
  EXPECT_EQ(slurm.free_nodes(), 10);
}

TEST(SlurmSim, FifoQueueingWhenFull) {
  sim::SimEngine engine;
  SlurmSim slurm(engine, SlurmSimConfig{4, 1.0});
  std::vector<int> order;
  SlurmJobId first = slurm.submit(4, 50.0, [&](const SlurmAllocation&) {
    order.push_back(1);
  });
  slurm.submit(2, 50.0, [&](const SlurmAllocation&) { order.push_back(2); });
  // Release the first job at t=10; job 2 then becomes eligible.
  engine.schedule_at(10.0, [&] { slurm.release(first); });
  engine.run_until(20.0);  // before job 2's walltime expires
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(slurm.free_nodes(), 2);
  engine.run();
}

TEST(SlurmSim, WalltimeExpiryReturnsNodes) {
  sim::SimEngine engine;
  SlurmSim slurm(engine, SlurmSimConfig{4, 0.5});
  bool expired = false;
  slurm.submit(4, 5.0, [](const SlurmAllocation&) {},
               [&] { expired = true; });
  engine.run();
  EXPECT_TRUE(expired);
  EXPECT_EQ(slurm.free_nodes(), 4);
}

TEST(SlurmSim, CancelQueuedJob) {
  sim::SimEngine engine;
  SlurmSim slurm(engine, SlurmSimConfig{2, 0.5});
  slurm.submit(2, 100.0, [](const SlurmAllocation&) {});
  bool granted = false;
  const auto queued = slurm.submit(
      1, 100.0, [&](const SlurmAllocation&) { granted = true; });
  slurm.release(queued);  // cancel while still queued
  engine.run();
  EXPECT_FALSE(granted);
}

TEST(SlurmSim, BackfillLetsSmallJobsJumpBlockedHead) {
  // Partition of 4; a running 3-node job blocks a queued 4-node head.
  // Without backfill a 1-node job waits behind the head; with backfill it
  // starts immediately on the free node.
  auto small_job_start = [](bool backfill) {
    sim::SimEngine engine;
    SlurmSim slurm(engine, SlurmSimConfig{4, 0.5, backfill});
    SlurmJobId big = slurm.submit(3, 20.0, [](const SlurmAllocation&) {});
    slurm.submit(4, 20.0, [](const SlurmAllocation&) {});  // blocked head
    double small_started = -1.0;
    slurm.submit(1, 5.0, [&](const SlurmAllocation&) {
      small_started = engine.now();
    });
    engine.schedule_at(10.0, [&] { slurm.release(big); });
    engine.run_until(60.0);
    return small_started;
  };
  // Backfilled right away onto the free node; without backfill the small
  // job sits behind the head, which itself runs t=10.5..30.5.
  EXPECT_LT(small_job_start(true), 2.0);
  EXPECT_GT(small_job_start(false), 29.0);
}

TEST(SlurmSim, BackfillPreservesHeadPriorityOnRelease) {
  sim::SimEngine engine;
  SlurmSim slurm(engine, SlurmSimConfig{4, 0.5, true});
  SlurmJobId big = slurm.submit(4, 50.0, [](const SlurmAllocation&) {});
  std::vector<int> order;
  slurm.submit(4, 20.0, [&](const SlurmAllocation&) { order.push_back(1); });
  slurm.submit(4, 20.0, [&](const SlurmAllocation&) { order.push_back(2); });
  engine.schedule_at(5.0, [&] { slurm.release(big); });
  engine.run_until(8.0);
  // Only the head got the nodes (both need the full partition): FIFO held.
  EXPECT_EQ(order, (std::vector<int>{1}));
  engine.run();
}

TEST(SlurmSim, RejectsInvalidRequests) {
  sim::SimEngine engine;
  SlurmSim slurm(engine, SlurmSimConfig{2, 0.5});
  EXPECT_THROW(slurm.submit(0, 1.0, nullptr), std::invalid_argument);
  EXPECT_THROW(slurm.submit(3, 1.0, nullptr), std::invalid_argument);
  EXPECT_THROW(slurm.submit(1, 0.0, nullptr), std::invalid_argument);
}

TEST(Cluster, RunsTasksAndRecordsResults) {
  sim::SimEngine engine;
  ClusterExecutor exec(engine, defiant_law_factory());
  exec.add_node(4);
  int completed = 0;
  for (int i = 0; i < 10; ++i) {
    SimTaskDesc desc;
    desc.cpu_seconds = 0.1;
    desc.shared_demand = 5.0;
    desc.payload = 5.0;
    exec.submit(desc, [&](const SimTaskResult& r) {
      ++completed;
      EXPECT_GE(r.finished_at, r.started_at);
      EXPECT_GE(r.started_at, r.submitted_at);
    });
  }
  engine.run();
  EXPECT_EQ(completed, 10);
  EXPECT_EQ(exec.completed(), 10u);
  EXPECT_DOUBLE_EQ(exec.completed_payload(), 50.0);
  EXPECT_EQ(exec.results().size(), 10u);
}

TEST(Cluster, SingleWorkerThroughputMatchesLawR1) {
  // One worker, sequential tile-unit tasks: aggregate rate must equal the
  // law's R(1) (~10.5 t/s for the Defiant calibration).
  sim::SimEngine engine;
  ClusterExecutor exec(engine, defiant_law_factory());
  exec.add_node(1);
  const int tasks = 50;
  const double tiles_per_task = 20.0;
  for (int i = 0; i < tasks; ++i) {
    SimTaskDesc desc;
    desc.shared_demand = tiles_per_task;
    desc.payload = tiles_per_task;
    exec.submit(desc);
  }
  engine.run();
  const double makespan = exec.results().back().finished_at;
  const double rate = tasks * tiles_per_task / makespan;
  EXPECT_NEAR(rate, 38.5 * (1.0 - std::exp(-1.0 / 3.1)), 0.2);
}

TEST(Cluster, NodeScalingIsNearLinear) {
  auto run_nodes = [](int nodes) {
    sim::SimEngine engine;
    ClusterExecutor exec(engine, defiant_law_factory());
    for (int i = 0; i < nodes; ++i) exec.add_node(8);
    for (int i = 0; i < nodes * 16; ++i) {
      SimTaskDesc desc;
      desc.shared_demand = 30.0;
      desc.payload = 30.0;
      exec.submit(desc);
    }
    engine.run();
    const double makespan = exec.results().back().finished_at;
    return exec.completed_payload() / makespan;
  };
  const double r1 = run_nodes(1);
  const double r4 = run_nodes(4);
  EXPECT_GT(r4, 3.5 * r1);
  EXPECT_LT(r4, 4.5 * r1);
}

TEST(Cluster, OnNodeWorkerScalingSaturates) {
  auto run_workers = [](int workers) {
    sim::SimEngine engine;
    ClusterExecutor exec(engine, defiant_law_factory());
    exec.add_node(workers);
    for (int i = 0; i < 64; ++i) {
      SimTaskDesc desc;
      desc.shared_demand = 20.0;
      desc.payload = 20.0;
      exec.submit(desc);
    }
    engine.run();
    return exec.completed_payload() / exec.results().back().finished_at;
  };
  const double r1 = run_workers(1);
  const double r8 = run_workers(8);
  const double r32 = run_workers(32);
  EXPECT_GT(r8, 2.5 * r1);        // strong initial speedup
  EXPECT_LT(r32, r8 * 1.25);      // saturation beyond ~8 workers
}

TEST(Cluster, LeastLoadedPlacementSpreadsTasks) {
  sim::SimEngine engine;
  ClusterExecutor exec(engine, defiant_law_factory());
  exec.add_node(4);
  exec.add_node(4);
  std::set<int> nodes_used;
  for (int i = 0; i < 8; ++i) {
    SimTaskDesc desc;
    desc.shared_demand = 10.0;
    exec.submit(desc, [&](const SimTaskResult& r) { nodes_used.insert(r.node); });
  }
  engine.run();
  EXPECT_EQ(nodes_used.size(), 2u);
}

TEST(Cluster, DrainNodeRemovesAfterCompletion) {
  sim::SimEngine engine;
  ClusterExecutor exec(engine, defiant_law_factory());
  const int node = exec.add_node(2);
  SimTaskDesc desc;
  desc.shared_demand = 5.0;
  exec.submit(desc);
  EXPECT_TRUE(exec.drain_node(node));
  EXPECT_EQ(exec.node_count(), 1u);  // still busy
  engine.run();
  EXPECT_EQ(exec.node_count(), 0u);
  EXPECT_FALSE(exec.drain_node(999));
}

TEST(Cluster, NotifyIdleFires) {
  sim::SimEngine engine;
  ClusterExecutor exec(engine, defiant_law_factory());
  exec.add_node(1);
  bool idle = false;
  SimTaskDesc desc;
  desc.shared_demand = 3.0;
  exec.submit(desc);
  exec.notify_idle([&] { idle = true; });
  engine.run();
  EXPECT_TRUE(idle);
}

TEST(Cluster, SealWithOutstandingWorkDefersAllComplete) {
  // The streaming scheduler's completion contract: "idle" is ambiguous while
  // the submission stream is open, so all-complete only fires after seal()
  // AND the last outstanding task.
  sim::SimEngine engine;
  ClusterExecutor exec(engine, defiant_law_factory());
  exec.add_node(1);
  int completed = 0;
  double all_complete_at = -1.0;
  for (int i = 0; i < 3; ++i) {
    SimTaskDesc desc;
    desc.shared_demand = 3.0;
    exec.submit(desc, [&](const SimTaskResult&) { ++completed; });
  }
  exec.notify_all_complete([&] { all_complete_at = engine.now(); });
  engine.run_until(1e-6);
  EXPECT_FALSE(exec.sealed());
  EXPECT_LT(all_complete_at, 0.0);  // stream still open
  exec.seal();
  EXPECT_TRUE(exec.sealed());
  EXPECT_LT(all_complete_at, 0.0);  // tasks still outstanding
  engine.run();
  EXPECT_EQ(completed, 3);
  EXPECT_GT(all_complete_at, 0.0);
}

TEST(Cluster, SealWhenAlreadyIdleFiresImmediately) {
  sim::SimEngine engine;
  ClusterExecutor exec(engine, defiant_law_factory());
  exec.add_node(1);
  bool fired = false;
  exec.seal();
  exec.notify_all_complete([&] { fired = true; });
  engine.run();
  EXPECT_TRUE(fired);
}

TEST(Cluster, SubmitAfterSealThrows) {
  sim::SimEngine engine;
  ClusterExecutor exec(engine, defiant_law_factory());
  exec.add_node(1);
  exec.seal();
  exec.seal();  // idempotent
  EXPECT_THROW(exec.submit(SimTaskDesc{}), std::logic_error);
}

TEST(Cluster, SubmitBeforeNodesQueuesUntilAllocation) {
  // Streaming submits granules from t=0, before the Slurm grant adds nodes;
  // tasks must queue and run once capacity appears.
  sim::SimEngine engine;
  ClusterExecutor exec(engine, defiant_law_factory());
  int completed = 0;
  SimTaskDesc desc;
  desc.shared_demand = 3.0;
  exec.submit(desc, [&](const SimTaskResult&) { ++completed; });
  engine.run();
  EXPECT_EQ(completed, 0);  // no nodes yet, nothing can run
  exec.add_node(1);
  engine.run();
  EXPECT_EQ(completed, 1);
}

TEST(Cluster, ActivityTransitionsAreConsistent) {
  sim::SimEngine engine;
  ClusterExecutor exec(engine, defiant_law_factory());
  exec.add_node(3);
  for (int i = 0; i < 9; ++i) {
    SimTaskDesc desc;
    desc.shared_demand = 4.0;
    exec.submit(desc);
  }
  engine.run();
  const auto& activity = exec.activity();
  ASSERT_FALSE(activity.empty());
  int peak = 0;
  double last_t = 0;
  for (const auto& [t, n] : activity) {
    ASSERT_GE(t, last_t);
    last_t = t;
    ASSERT_GE(n, 0);
    ASSERT_LE(n, 3);
    peak = std::max(peak, n);
  }
  EXPECT_EQ(peak, 3);
  EXPECT_EQ(activity.back().second, 0);  // idle at the end
}

TEST(BlockProvider, ScalesOutUnderLoadAndInWhenIdle) {
  sim::SimEngine engine;
  SlurmSim slurm(engine, SlurmSimConfig{36, 0.5});
  ClusterExecutor exec(engine, defiant_law_factory());
  BlockConfig config;
  config.nodes_per_block = 1;
  config.workers_per_node = 4;
  config.init_blocks = 1;
  config.min_blocks = 0;
  config.max_blocks = 4;
  config.idle_timeout = 3.0;
  config.poll_interval = 0.5;
  BlockProvider provider(engine, slurm, exec, config);
  provider.start();
  int completed = 0;
  for (int i = 0; i < 60; ++i) {
    SimTaskDesc desc;
    desc.shared_demand = 20.0;
    exec.submit(desc, [&](const SimTaskResult&) { ++completed; });
  }
  int peak_blocks = 0;
  // Observe scaling while the farm works.
  for (int t = 1; t < 200; ++t) {
    engine.run_until(t * 0.5);
    peak_blocks = std::max(peak_blocks, provider.active_blocks());
    if (completed == 60 && provider.active_blocks() == 0) break;
  }
  engine.run_until(300.0);
  EXPECT_EQ(completed, 60);
  EXPECT_GT(peak_blocks, 1);             // scaled out under queue pressure
  EXPECT_EQ(provider.active_blocks(), 0);  // scaled back in when idle
  provider.stop();
  engine.run();
}

TEST(BlockProvider, StopReleasesEverything) {
  sim::SimEngine engine;
  SlurmSim slurm(engine, SlurmSimConfig{8, 0.5});
  ClusterExecutor exec(engine, defiant_law_factory());
  BlockConfig config;
  config.init_blocks = 2;
  config.max_blocks = 2;
  BlockProvider provider(engine, slurm, exec, config);
  provider.start();
  engine.run_until(5.0);
  EXPECT_EQ(provider.active_blocks(), 2);
  provider.stop();
  engine.run();
  EXPECT_EQ(provider.active_blocks(), 0);
  EXPECT_EQ(slurm.free_nodes(), 8);
}

namespace {

// Queues `labels` as equal-cost tasks before any node exists, then adds one
// node so the installed policy decides the whole admission order. Returns
// labels in completion order.
std::vector<std::string> run_policy_order(
    std::shared_ptr<SchedulerPolicy> policy,
    const std::vector<SimTaskDesc>& tasks, int workers = 1) {
  sim::SimEngine engine;
  ClusterExecutor exec(engine, defiant_law_factory());
  exec.set_policy(std::move(policy));
  for (const auto& desc : tasks) exec.submit(desc);
  exec.add_node(workers);
  engine.run();
  std::vector<std::string> order;
  for (const auto& r : exec.results()) order.push_back(r.label);
  return order;
}

SimTaskDesc policy_task(std::string label, std::string campaign = "",
                        double deadline =
                            std::numeric_limits<double>::infinity()) {
  SimTaskDesc desc;
  desc.cpu_seconds = 1.0;
  desc.label = std::move(label);
  desc.campaign = std::move(campaign);
  desc.deadline = deadline;
  return desc;
}

}  // namespace

TEST(Policy, FifoMatchesSubmissionOrder) {
  const auto order = run_policy_order(
      std::make_shared<FifoPolicy>(),
      {policy_task("t0"), policy_task("t1"), policy_task("t2")});
  EXPECT_EQ(order, (std::vector<std::string>{"t0", "t1", "t2"}));
}

TEST(Policy, FairShareInterleavesCampaigns) {
  // Two workers, four tasks per campaign, campaign A fully queued ahead of
  // B. FIFO would start A,A; fair share must give the second slot to B.
  std::vector<SimTaskDesc> tasks;
  for (int i = 0; i < 4; ++i) tasks.push_back(policy_task("a", "A"));
  for (int i = 0; i < 4; ++i) tasks.push_back(policy_task("b", "B"));
  const auto order =
      run_policy_order(std::make_shared<FairSharePolicy>(), tasks, 2);
  ASSERT_EQ(order.size(), 8u);
  EXPECT_EQ(order[0], "a");
  EXPECT_EQ(order[1], "b");  // B admitted while an A task still runs
}

TEST(Policy, DeadlineRunsEarliestFirst) {
  const auto order = run_policy_order(
      std::make_shared<DeadlinePolicy>(),
      {policy_task("late", "", 30.0), policy_task("none"),
       policy_task("soon", "", 10.0), policy_task("mid", "", 20.0)});
  EXPECT_EQ(order,
            (std::vector<std::string>{"soon", "mid", "late", "none"}));
}

TEST(Policy, WanAwarePrefersCampaignWithIdleWan) {
  auto probe = [](const std::string& campaign) {
    return campaign == "hot" ? 1e9 : 0.0;
  };
  const auto order = run_policy_order(
      std::make_shared<WanAwarePolicy>(probe),
      {policy_task("h1", "hot"), policy_task("c1", "cold"),
       policy_task("h2", "hot")});
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "c1");
}

TEST(Policy, FairShareTracksEvictions) {
  // A failed node must release its campaign's running share, or the
  // campaign is penalised forever.
  sim::SimEngine engine;
  ClusterExecutor exec(engine, defiant_law_factory());
  auto fair = std::make_shared<FairSharePolicy>();
  exec.set_policy(fair);
  const int node = exec.add_node(1);
  exec.submit(policy_task("a", "A"));
  engine.run_until(0.5);
  EXPECT_EQ(fair->running("A"), 1);
  exec.fail_node(node);
  EXPECT_EQ(fair->running("A"), 0);
  exec.add_node(1);
  engine.run();
  EXPECT_EQ(exec.completed(), 1u);
}

TEST(Policy, MakePolicyByName) {
  EXPECT_EQ(make_policy("fifo", nullptr)->name(), "fifo");
  EXPECT_EQ(make_policy("fair_share", nullptr)->name(), "fair_share");
  EXPECT_EQ(make_policy("deadline", nullptr)->name(), "deadline");
  EXPECT_EQ(make_policy("wan_aware", nullptr)->name(), "wan_aware");
  EXPECT_THROW(make_policy("sjf", nullptr), std::invalid_argument);
}

TEST(PreprocessTasks, DescriptorsReflectWorkload) {
  modis::GranuleGenerator gen(2022);
  // Daytime granule: payload tiles > 0.
  modis::GranuleId day{modis::ProductKind::kMod02, modis::Satellite::kTerra,
                       2022, 1, 0};
  while (!modis::is_daytime(day.satellite, day.slot, day.day_of_year)) ++day.slot;
  modis::GranuleStats stats;
  const auto desc = preprocess::make_preprocess_task(gen, day, {}, &stats);
  EXPECT_TRUE(stats.daytime);
  EXPECT_GT(desc.payload, 0.0);
  EXPECT_GT(desc.shared_demand, 0.0);
  EXPECT_EQ(desc.label, day.filename());

  // Night granule: minimum demand, zero payload.
  modis::GranuleId night = day;
  while (modis::is_daytime(night.satellite, night.slot, night.day_of_year))
    ++night.slot;
  const auto night_desc = preprocess::make_preprocess_task(gen, night);
  EXPECT_DOUBLE_EQ(night_desc.payload, 0.0);
  EXPECT_GT(night_desc.shared_demand, 0.0);

  const auto inf = preprocess::make_inference_task(100, "x");
  EXPECT_DOUBLE_EQ(inf.payload, 100.0);
  EXPECT_GT(inf.shared_demand, 0.0);
}

}  // namespace
}  // namespace mfw::compute
