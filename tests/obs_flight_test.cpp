// Unit tests for the crash-safe flight recorder (obs/flight.hpp): fixed-size
// ring semantics with overwrite accounting, sink chaining, health-alert
// episodes, and a dump that is valid Chrome-trace JSON (validated with the
// in-repo JSON reader).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "obs/watch.hpp"
#include "util/jsonlite.hpp"

namespace mfw::obs {
namespace {

void feed_spans(TraceRecorder& rec, int count, double t0 = 0.0) {
  for (int i = 0; i < count; ++i) {
    rec.add_span("preprocess/node0/w0", "compute", "p" + std::to_string(i),
                 t0 + i, t0 + i + 0.5,
                 {{"granule", "g" + std::to_string(i)}});
  }
}

TEST(Flight, RingKeepsNewestAndCountsOverwrites) {
  FlightConfig config;
  config.capacity = 4;
  FlightRecorder flight(config);

  TraceRecorder rec;
  rec.set_enabled(true);
  rec.begin_process("p");
  rec.set_span_sink(&flight);
  feed_spans(rec, 10);
  rec.add_instant("flow/granules", "flow", "granule.ready", 99.0,
                  {{"key", "g9"}});
  rec.set_span_sink(nullptr);

  EXPECT_EQ(flight.seen(), 11u);
  EXPECT_EQ(flight.size(), 4u);
  EXPECT_EQ(flight.capacity(), 4u);
  EXPECT_EQ(flight.overwritten(), 7u);

  // Snapshot is oldest-first and holds exactly the newest four events.
  const auto entries = flight.snapshot();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0].name, "p7");
  EXPECT_EQ(entries[1].name, "p8");
  EXPECT_EQ(entries[2].name, "p9");
  EXPECT_EQ(entries[3].name, "granule.ready");
  EXPECT_EQ(entries[3].entry_kind, FlightRecorder::Entry::Kind::kInstant);
  EXPECT_LT(entries[0].seq, entries[3].seq);
}

struct CountingSink : SpanSink {
  int spans = 0;
  int instants = 0;
  void on_span(const TraceTrack&, const TraceSpan&) override { ++spans; }
  void on_instant(const TraceTrack&, const TraceInstant&) override {
    ++instants;
  }
};

TEST(Flight, ChainsToDownstreamSink) {
  FlightRecorder flight;
  CountingSink downstream;
  flight.set_next(&downstream);

  TraceRecorder rec;
  rec.set_enabled(true);
  rec.begin_process("p");
  rec.set_span_sink(&flight);
  feed_spans(rec, 3);
  rec.add_instant("flow/granules", "flow", "granule.ready", 1.0, {});
  rec.set_span_sink(nullptr);

  EXPECT_EQ(downstream.spans, 3);
  EXPECT_EQ(downstream.instants, 1);
  EXPECT_EQ(flight.seen(), 4u);
}

TEST(Flight, AlertsBecomeHealthEpisodes) {
  FlightRecorder flight;
  Alert alert;
  alert.rule = "pp-queue";
  alert.kind = "slo";
  alert.stage = "preprocess";
  alert.metric = "queue_wait_p99";
  alert.state = "firing";
  alert.threshold = 0.5;
  alert.observed = 4.2;
  alert.at = 120.0;
  alert.cause = "queue-wait";
  flight.note_alert(alert);

  const auto entries = flight.snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].entry_kind, FlightRecorder::Entry::Kind::kAlert);
  EXPECT_EQ(entries[0].category, "health");
  EXPECT_EQ(entries[0].name, "pp-queue");
  EXPECT_DOUBLE_EQ(entries[0].start, 120.0);

  const std::string json = flight.to_chrome_trace_json("test");
  EXPECT_NE(json.find("\"health\""), std::string::npos);
  EXPECT_NE(json.find("queue-wait"), std::string::npos);
}

TEST(Flight, DumpIsValidChromeTraceJson) {
  FlightConfig config;
  config.capacity = 8;
  FlightRecorder flight(config);

  TraceRecorder rec;
  rec.set_enabled(true);
  rec.begin_process("p");
  rec.set_span_sink(&flight);
  feed_spans(rec, 12);
  rec.set_span_sink(nullptr);

  const auto doc = util::parse_json(flight.to_chrome_trace_json("unit-test"));
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.str("displayTimeUnit"), "ms");
  const auto& events = doc.items("traceEvents");
  ASSERT_FALSE(events.empty());
  std::size_t span_events = 0;
  for (const auto& e : events) {
    const auto ph = e.str("ph");
    EXPECT_TRUE(ph == "X" || ph == "i" || ph == "M") << ph;
    if (ph == "X") ++span_events;
  }
  EXPECT_EQ(span_events, 8u);  // ring capacity, not events seen

  const auto* meta = doc.find("flight");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->str("reason"), "unit-test");
  EXPECT_DOUBLE_EQ(meta->num("seen"), 12.0);
  EXPECT_DOUBLE_EQ(meta->num("overwritten"), 4.0);
  EXPECT_DOUBLE_EQ(meta->num("retained"), 8.0);
}

TEST(Flight, DumpWritesFile) {
  FlightRecorder flight;
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.begin_process("p");
  rec.set_span_sink(&flight);
  feed_spans(rec, 2);
  rec.set_span_sink(nullptr);

  const std::string path = ::testing::TempDir() + "mfw_flight_test.json";
  ASSERT_TRUE(flight.dump(path, "end-of-run"));
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto doc = util::parse_json(buffer.str());
  EXPECT_EQ(doc.find("flight")->str("reason"), "end-of-run");
  std::remove(path.c_str());
}

TEST(Flight, ArmAndDisarmCrashDumpAreBalanced) {
  // No terminate is triggered here — just exercise the install/restore path
  // (the destructor also disarms; doing both must be harmless).
  FlightRecorder flight;
  flight.arm_crash_dump(::testing::TempDir() + "mfw_flight_crash.json");
  flight.disarm_crash_dump();
  flight.disarm_crash_dump();
}

}  // namespace
}  // namespace mfw::obs
