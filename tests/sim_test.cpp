// Unit tests for the discrete-event engine, contention laws, the
// processor-sharing SharedResource, and the water-filling FlowLink — plus
// randomized equivalence checks of the fast substrates against the naive
// reference implementations (DESIGN.md §9).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "sim/clock.hpp"
#include "sim/engine.hpp"
#include "sim/link.hpp"
#include "sim/resource.hpp"
#include "sim/substrate.hpp"
#include "util/rng.hpp"

namespace mfw::sim {
namespace {

/// Forces the substrate flag for the lifetime of a test, restoring the
/// ambient value (which MFW_SIM_NAIVE_SUBSTRATE may have set) afterwards.
class SubstrateGuard {
 public:
  explicit SubstrateGuard(bool naive) : prev_(substrate::use_naive()) {
    substrate::set_use_naive(naive);
  }
  ~SubstrateGuard() { substrate::set_use_naive(prev_); }
 private:
  bool prev_;
};

TEST(SimEngine, ExecutesInTimeOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(SimEngine, FifoForSimultaneousEvents) {
  SimEngine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    engine.schedule_at(1.0, [&, i] { order.push_back(i); });
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimEngine, CancelPreventsExecution) {
  SimEngine engine;
  bool fired = false;
  const auto handle = engine.schedule_at(1.0, [&] { fired = true; });
  engine.cancel(handle);
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(engine.processed(), 0u);
}

TEST(SimEngine, EventsScheduleMoreEvents) {
  SimEngine engine;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) engine.schedule_after(1.0, chain);
  };
  engine.schedule_after(1.0, chain);
  engine.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
}

TEST(SimEngine, PastSchedulingClampsToNow) {
  SimEngine engine;
  engine.schedule_at(10.0, [] {});
  engine.run();
  double fired_at = -1;
  engine.schedule_at(5.0, [&] { fired_at = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
}

TEST(SimEngine, RunUntilAdvancesExactly) {
  SimEngine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] { ++fired; });
  engine.schedule_at(5.0, [&] { ++fired; });
  EXPECT_EQ(engine.run_until(2.5), 1u);
  EXPECT_DOUBLE_EQ(engine.now(), 2.5);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.pending(), 1u);
  engine.run();
  EXPECT_EQ(fired, 2);
}

TEST(WallClock, MonotoneNonNegative) {
  WallClock clock;
  const double a = clock.now();
  const double b = clock.now();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(ContentionLaws, Values) {
  LinearCapLaw linear(10.0, 35.0);
  EXPECT_DOUBLE_EQ(linear.aggregate_rate(1), 10.0);
  EXPECT_DOUBLE_EQ(linear.aggregate_rate(3), 30.0);
  EXPECT_DOUBLE_EQ(linear.aggregate_rate(8), 35.0);

  StepCapLaw step(10.0, 4);
  EXPECT_DOUBLE_EQ(step.aggregate_rate(2), 20.0);
  EXPECT_DOUBLE_EQ(step.aggregate_rate(9), 40.0);

  SaturatingExpLaw sat(38.5, 3.1);
  EXPECT_NEAR(sat.aggregate_rate(1), 38.5 * (1 - std::exp(-1 / 3.1)), 1e-9);
  EXPECT_LT(sat.aggregate_rate(8), 38.5);
  EXPECT_GT(sat.aggregate_rate(64), 38.4);
  EXPECT_DOUBLE_EQ(sat.aggregate_rate(0), 0.0);
}

TEST(ContentionLaws, RejectBadParameters) {
  EXPECT_THROW(LinearCapLaw(0, 1), std::invalid_argument);
  EXPECT_THROW(SaturatingExpLaw(1, 0), std::invalid_argument);
  EXPECT_THROW(StepCapLaw(1, 0), std::invalid_argument);
}

TEST(SharedResource, SingleJobTakesDemandOverRate) {
  SimEngine engine;
  SharedResource res(engine, std::make_unique<LinearCapLaw>(2.0, 100.0));
  double done_at = -1;
  res.submit(10.0, [&] { done_at = engine.now(); });
  engine.run();
  EXPECT_NEAR(done_at, 5.0, 1e-9);  // 10 units at 2/s
  EXPECT_EQ(res.completed_jobs(), 1u);
}

TEST(SharedResource, ProcessorSharingSplitsRate) {
  SimEngine engine;
  // Linear law with a huge cap: 2 jobs share 2*per_task = no contention.
  SharedResource res(engine, std::make_unique<LinearCapLaw>(1.0, 1e9));
  std::vector<double> done;
  res.submit(10.0, [&] { done.push_back(engine.now()); });
  res.submit(10.0, [&] { done.push_back(engine.now()); });
  engine.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 10.0, 1e-9);
  EXPECT_NEAR(done[1], 10.0, 1e-9);
}

TEST(SharedResource, CapacitySaturationStretchesService) {
  SimEngine engine;
  // Cap 1.0: two jobs of demand 1 take 2s total (serial capacity).
  SharedResource res(engine, std::make_unique<LinearCapLaw>(1.0, 1.0));
  std::vector<double> done;
  res.submit(1.0, [&] { done.push_back(engine.now()); });
  res.submit(1.0, [&] { done.push_back(engine.now()); });
  engine.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[1], 2.0, 1e-9);
}

TEST(SharedResource, LateArrivalRecomputesCompletion) {
  SimEngine engine;
  SharedResource res(engine, std::make_unique<LinearCapLaw>(1.0, 1.0));
  std::vector<double> done;
  res.submit(2.0, [&] { done.push_back(engine.now()); });
  // At t=1 the first job has 1 unit left; a second job halves its rate.
  engine.schedule_at(1.0, [&] {
    res.submit(2.0, [&] { done.push_back(engine.now()); });
  });
  engine.run();
  ASSERT_EQ(done.size(), 2u);
  // First job: 1 + 1/(0.5) = 3s. Second: remaining 1 unit alone at 1/s -> 4s.
  EXPECT_NEAR(done[0], 3.0, 1e-9);
  EXPECT_NEAR(done[1], 4.0, 1e-9);
}

TEST(SharedResource, CancelRemovesJob) {
  SimEngine engine;
  SharedResource res(engine, std::make_unique<LinearCapLaw>(1.0, 10.0));
  bool fired = false;
  const auto id = res.submit(5.0, [&] { fired = true; });
  engine.schedule_at(1.0, [&] { res.cancel(id); });
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(res.active(), 0u);
}

TEST(SharedResource, RejectsNonPositiveDemand) {
  SimEngine engine;
  SharedResource res(engine, std::make_unique<LinearCapLaw>(1.0, 1.0));
  EXPECT_THROW(res.submit(0.0, [] {}), std::invalid_argument);
  EXPECT_THROW(res.submit(-1.0, [] {}), std::invalid_argument);
}

TEST(SharedResource, ManyJobsAllComplete) {
  SimEngine engine;
  SharedResource res(engine, std::make_unique<SaturatingExpLaw>(38.5, 3.1));
  int completed = 0;
  for (int i = 0; i < 500; ++i)
    res.submit(1.0 + (i % 7), [&] { ++completed; });
  engine.run();
  EXPECT_EQ(completed, 500);
  EXPECT_EQ(res.active(), 0u);
}

TEST(FlowLink, SingleFlowAtCapRate) {
  SimEngine engine;
  FlowLink link(engine, "wan", 100.0);
  double done_at = -1, reported_bps = 0;
  link.start_flow(50.0, 10.0, [&](double bps) {
    done_at = engine.now();
    reported_bps = bps;
  });
  engine.run();
  EXPECT_NEAR(done_at, 5.0, 1e-9);  // capped by per-flow 10 B/s
  EXPECT_NEAR(reported_bps, 10.0, 1e-6);
}

TEST(FlowLink, CapacitySharedFairly) {
  SimEngine engine;
  FlowLink link(engine, "wan", 10.0);
  std::vector<double> done;
  // Two flows each capped at 10 but sharing 10 total -> 5 each.
  link.start_flow(10.0, 10.0, [&](double) { done.push_back(engine.now()); });
  link.start_flow(10.0, 10.0, [&](double) { done.push_back(engine.now()); });
  engine.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[1], 2.0, 1e-9);
}

TEST(FlowLink, WaterFillingRespectsSmallCaps) {
  SimEngine engine;
  FlowLink link(engine, "wan", 10.0);
  std::vector<std::pair<double, double>> done;  // (time, bps)
  // Flow A capped at 2 B/s; flow B can use the leftover 8 B/s.
  link.start_flow(2.0, 2.0, [&](double bps) { done.emplace_back(engine.now(), bps); });
  link.start_flow(8.0, 100.0, [&](double bps) { done.emplace_back(engine.now(), bps); });
  engine.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0].first, 1.0, 1e-9);
  EXPECT_NEAR(done[0].second, 2.0, 1e-6);
  EXPECT_NEAR(done[1].first, 1.0, 1e-9);
  EXPECT_NEAR(done[1].second, 8.0, 1e-6);
}

TEST(FlowLink, DepartureSpeedsUpRemaining) {
  SimEngine engine;
  FlowLink link(engine, "wan", 10.0);
  std::vector<double> done;
  link.start_flow(5.0, 100.0, [&](double) { done.push_back(engine.now()); });
  link.start_flow(10.0, 100.0, [&](double) { done.push_back(engine.now()); });
  engine.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 1.0, 1e-9);   // 5 B at 5 B/s
  EXPECT_NEAR(done[1], 1.5, 1e-9);   // remaining 5 B at full 10 B/s
}

TEST(FlowLink, CancelledFlowNeverCompletes) {
  SimEngine engine;
  FlowLink link(engine, "wan", 10.0);
  bool fired = false;
  const auto id = link.start_flow(100.0, 10.0, [&](double) { fired = true; });
  engine.schedule_at(1.0, [&] { link.cancel(id); });
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(link.active_flows(), 0u);
}

TEST(FlowLink, NoFloatingPointStallAtLargeTimes) {
  SimEngine engine;
  // Advance virtual time far out, then run many small flows; the event loop
  // must terminate (regression test for the sub-quantum-dt stall).
  engine.schedule_at(1e7, [] {});
  engine.run();
  FlowLink link(engine, "wan", 1.2e9);
  int completed = 0;
  for (int i = 0; i < 200; ++i)
    link.start_flow(150.0 + i, 3e8, [&](double) { ++completed; });
  const std::size_t events = engine.run();
  EXPECT_EQ(completed, 200);
  EXPECT_LT(events, 100000u);
}

TEST(FlowLink, ManyStaggeredFlowsAllComplete) {
  SimEngine engine;
  FlowLink link(engine, "wan", 120.0 * 1024 * 1024);
  int completed = 0;
  for (int i = 0; i < 100; ++i) {
    engine.schedule_at(i * 0.1, [&, i] {
      link.start_flow(1e6 * (1 + i % 5), 8e6, [&](double) { ++completed; });
    });
  }
  engine.run();
  EXPECT_EQ(completed, 100);
}

// -- slab engine internals ---------------------------------------------------

TEST(SimEngine, FifoPreservedAcrossCompaction) {
  // Cancel enough events to trigger heap compaction while a batch of
  // simultaneous events is still pending; compaction must not perturb the
  // (time, seq) FIFO order of the survivors.
  SubstrateGuard guard(false);
  SimEngine engine;
  std::vector<EventHandle> doomed;
  for (int i = 0; i < 150; ++i)
    doomed.push_back(engine.schedule_at(1.0, [] { FAIL(); }));
  std::vector<int> order;
  for (int i = 0; i < 100; ++i)
    engine.schedule_at(2.0, [&, i] { order.push_back(i); });
  for (const auto& h : doomed) engine.cancel(h);
  EXPECT_GT(engine.compactions(), 0u);
  engine.run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(engine.dead_entries(), 0u);
}

TEST(SimEngine, DoubleCancelAndStaleHandleAreNoOps) {
  SubstrateGuard guard(false);
  SimEngine engine;
  bool a_fired = false, b_fired = false;
  const auto ha = engine.schedule_at(1.0, [&] { a_fired = true; });
  engine.cancel(ha);
  engine.cancel(ha);  // double cancel: no-op
  // The cancelled slot is recycled; the stale handle carries the old
  // generation and must not be able to cancel the slot's new tenant.
  const auto hb = engine.schedule_at(1.0, [&] { b_fired = true; });
  EXPECT_EQ(ha.id, hb.id);   // slot actually reused (free-list LIFO)
  EXPECT_NE(ha.gen, hb.gen); // ...under a new generation
  engine.cancel(ha);
  engine.run();
  EXPECT_FALSE(a_fired);
  EXPECT_TRUE(b_fired);
}

TEST(SimEngine, StaleHandleAfterFireIsNoOp) {
  SubstrateGuard guard(false);
  SimEngine engine;
  int fired = 0;
  const auto ha = engine.schedule_at(0.5, [&] { ++fired; });
  engine.run_until(1.0);
  EXPECT_EQ(fired, 1);
  const auto hb = engine.schedule_at(2.0, [&] { ++fired; });
  engine.cancel(ha);  // fired long ago; must not touch hb's reused slot
  engine.run();
  EXPECT_EQ(fired, 2);
  (void)hb;
}

TEST(SimEngine, DeadEntriesStayBoundedUnderCancelStorm) {
  // Cancel-heavy stress: two of every three events are cancelled before they
  // fire. Lazy cancellation plus compaction must keep the dead fraction of
  // the heap bounded (dead <= live once the heap is past the minimum
  // compaction size) instead of letting cancelled entries accumulate.
  SubstrateGuard guard(false);
  SimEngine engine;
  util::Rng rng(17);
  for (int round = 0; round < 4; ++round) {
    std::vector<EventHandle> handles;
    for (int i = 0; i < 5000; ++i)
      handles.push_back(engine.schedule_at(rng.uniform(0.0, 1e6), [] {}));
    for (std::size_t i = 0; i < handles.size(); ++i)
      if (i % 3 != 0) engine.cancel(handles[i]);
    EXPECT_LE(engine.dead_entries(), engine.pending() + 64);
  }
  EXPECT_GT(engine.compactions(), 0u);
  engine.run();
  EXPECT_EQ(engine.dead_entries(), 0u);
  EXPECT_EQ(engine.pending(), 0u);
}

// -- fast vs naive equivalence ----------------------------------------------
// The fast substrates must be behaviourally indistinguishable from the naive
// oracles: identical completion order, timestamps equal to ~1e-9 relative.
// Occupancy is pushed past the virtual cutover (64) so the virtual-time
// regime — not just the exact small-occupancy regime — is exercised.

struct Completion {
  int index;
  double time;
  double bps;  // FlowLink only
};

std::vector<Completion> run_resource_scenario(bool naive) {
  SubstrateGuard guard(naive);
  SimEngine engine;
  SharedResource res(engine, std::make_unique<SaturatingExpLaw>(38.5, 3.1));
  util::Rng rng(23);
  constexpr int kJobs = 200;
  std::vector<Completion> done;
  std::vector<ResourceJobId> ids(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    const double demand = rng.uniform(0.5, 20.0);
    engine.schedule_at(i * 0.05, [&, i, demand] {
      ids[static_cast<std::size_t>(i)] =
          res.submit(demand, [&, i] { done.push_back({i, engine.now(), 0.0}); });
    });
    if (i % 9 == 0) {
      // Some cancels land after the job already completed — both substrates
      // must treat those as no-ops.
      engine.schedule_at(i * 0.05 + 0.7, [&, i] {
        res.cancel(ids[static_cast<std::size_t>(i)]);
      });
    }
  }
  engine.run();
  EXPECT_EQ(res.active(), 0u);
  return done;
}

std::vector<Completion> run_link_scenario(bool naive) {
  SubstrateGuard guard(naive);
  SimEngine engine;
  FlowLink link(engine, "wan", 23.5 * 1024 * 1024);
  util::Rng rng(29);
  constexpr int kFlows = 200;
  std::vector<Completion> done;
  std::vector<FlowId> ids(kFlows);
  for (int i = 0; i < kFlows; ++i) {
    const double bytes = rng.uniform(0.2, 8.0) * 1024 * 1024;
    const double cap = rng.uniform(0.3, 6.0) * 1024 * 1024;
    engine.schedule_at(i * 0.01, [&, i, bytes, cap] {
      ids[static_cast<std::size_t>(i)] = link.start_flow(
          bytes, cap, [&, i](double bps) { done.push_back({i, engine.now(), bps}); });
    });
    if (i % 11 == 0) {
      engine.schedule_at(i * 0.01 + 0.05, [&, i] {
        link.cancel(ids[static_cast<std::size_t>(i)]);
      });
    }
  }
  engine.run();
  EXPECT_EQ(link.active_flows(), 0u);
  return done;
}

void expect_equivalent(const std::vector<Completion>& fast,
                       const std::vector<Completion>& naive,
                       double bps_rel_tol) {
  ASSERT_EQ(fast.size(), naive.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].index, naive[i].index) << "completion order at " << i;
    const double time_tol = 1e-9 * std::max(1.0, std::abs(naive[i].time));
    EXPECT_NEAR(fast[i].time, naive[i].time, time_tol) << "at " << i;
    if (bps_rel_tol > 0) {
      EXPECT_NEAR(fast[i].bps, naive[i].bps,
                  bps_rel_tol * std::max(1.0, std::abs(naive[i].bps)))
          << "at " << i;
    }
  }
}

TEST(SubstrateEquivalence, SharedResourceMatchesNaiveOracle) {
  const auto fast = run_resource_scenario(false);
  const auto naive = run_resource_scenario(true);
  ASSERT_GT(fast.size(), 150u);  // cancels remove a few of the 200
  expect_equivalent(fast, naive, 0.0);
}

TEST(SubstrateEquivalence, FlowLinkMatchesNaiveOracle) {
  const auto fast = run_link_scenario(false);
  const auto naive = run_link_scenario(true);
  ASSERT_GT(fast.size(), 150u);
  expect_equivalent(fast, naive, 1e-6);
}

TEST(SubstrateEquivalence, EngineProcessesSameEventCount) {
  // The engine itself is exact in both modes; sanity-check the counters.
  for (const bool naive : {false, true}) {
    SubstrateGuard guard(naive);
    SimEngine engine;
    util::Rng rng(31);
    std::vector<EventHandle> handles;
    for (int i = 0; i < 1000; ++i)
      handles.push_back(engine.schedule_at(rng.uniform(0.0, 100.0), [] {}));
    for (std::size_t i = 0; i < handles.size(); i += 2)
      engine.cancel(handles[i]);
    EXPECT_EQ(engine.run(), 500u);
    EXPECT_EQ(engine.processed(), 500u);
  }
}

}  // namespace
}  // namespace mfw::sim
