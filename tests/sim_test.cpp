// Unit tests for the discrete-event engine, contention laws, the
// processor-sharing SharedResource, and the water-filling FlowLink.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/clock.hpp"
#include "sim/engine.hpp"
#include "sim/link.hpp"
#include "sim/resource.hpp"

namespace mfw::sim {
namespace {

TEST(SimEngine, ExecutesInTimeOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(SimEngine, FifoForSimultaneousEvents) {
  SimEngine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    engine.schedule_at(1.0, [&, i] { order.push_back(i); });
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimEngine, CancelPreventsExecution) {
  SimEngine engine;
  bool fired = false;
  const auto handle = engine.schedule_at(1.0, [&] { fired = true; });
  engine.cancel(handle);
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(engine.processed(), 0u);
}

TEST(SimEngine, EventsScheduleMoreEvents) {
  SimEngine engine;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) engine.schedule_after(1.0, chain);
  };
  engine.schedule_after(1.0, chain);
  engine.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
}

TEST(SimEngine, PastSchedulingClampsToNow) {
  SimEngine engine;
  engine.schedule_at(10.0, [] {});
  engine.run();
  double fired_at = -1;
  engine.schedule_at(5.0, [&] { fired_at = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
}

TEST(SimEngine, RunUntilAdvancesExactly) {
  SimEngine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] { ++fired; });
  engine.schedule_at(5.0, [&] { ++fired; });
  EXPECT_EQ(engine.run_until(2.5), 1u);
  EXPECT_DOUBLE_EQ(engine.now(), 2.5);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.pending(), 1u);
  engine.run();
  EXPECT_EQ(fired, 2);
}

TEST(WallClock, MonotoneNonNegative) {
  WallClock clock;
  const double a = clock.now();
  const double b = clock.now();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(ContentionLaws, Values) {
  LinearCapLaw linear(10.0, 35.0);
  EXPECT_DOUBLE_EQ(linear.aggregate_rate(1), 10.0);
  EXPECT_DOUBLE_EQ(linear.aggregate_rate(3), 30.0);
  EXPECT_DOUBLE_EQ(linear.aggregate_rate(8), 35.0);

  StepCapLaw step(10.0, 4);
  EXPECT_DOUBLE_EQ(step.aggregate_rate(2), 20.0);
  EXPECT_DOUBLE_EQ(step.aggregate_rate(9), 40.0);

  SaturatingExpLaw sat(38.5, 3.1);
  EXPECT_NEAR(sat.aggregate_rate(1), 38.5 * (1 - std::exp(-1 / 3.1)), 1e-9);
  EXPECT_LT(sat.aggregate_rate(8), 38.5);
  EXPECT_GT(sat.aggregate_rate(64), 38.4);
  EXPECT_DOUBLE_EQ(sat.aggregate_rate(0), 0.0);
}

TEST(ContentionLaws, RejectBadParameters) {
  EXPECT_THROW(LinearCapLaw(0, 1), std::invalid_argument);
  EXPECT_THROW(SaturatingExpLaw(1, 0), std::invalid_argument);
  EXPECT_THROW(StepCapLaw(1, 0), std::invalid_argument);
}

TEST(SharedResource, SingleJobTakesDemandOverRate) {
  SimEngine engine;
  SharedResource res(engine, std::make_unique<LinearCapLaw>(2.0, 100.0));
  double done_at = -1;
  res.submit(10.0, [&] { done_at = engine.now(); });
  engine.run();
  EXPECT_NEAR(done_at, 5.0, 1e-9);  // 10 units at 2/s
  EXPECT_EQ(res.completed_jobs(), 1u);
}

TEST(SharedResource, ProcessorSharingSplitsRate) {
  SimEngine engine;
  // Linear law with a huge cap: 2 jobs share 2*per_task = no contention.
  SharedResource res(engine, std::make_unique<LinearCapLaw>(1.0, 1e9));
  std::vector<double> done;
  res.submit(10.0, [&] { done.push_back(engine.now()); });
  res.submit(10.0, [&] { done.push_back(engine.now()); });
  engine.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 10.0, 1e-9);
  EXPECT_NEAR(done[1], 10.0, 1e-9);
}

TEST(SharedResource, CapacitySaturationStretchesService) {
  SimEngine engine;
  // Cap 1.0: two jobs of demand 1 take 2s total (serial capacity).
  SharedResource res(engine, std::make_unique<LinearCapLaw>(1.0, 1.0));
  std::vector<double> done;
  res.submit(1.0, [&] { done.push_back(engine.now()); });
  res.submit(1.0, [&] { done.push_back(engine.now()); });
  engine.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[1], 2.0, 1e-9);
}

TEST(SharedResource, LateArrivalRecomputesCompletion) {
  SimEngine engine;
  SharedResource res(engine, std::make_unique<LinearCapLaw>(1.0, 1.0));
  std::vector<double> done;
  res.submit(2.0, [&] { done.push_back(engine.now()); });
  // At t=1 the first job has 1 unit left; a second job halves its rate.
  engine.schedule_at(1.0, [&] {
    res.submit(2.0, [&] { done.push_back(engine.now()); });
  });
  engine.run();
  ASSERT_EQ(done.size(), 2u);
  // First job: 1 + 1/(0.5) = 3s. Second: remaining 1 unit alone at 1/s -> 4s.
  EXPECT_NEAR(done[0], 3.0, 1e-9);
  EXPECT_NEAR(done[1], 4.0, 1e-9);
}

TEST(SharedResource, CancelRemovesJob) {
  SimEngine engine;
  SharedResource res(engine, std::make_unique<LinearCapLaw>(1.0, 10.0));
  bool fired = false;
  const auto id = res.submit(5.0, [&] { fired = true; });
  engine.schedule_at(1.0, [&] { res.cancel(id); });
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(res.active(), 0u);
}

TEST(SharedResource, RejectsNonPositiveDemand) {
  SimEngine engine;
  SharedResource res(engine, std::make_unique<LinearCapLaw>(1.0, 1.0));
  EXPECT_THROW(res.submit(0.0, [] {}), std::invalid_argument);
  EXPECT_THROW(res.submit(-1.0, [] {}), std::invalid_argument);
}

TEST(SharedResource, ManyJobsAllComplete) {
  SimEngine engine;
  SharedResource res(engine, std::make_unique<SaturatingExpLaw>(38.5, 3.1));
  int completed = 0;
  for (int i = 0; i < 500; ++i)
    res.submit(1.0 + (i % 7), [&] { ++completed; });
  engine.run();
  EXPECT_EQ(completed, 500);
  EXPECT_EQ(res.active(), 0u);
}

TEST(FlowLink, SingleFlowAtCapRate) {
  SimEngine engine;
  FlowLink link(engine, "wan", 100.0);
  double done_at = -1, reported_bps = 0;
  link.start_flow(50.0, 10.0, [&](double bps) {
    done_at = engine.now();
    reported_bps = bps;
  });
  engine.run();
  EXPECT_NEAR(done_at, 5.0, 1e-9);  // capped by per-flow 10 B/s
  EXPECT_NEAR(reported_bps, 10.0, 1e-6);
}

TEST(FlowLink, CapacitySharedFairly) {
  SimEngine engine;
  FlowLink link(engine, "wan", 10.0);
  std::vector<double> done;
  // Two flows each capped at 10 but sharing 10 total -> 5 each.
  link.start_flow(10.0, 10.0, [&](double) { done.push_back(engine.now()); });
  link.start_flow(10.0, 10.0, [&](double) { done.push_back(engine.now()); });
  engine.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[1], 2.0, 1e-9);
}

TEST(FlowLink, WaterFillingRespectsSmallCaps) {
  SimEngine engine;
  FlowLink link(engine, "wan", 10.0);
  std::vector<std::pair<double, double>> done;  // (time, bps)
  // Flow A capped at 2 B/s; flow B can use the leftover 8 B/s.
  link.start_flow(2.0, 2.0, [&](double bps) { done.emplace_back(engine.now(), bps); });
  link.start_flow(8.0, 100.0, [&](double bps) { done.emplace_back(engine.now(), bps); });
  engine.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0].first, 1.0, 1e-9);
  EXPECT_NEAR(done[0].second, 2.0, 1e-6);
  EXPECT_NEAR(done[1].first, 1.0, 1e-9);
  EXPECT_NEAR(done[1].second, 8.0, 1e-6);
}

TEST(FlowLink, DepartureSpeedsUpRemaining) {
  SimEngine engine;
  FlowLink link(engine, "wan", 10.0);
  std::vector<double> done;
  link.start_flow(5.0, 100.0, [&](double) { done.push_back(engine.now()); });
  link.start_flow(10.0, 100.0, [&](double) { done.push_back(engine.now()); });
  engine.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 1.0, 1e-9);   // 5 B at 5 B/s
  EXPECT_NEAR(done[1], 1.5, 1e-9);   // remaining 5 B at full 10 B/s
}

TEST(FlowLink, CancelledFlowNeverCompletes) {
  SimEngine engine;
  FlowLink link(engine, "wan", 10.0);
  bool fired = false;
  const auto id = link.start_flow(100.0, 10.0, [&](double) { fired = true; });
  engine.schedule_at(1.0, [&] { link.cancel(id); });
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(link.active_flows(), 0u);
}

TEST(FlowLink, NoFloatingPointStallAtLargeTimes) {
  SimEngine engine;
  // Advance virtual time far out, then run many small flows; the event loop
  // must terminate (regression test for the sub-quantum-dt stall).
  engine.schedule_at(1e7, [] {});
  engine.run();
  FlowLink link(engine, "wan", 1.2e9);
  int completed = 0;
  for (int i = 0; i < 200; ++i)
    link.start_flow(150.0 + i, 3e8, [&](double) { ++completed; });
  const std::size_t events = engine.run();
  EXPECT_EQ(completed, 200);
  EXPECT_LT(events, 100000u);
}

TEST(FlowLink, ManyStaggeredFlowsAllComplete) {
  SimEngine engine;
  FlowLink link(engine, "wan", 120.0 * 1024 * 1024);
  int completed = 0;
  for (int i = 0; i < 100; ++i) {
    engine.schedule_at(i * 0.1, [&, i] {
      link.start_flow(1e6 * (1 + i % 5), 8e6, [&](double) { ++completed; });
    });
  }
  engine.run();
  EXPECT_EQ(completed, 100);
}

}  // namespace
}  // namespace mfw::sim
