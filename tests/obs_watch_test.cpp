// Unit tests for the live-health layer (obs/watch.hpp): TelemetryBus
// fan-out + drop accounting, window_index / WindowedSeries boundary
// regressions, the SLO alert lifecycle (firing -> resolved with cause
// attribution), the EWMA/MAD anomaly detector, and the stable metrics text
// export order.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/rollup.hpp"
#include "obs/trace.hpp"
#include "obs/watch.hpp"

namespace mfw::obs {
namespace {

// ---------------------------------------------------------------------------
// TelemetryBus

/// A recorder wired to `bus`, with `n` compute spans of duration `dur`
/// recorded on `track` ending at `end0, end0+step, ...`.
void feed_spans(TraceRecorder& rec, const char* track, int n, double end0,
                double step, double dur,
                std::initializer_list<std::pair<std::string, std::string>>
                    extra = {}) {
  for (int i = 0; i < n; ++i) {
    const double end = end0 + i * step;
    Args args;
    for (const auto& [k, v] : extra) args.emplace_back(k, v);
    rec.add_span(track, "compute", "t", end - dur, end, std::move(args));
  }
}

TEST(TelemetryBusTest, DropAccountingIsExactAndPerSubscriber) {
  TraceRecorder rec;
  rec.set_enabled(true);
  TelemetryBus bus(4);
  const auto sub = bus.subscribe();
  rec.set_span_sink(&bus);
  feed_spans(rec, "preprocess/node0/w0", 10, 1.0, 1.0, 0.5);
  rec.set_span_sink(nullptr);

  EXPECT_EQ(bus.published(), 10u);
  EXPECT_EQ(bus.dropped(sub), 6u);  // capacity 4 -> first 4 kept, 6 dropped
  EXPECT_EQ(bus.dropped_total(), 6u);
  std::vector<TelemetryEvent> events;
  EXPECT_EQ(bus.poll(sub, events), 4u);
  ASSERT_EQ(events.size(), 4u);
  // FIFO: the kept events are the oldest four.
  EXPECT_DOUBLE_EQ(events.front().end, 1.0);
  EXPECT_DOUBLE_EQ(events.back().end, 4.0);
  // Drained queue accepts new events again.
  feed_spans(rec, "preprocess/node0/w0", 1, 20.0, 1.0, 0.5);
  rec.set_span_sink(&bus);
  feed_spans(rec, "preprocess/node0/w0", 1, 21.0, 1.0, 0.5);
  rec.set_span_sink(nullptr);
  events.clear();
  EXPECT_EQ(bus.poll(sub, events), 1u);
}

TEST(TelemetryBusTest, PollRespectsMaxEvents) {
  TraceRecorder rec;
  rec.set_enabled(true);
  TelemetryBus bus;
  const auto sub = bus.subscribe();
  rec.set_span_sink(&bus);
  feed_spans(rec, "download/w0", 5, 1.0, 1.0, 0.5);
  rec.set_span_sink(nullptr);

  std::vector<TelemetryEvent> events;
  EXPECT_EQ(bus.poll(sub, events, 2), 2u);
  EXPECT_EQ(bus.poll(sub, events, 0), 3u);  // 0 = drain the rest
  EXPECT_EQ(events.size(), 5u);
  EXPECT_EQ(bus.poll(sub, events), 0u);
}

TEST(TelemetryBusTest, SubscribersAreIndependent) {
  TraceRecorder rec;
  rec.set_enabled(true);
  TelemetryBus bus(2);
  const auto a = bus.subscribe();
  const auto b = bus.subscribe();
  rec.set_span_sink(&bus);
  feed_spans(rec, "preprocess/node0/w0", 3, 1.0, 1.0, 0.5);
  rec.set_span_sink(nullptr);

  EXPECT_EQ(bus.dropped(a), 1u);
  EXPECT_EQ(bus.dropped(b), 1u);
  std::vector<TelemetryEvent> events;
  EXPECT_EQ(bus.poll(a, events), 2u);
  // Draining a does not consume b's queue.
  events.clear();
  EXPECT_EQ(bus.poll(b, events), 2u);
  EXPECT_EQ(bus.subscriber_count(), 2u);
}

TEST(TelemetryBusTest, ChainsToNextSinkVerbatim) {
  TraceRecorder rec;
  rec.set_enabled(true);
  TelemetryBus bus(2);
  SpanRollup rollup(RollupConfig{10.0, 16});
  bus.set_next(&rollup);
  bus.subscribe();
  rec.set_span_sink(&bus);
  feed_spans(rec, "preprocess/node0/w0", 5, 1.0, 1.0, 0.5);
  rec.set_span_sink(nullptr);

  // The chained sink sees every span even though the queue dropped three.
  EXPECT_EQ(rollup.spans_seen(), 5u);
  EXPECT_EQ(bus.dropped_total(), 3u);
}

TEST(TelemetryBusTest, ParsesWellKnownArgs) {
  TraceRecorder rec;
  rec.set_enabled(true);
  TelemetryBus bus;
  const auto sub = bus.subscribe();
  rec.set_span_sink(&bus);
  rec.add_span("download/w0", "download", "d1", 0.0, 4.0,
               {{"queue_wait_s", "1.5"}, {"attempts", "3"}, {"status", "ok"}});
  rec.add_instant("flow/granules", "flow", "granule.ready", 4.0);
  rec.set_span_sink(nullptr);

  std::vector<TelemetryEvent> events;
  ASSERT_EQ(bus.poll(sub, events), 2u);
  EXPECT_FALSE(events[0].is_instant);
  EXPECT_EQ(events[0].stage, "download");
  EXPECT_EQ(events[0].category, "download");
  EXPECT_DOUBLE_EQ(events[0].queue_wait_s, 1.5);
  EXPECT_EQ(events[0].attempts, 3);
  EXPECT_EQ(events[0].status, "ok");
  EXPECT_DOUBLE_EQ(events[0].duration(), 4.0);
  EXPECT_TRUE(events[1].is_instant);
  EXPECT_EQ(events[1].stage, "flow");
}

// ---------------------------------------------------------------------------
// window_index / WindowedSeries boundary regressions

TEST(WindowIndexTest, HalfOpenSemanticsHoldForAwkwardWidths) {
  for (const double w : {0.1, 0.3, 1.0 / 3.0, 60.0, 86400.0}) {
    for (int k = 0; k < 200; ++k) {
      const double t = k * w;  // exactly on the edge, as represented
      const auto i = window_index(t, w);
      EXPECT_EQ(i, k) << "t=" << t << " w=" << w;
      EXPECT_LE(static_cast<double>(i) * w, t);
      EXPECT_GT(static_cast<double>(i + 1) * w, t);
    }
  }
}

TEST(WindowedSeriesTest, OutOfOrderSampleGetsItsOwnWindow) {
  WindowedSeries series(RollupConfig{10.0, 8});
  series.add(35.0, 1.0);  // window 3
  series.add(5.0, 2.0);   // window 0, older than the front, nothing evicted
  ASSERT_EQ(series.windows().size(), 2u);
  EXPECT_EQ(series.windows().front().index, 0);
  EXPECT_EQ(series.windows().front().count, 1u);
  EXPECT_DOUBLE_EQ(series.windows().front().sum, 2.0);
  EXPECT_EQ(series.windows().back().index, 3);
  EXPECT_EQ(series.windows().back().count, 1u);
}

TEST(WindowedSeriesTest, EvictedRangeSamplesFoldIntoFront) {
  WindowedSeries series(RollupConfig{10.0, 2});
  series.add(5.0, 1.0);   // window 0
  series.add(15.0, 1.0);  // window 1
  series.add(25.0, 1.0);  // window 2 -> evicts window 0
  EXPECT_EQ(series.evicted_windows(), 1u);
  series.add(5.0, 1.0);  // window 0 again: evicted, folds into the front
  ASSERT_EQ(series.windows().size(), 2u);
  EXPECT_EQ(series.windows().front().index, 1);
  EXPECT_EQ(series.windows().front().count, 2u);
  // Whole-stream totals never lose samples.
  std::uint64_t windowed = 0;
  for (const auto& window : series.windows()) windowed += window.count;
  EXPECT_EQ(series.count(), 4u);
  EXPECT_EQ(windowed + 1, series.count());  // 1 sample in the evicted window
}

TEST(WindowedSeriesTest, WindowCountsSumToStreamCount) {
  WindowedSeries series(RollupConfig{0.1, 4096});
  for (int i = 0; i < 1000; ++i) series.add(i * 0.1, 1.0);
  std::uint64_t windowed = 0;
  for (const auto& window : series.windows()) {
    EXPECT_EQ(window.count, 1u) << "window " << window.index;
    windowed += window.count;
  }
  EXPECT_EQ(windowed, series.count());
  EXPECT_EQ(series.count(), 1000u);
}

// ---------------------------------------------------------------------------
// HealthMonitor: SLO alert lifecycle

/// Bus + monitor wired to a private recorder; the caller records spans and
/// polls the monitor.
struct WatchHarness {
  TraceRecorder rec;
  TelemetryBus bus;
  HealthMonitor monitor;

  WatchHarness(HealthConfig config, std::vector<SloRule> rules)
      : monitor(config, std::move(rules)) {
    rec.set_enabled(true);
    monitor.attach(bus);
    rec.set_span_sink(&bus);
  }
  ~WatchHarness() { rec.set_span_sink(nullptr); }
};

SloRule rule(const char* name, const char* stage, SloMetric metric,
             double threshold, double window_s = 10.0) {
  SloRule r;
  r.name = name;
  r.stage = stage;
  r.metric = metric;
  r.threshold = threshold;
  r.window_s = window_s;
  return r;
}

TEST(HealthMonitorTest, InjectedStragglerFiresThenResolves) {
  HealthConfig config;
  config.window_s = 10.0;
  WatchHarness h(config, {rule("pp-lat", "preprocess",
                               SloMetric::kP99Latency, 1.0)});
  // Windows 0 and 1: healthy 0.5 s tasks. Window 2: an injected 5 s
  // straggler. Window 3: healthy again.
  feed_spans(h.rec, "preprocess/node0/w0", 3, 1.0, 1.0, 0.5);
  feed_spans(h.rec, "preprocess/node0/w0", 3, 11.0, 1.0, 0.5);
  feed_spans(h.rec, "preprocess/node0/w0", 1, 26.0, 1.0, 5.0);
  feed_spans(h.rec, "preprocess/node0/w0", 3, 31.0, 1.0, 0.5);

  h.monitor.poll(45.0);
  const auto& alerts = h.monitor.alerts();
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0].state, "firing");
  EXPECT_EQ(alerts[0].rule, "pp-lat");
  EXPECT_EQ(alerts[0].kind, "slo");
  EXPECT_EQ(alerts[0].stage, "preprocess");
  EXPECT_EQ(alerts[0].metric, "p99_latency");
  EXPECT_DOUBLE_EQ(alerts[0].window_t0, 20.0);
  EXPECT_NEAR(alerts[0].observed, 5.0, 5.0 * LogHistogram::kMaxRelativeError);
  // No queue pressure, no WAN evidence, service time inflated vs the
  // stream's own p50 -> node contention.
  EXPECT_EQ(alerts[0].cause, "node-contention");
  EXPECT_EQ(alerts[1].state, "resolved");
  EXPECT_DOUBLE_EQ(alerts[1].window_t0, 30.0);
  EXPECT_EQ(h.monitor.firing_count(), 0u);

  // The evaluated_to watermark prevents re-judging the same windows.
  h.monitor.poll(46.0);
  h.monitor.finish(50.0);
  EXPECT_EQ(h.monitor.alerts().size(), 2u);
}

TEST(HealthMonitorTest, CleanRunRaisesNoAlerts) {
  HealthConfig config;
  config.window_s = 10.0;
  WatchHarness h(config, {rule("pp-lat", "preprocess",
                               SloMetric::kP99Latency, 1.0),
                          rule("pp-queue", "preprocess",
                               SloMetric::kQueueWaitP99, 5.0)});
  for (int w = 0; w < 5; ++w)
    feed_spans(h.rec, "preprocess/node0/w0", 3, w * 10.0 + 1.0, 1.0, 0.5,
               {{"queue_wait_s", "0.1"}});
  h.monitor.finish(60.0);
  EXPECT_TRUE(h.monitor.alerts().empty());
  EXPECT_EQ(h.monitor.firing_count(), 0u);
  EXPECT_EQ(h.monitor.events_seen(), 15u);
}

TEST(HealthMonitorTest, QueueWaitViolationAttributesQueueWait) {
  HealthConfig config;
  config.window_s = 10.0;
  WatchHarness h(config, {rule("pp-queue", "preprocess",
                               SloMetric::kQueueWaitP99, 1.0)});
  feed_spans(h.rec, "preprocess/node0/w0", 3, 1.0, 1.0, 0.5,
             {{"queue_wait_s", "0.1"}});
  feed_spans(h.rec, "preprocess/node0/w0", 3, 11.0, 1.0, 0.5,
             {{"queue_wait_s", "8.0"}});
  h.monitor.poll(25.0);
  const auto& alerts = h.monitor.alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].state, "firing");
  EXPECT_EQ(alerts[0].metric, "queue_wait_p99");
  EXPECT_EQ(alerts[0].cause, "queue-wait");
  EXPECT_EQ(h.monitor.firing_count(), 1u);  // never resolved: stays firing
}

TEST(HealthMonitorTest, WanRetryEvidenceAttributesWanRetry) {
  HealthConfig config;
  config.window_s = 10.0;
  WatchHarness h(config, {rule("dl-lat", "download",
                               SloMetric::kP99Latency, 1.0)});
  for (int i = 0; i < 3; ++i)
    h.rec.add_span("download/w0", "download", "d", 11.0 + i, 14.0 + i,
                   {{"attempts", "3"}, {"status", "ok"}});
  // Evaluate only the window with data (a later empty window would resolve
  // the episode — empty latency windows are clean by design).
  h.monitor.poll(25.0);
  const auto& alerts = h.monitor.alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].state, "firing");
  EXPECT_EQ(alerts[0].cause, "wan-retry");
}

TEST(HealthMonitorTest, WanRetryBudgetRule) {
  HealthConfig config;
  config.window_s = 10.0;
  WatchHarness h(config, {rule("wan-budget", "download",
                               SloMetric::kWanRetryBudget, 2.0)});
  // Window 0: 2 retries (within budget). Window 1: 4 retries (violation).
  // Window 2: none (retry rules treat empty windows as clean -> resolved).
  h.rec.add_span("download/w0", "download", "d", 1.0, 2.0, {{"attempts", "3"}});
  h.rec.add_span("download/w0", "download", "d", 12.0, 13.0,
                 {{"attempts", "3"}});
  h.rec.add_span("download/w1", "download", "d", 13.0, 14.0,
                 {{"attempts", "3"}});
  h.rec.add_span("download/w0", "download", "d", 22.0, 23.0,
                 {{"attempts", "1"}});
  h.monitor.poll(35.0);
  const auto& alerts = h.monitor.alerts();
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0].state, "firing");
  EXPECT_DOUBLE_EQ(alerts[0].observed, 4.0);
  EXPECT_DOUBLE_EQ(alerts[0].window_t0, 10.0);
  EXPECT_EQ(alerts[1].state, "resolved");
}

TEST(HealthMonitorTest, DeadlineMissRateSkipsEmptyWindows) {
  HealthConfig config;
  config.window_s = 10.0;
  WatchHarness h(config, {rule("deadlines", "", SloMetric::kDeadlineMissRate,
                               0.5)});
  h.monitor.note_deadline(5.0, false);
  h.monitor.note_deadline(6.0, true);   // window 0: rate 0.5, at threshold
  h.monitor.note_deadline(15.0, true);
  h.monitor.note_deadline(16.0, true);  // window 1: rate 1.0 -> firing
  h.monitor.poll(25.0);
  ASSERT_EQ(h.monitor.alerts().size(), 1u);
  EXPECT_EQ(h.monitor.alerts()[0].state, "firing");
  EXPECT_DOUBLE_EQ(h.monitor.alerts()[0].observed, 1.0);
  // Window 2 has no outcomes: no information, still firing.
  h.monitor.poll(35.0);
  EXPECT_EQ(h.monitor.alerts().size(), 1u);
  EXPECT_EQ(h.monitor.firing_count(), 1u);
  // Window 3 recovers.
  h.monitor.note_deadline(35.0, false);
  h.monitor.poll(45.0);
  ASSERT_EQ(h.monitor.alerts().size(), 2u);
  EXPECT_EQ(h.monitor.alerts()[1].state, "resolved");
  EXPECT_EQ(h.monitor.firing_count(), 0u);
}

TEST(HealthMonitorTest, UtilizationFloorStopsAtLastBusyWindow) {
  HealthConfig config;
  config.window_s = 10.0;
  WatchHarness h(config, {rule("pp-util", "preprocess",
                               SloMetric::kUtilizationFloor, 0.5)});
  h.monitor.set_stage_capacity("preprocess", 1.0);
  h.rec.add_span("preprocess/node0/w0", "compute", "t", 0.0, 10.0);   // 100%
  h.rec.add_span("preprocess/node0/w0", "compute", "t", 10.0, 12.0);  // 20%
  // Polling far in the future must not flag the idle windows after the run
  // drained — only the low-utilization window 1 fires.
  h.monitor.poll(100.0);
  const auto& alerts = h.monitor.alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].state, "firing");
  EXPECT_EQ(alerts[0].metric, "utilization_floor");
  EXPECT_DOUBLE_EQ(alerts[0].window_t0, 10.0);
  EXPECT_NEAR(alerts[0].observed, 0.2, 1e-9);
}

TEST(HealthMonitorTest, AnomalyDetectorFlagsDepartureFromBaseline) {
  HealthConfig config;
  config.window_s = 10.0;
  config.anomaly_k = 3.0;
  config.anomaly_min_history = 5;
  WatchHarness h(config, {});
  // Six healthy windows build the baseline, window 6 bursts 10x, window 7
  // returns to baseline.
  for (int w = 0; w < 6; ++w)
    feed_spans(h.rec, "preprocess/node0/w0", 2, w * 10.0 + 1.0, 1.0, 1.0);
  feed_spans(h.rec, "preprocess/node0/w0", 2, 61.0, 1.0, 10.0);
  feed_spans(h.rec, "preprocess/node0/w0", 2, 71.0, 1.0, 1.0);
  h.monitor.poll(85.0);
  const auto& alerts = h.monitor.alerts();
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0].kind, "anomaly");
  EXPECT_EQ(alerts[0].rule, "anomaly:preprocess");
  EXPECT_EQ(alerts[0].state, "firing");
  EXPECT_DOUBLE_EQ(alerts[0].window_t0, 60.0);
  EXPECT_DOUBLE_EQ(alerts[0].observed, 10.0);  // window means are exact
  EXPECT_EQ(alerts[1].state, "resolved");
  EXPECT_EQ(h.monitor.firing_count(), 0u);
}

TEST(HealthMonitorTest, JsonAndDashboardCarryTheStream) {
  HealthConfig config;
  config.window_s = 10.0;
  WatchHarness h(config, {rule("pp-lat", "preprocess",
                               SloMetric::kP99Latency, 1.0)});
  feed_spans(h.rec, "preprocess/node0/w0", 1, 5.0, 1.0, 5.0);
  h.monitor.finish(9.0);  // still inside window 0: the episode stays firing
  const auto json = h.monitor.to_json(9.0);
  EXPECT_NE(json.find("\"schema\": \"mfw.health/v1\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"pp-lat\""), std::string::npos);
  EXPECT_NE(json.find("\"state\": \"firing\""), std::string::npos);
  EXPECT_NE(json.find("\"stage\": \"preprocess\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\": 0"), std::string::npos);
  const auto dash = h.monitor.dashboard(9.0);
  EXPECT_NE(dash.find("health @"), std::string::npos);
  EXPECT_NE(dash.find("firing:"), std::string::npos);
  EXPECT_NE(dash.find("pp-lat"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics text export: stable, sorted series order

TEST(MetricsExportTest, TextOrderIsSortedAndInsertionIndependent) {
  MetricsRegistry a;
  a.set_enabled(true);
  a.counter_add("zeta_total", 1.0, {{"stage", "b"}});
  a.counter_add("alpha_total", 2.0, {{"stage", "z"}});
  a.counter_add("alpha_total", 3.0, {{"stage", "a"}});
  a.gauge_set("mid_gauge", 4.0);

  MetricsRegistry b;
  b.set_enabled(true);
  b.gauge_set("mid_gauge", 4.0);
  b.counter_add("alpha_total", 3.0, {{"stage", "a"}});
  b.counter_add("zeta_total", 1.0, {{"stage", "b"}});
  b.counter_add("alpha_total", 2.0, {{"stage", "z"}});

  const auto text_a = to_metrics_text(a);
  EXPECT_EQ(text_a, to_metrics_text(b));
  // Sorted by (name, labels): alpha{a} before alpha{z} before zeta.
  const auto alpha_a = text_a.find("alpha_total{stage=\"a\"}");
  const auto alpha_z = text_a.find("alpha_total{stage=\"z\"}");
  const auto zeta = text_a.find("zeta_total");
  ASSERT_NE(alpha_a, std::string::npos);
  ASSERT_NE(alpha_z, std::string::npos);
  ASSERT_NE(zeta, std::string::npos);
  EXPECT_LT(alpha_a, alpha_z);
  EXPECT_LT(alpha_z, zeta);
}

}  // namespace
}  // namespace mfw::obs
