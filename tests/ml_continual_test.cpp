// Tests for continual learning: replay-buffer statistics and the
// catastrophic-forgetting mitigation (paper §V future work).
#include <gtest/gtest.h>

#include <cmath>

#include "ml/continual.hpp"

namespace mfw::ml {
namespace {

RiccConfig tiny_config() {
  RiccConfig config;
  config.tile_size = 8;
  config.channels = 2;
  config.base_channels = 4;
  config.conv_blocks = 2;
  config.latent_dim = 6;
  config.num_classes = 3;
  config.seed = 5;
  return config;
}

// Period-dependent textures: period 0 = smooth sinusoid, period 1 = sharp
// checkerboard-ish pattern — distinct enough that naive fine-tuning on
// period 1 degrades period-0 reconstruction.
std::vector<Tensor> period_tiles(const RiccConfig& config, int period,
                                 std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Tensor> tiles;
  for (std::size_t i = 0; i < count; ++i) {
    Tensor tile({config.channels, config.tile_size, config.tile_size});
    for (int c = 0; c < config.channels; ++c) {
      for (int h = 0; h < config.tile_size; ++h) {
        for (int w = 0; w < config.tile_size; ++w) {
          double value;
          if (period == 0) {
            value = 0.5 + 0.4 * std::sin(0.7 * h + 0.3 * c) *
                              std::cos(0.7 * w);
          } else {
            value = ((h / 2 + w / 2 + c) % 2 == 0) ? 0.9 : 0.1;
          }
          tile.at3(c, h, w) = static_cast<float>(value + 0.02 * rng.normal());
        }
      }
    }
    tiles.push_back(std::move(tile));
  }
  return tiles;
}

TEST(ReplayBuffer, FillsThenSamplesUniformly) {
  ReplayBuffer buffer(10, 1);
  RiccConfig config = tiny_config();
  const auto tiles = period_tiles(config, 0, 25, 2);
  buffer.offer_all(tiles);
  EXPECT_EQ(buffer.size(), 10u);
  EXPECT_EQ(buffer.seen(), 25u);
  const auto sample = buffer.sample(7);
  EXPECT_EQ(sample.size(), 7u);
  for (const auto& tile : sample) EXPECT_EQ(tile.size(), tiles[0].size());
}

TEST(ReplayBuffer, EmptySampleIsEmpty) {
  ReplayBuffer buffer(4, 1);
  EXPECT_TRUE(buffer.sample(3).empty());
  EXPECT_THROW(ReplayBuffer(0, 1), std::invalid_argument);
}

TEST(ReplayBuffer, ReservoirRetainsEarlyItems) {
  // With capacity 50 and 200 offers, roughly a quarter of retained items
  // should come from the first 50 offered — reservoir property (each item
  // has equal retention probability).
  RiccConfig config = tiny_config();
  ReplayBuffer buffer(50, 3);
  // Mark tiles by their first element.
  for (int i = 0; i < 200; ++i) {
    Tensor tile({config.channels, config.tile_size, config.tile_size});
    tile[0] = static_cast<float>(i);
    buffer.offer(tile);
  }
  int early = 0;
  for (const auto& tile : buffer.tiles())
    if (tile[0] < 50.0f) ++early;
  EXPECT_GT(early, 2);
  EXPECT_LT(early, 30);
}

TEST(Continual, ReplayReducesForgetting) {
  RiccConfig config = tiny_config();
  const auto old_train = period_tiles(config, 0, 24, 10);
  const auto old_eval = period_tiles(config, 0, 12, 11);
  const auto new_tiles = period_tiles(config, 1, 24, 12);

  RiccTrainOptions base_train;
  base_train.epochs = 8;
  base_train.batch_size = 8;
  base_train.learning_rate = 2e-3f;
  base_train.rotations = 0;

  auto run_update = [&](double replay_fraction) {
    RiccModel model(config);
    train_autoencoder(model, old_train, base_train);
    ReplayBuffer replay(64, 20);
    replay.offer_all(old_train);
    ContinualUpdateOptions options;
    options.train = base_train;
    options.train.epochs = 8;
    options.replay_fraction = replay_fraction;
    options.refit_centroids = false;
    return continual_update(model, replay, new_tiles, old_eval, options);
  };

  const auto naive = run_update(0.0);
  const auto replayed = run_update(0.5);
  // Both updates learn the new period.
  EXPECT_LT(naive.new_loss_after, 0.2f);
  EXPECT_LT(replayed.new_loss_after, 0.2f);
  // Rehearsal actually drew from the buffer and kept old-data loss lower.
  EXPECT_EQ(naive.replay_tiles_used, 0u);
  EXPECT_GT(replayed.replay_tiles_used, 0u);
  EXPECT_LT(replayed.old_loss_after, naive.old_loss_after);
  EXPECT_LT(replayed.forgetting(), naive.forgetting());
}

TEST(Continual, UpdateRefitsCentroidsWhenAsked) {
  RiccConfig config = tiny_config();
  RiccModel model(config);
  const auto old_train = period_tiles(config, 0, 12, 30);
  const auto new_tiles = period_tiles(config, 1, 12, 31);
  ReplayBuffer replay(32, 32);
  replay.offer_all(old_train);
  ContinualUpdateOptions options;
  options.train.epochs = 2;
  options.train.batch_size = 8;
  options.train.rotations = 0;
  options.refit_centroids = true;
  EXPECT_FALSE(model.has_centroids());
  continual_update(model, replay, new_tiles, old_train, options);
  EXPECT_TRUE(model.has_centroids());
  // The buffer absorbed the new period for future rehearsal.
  EXPECT_EQ(replay.seen(), 24u);
}

TEST(Continual, InputValidation) {
  RiccConfig config = tiny_config();
  RiccModel model(config);
  ReplayBuffer replay(8, 1);
  ContinualUpdateOptions options;
  EXPECT_THROW(continual_update(model, replay, {}, {}, options),
               std::invalid_argument);
  const auto tiles = period_tiles(config, 0, 4, 1);
  options.replay_fraction = 1.0;
  EXPECT_THROW(continual_update(model, replay, tiles, tiles, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace mfw::ml
