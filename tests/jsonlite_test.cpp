// Unit tests for the minimal JSON reader (util/jsonlite.hpp): value shapes,
// string escapes, the tolerant typed accessors the report consumers use, and
// — the part the CLI leans on — position-aware errors that distinguish
// truncated input from plain syntax errors.
#include <gtest/gtest.h>

#include <string>

#include "util/jsonlite.hpp"

namespace mfw::util {
namespace {

TEST(Jsonlite, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").boolean);
  EXPECT_FALSE(parse_json("false").boolean);
  EXPECT_DOUBLE_EQ(parse_json("42").number, 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-3.5e2").number, -350.0);
  EXPECT_EQ(parse_json("\"hi\"").string, "hi");
}

TEST(Jsonlite, ParsesNestedDocument) {
  const auto doc = parse_json(
      "{\"schema\": \"mfw.test/v1\", \"n\": 3,\n"
      " \"stages\": [{\"stage\": \"download\", \"p99\": 1.5}, {}],\n"
      " \"flag\": true, \"none\": null}");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.str("schema"), "mfw.test/v1");
  EXPECT_DOUBLE_EQ(doc.num("n"), 3.0);
  const auto& stages = doc.items("stages");
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0].str("stage"), "download");
  EXPECT_DOUBLE_EQ(stages[0].num("p99"), 1.5);
  EXPECT_NE(doc.find("flag"), nullptr);
  EXPECT_TRUE(doc.find("none")->is_null());
}

TEST(Jsonlite, TolerantAccessorsFallBack) {
  const auto doc = parse_json("{\"s\": \"x\", \"n\": 1}");
  EXPECT_DOUBLE_EQ(doc.num("missing", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(doc.num("s", -1.0), -1.0);  // wrong type -> fallback
  EXPECT_EQ(doc.str("missing", "d"), "d");
  EXPECT_EQ(doc.str("n", "d"), "d");
  EXPECT_TRUE(doc.items("missing").empty());
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Jsonlite, DecodesEscapesAndUnicode) {
  EXPECT_EQ(parse_json("\"a\\n\\t\\\"b\\\\\"").string, "a\n\t\"b\\");
  EXPECT_EQ(parse_json("\"\\u0041\"").string, "A");
  EXPECT_EQ(parse_json("\"\\u00e9\"").string, "\xc3\xa9");          // é
  EXPECT_EQ(parse_json("\"\\ud83d\\ude00\"").string, "\xf0\x9f\x98\x80");
}

TEST(Jsonlite, TruncationIsDistinguishedFromSyntaxErrors) {
  // Killed-writer shapes: the input simply ends mid-document.
  for (const char* text :
       {"{\"a\": 1,", "[1, 2", "\"unterminated", "{\"a\"", "tru"}) {
    try {
      parse_json(text);
      FAIL() << "expected JsonError for: " << text;
    } catch (const JsonError& e) {
      EXPECT_TRUE(e.truncated()) << text << " -> " << e.what();
    }
  }
  // Malformed bytes inside available input are *not* truncation.
  for (const char* text : {"{\"a\" 1}", "[1,, 2]", "nope", "{1: 2}"}) {
    try {
      parse_json(text);
      FAIL() << "expected JsonError for: " << text;
    } catch (const JsonError& e) {
      EXPECT_FALSE(e.truncated()) << text << " -> " << e.what();
    }
  }
}

TEST(Jsonlite, ErrorsCarryByteOffsets) {
  try {
    parse_json("{\"a\": @}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_EQ(e.offset(), 6u);
    EXPECT_NE(std::string(e.what()).find("at byte 6"), std::string::npos);
  }
}

TEST(Jsonlite, RejectsTrailingDataAndDeepNesting) {
  EXPECT_THROW(parse_json("{} {}"), JsonError);
  EXPECT_THROW(parse_json(std::string(200, '[')), JsonError);
  // 200 open brackets fail on depth, not truncation.
  try {
    parse_json(std::string(200, '['));
  } catch (const JsonError& e) {
    EXPECT_FALSE(e.truncated());
  }
}

}  // namespace
}  // namespace mfw::util
