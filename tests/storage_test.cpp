// Unit tests for filesystem abstractions: MemFs semantics, Lustre decorator
// accounting, and the binary reader/writer.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "storage/lustre_sim.hpp"
#include "storage/memfs.hpp"
#include "storage/posixfs.hpp"
#include "storage/serialize.hpp"

namespace mfw::storage {
namespace {

TEST(MemFs, WriteReadRoundTrip) {
  MemFs fs("test");
  fs.write_text("a/b.txt", "hello");
  EXPECT_TRUE(fs.exists("a/b.txt"));
  EXPECT_EQ(fs.read_text("a/b.txt"), "hello");
  EXPECT_EQ(fs.file_size("a/b.txt"), 5u);
}

TEST(MemFs, MissingFileThrows) {
  MemFs fs("test");
  EXPECT_THROW(fs.read_file("nope"), std::runtime_error);
  EXPECT_THROW(fs.file_size("nope"), std::runtime_error);
  EXPECT_THROW(fs.rename("nope", "x"), std::runtime_error);
  EXPECT_FALSE(fs.exists("nope"));
}

TEST(MemFs, OverwriteReplacesAndBumpsMtime) {
  MemFs fs("test");
  fs.write_text("f", "one");
  const auto m1 = fs.list("f").front().mtime;
  fs.write_text("f", "two!");
  const auto m2 = fs.list("f").front().mtime;
  EXPECT_EQ(fs.read_text("f"), "two!");
  EXPECT_GT(m2, m1);
  EXPECT_EQ(fs.file_count(), 1u);
}

TEST(MemFs, ListGlobAndSorted) {
  MemFs fs("test");
  fs.write_text("tiles/b.ncl", "");
  fs.write_text("tiles/a.ncl", "x");
  fs.write_text("outbox/c.ncl", "y");
  const auto tiles = fs.list("tiles/*.ncl");
  ASSERT_EQ(tiles.size(), 2u);
  EXPECT_EQ(tiles[0].path, "tiles/a.ncl");
  EXPECT_EQ(tiles[1].path, "tiles/b.ncl");
  EXPECT_EQ(fs.list("").size(), 3u);
}

TEST(MemFs, RemoveAndRename) {
  MemFs fs("test");
  fs.write_text("a", "1");
  fs.rename("a", "b");
  EXPECT_FALSE(fs.exists("a"));
  EXPECT_EQ(fs.read_text("b"), "1");
  EXPECT_TRUE(fs.remove("b"));
  EXPECT_FALSE(fs.remove("b"));
}

TEST(MemFs, WriteCallbackFires) {
  MemFs fs("test");
  std::vector<std::string> events;
  fs.on_write([&](const FileInfo& info) { events.push_back(info.path); });
  fs.write_text("x", "1");
  fs.write_text("y", "2");
  EXPECT_EQ(events, (std::vector<std::string>{"x", "y"}));
}

TEST(MemFs, TotalBytes) {
  MemFs fs("test");
  fs.write_text("a", "12345");
  fs.write_text("b", "123");
  EXPECT_EQ(fs.total_bytes(), 8u);
}

TEST(LustreSim, CountsBytesAndOps) {
  MemFs inner("scratch");
  LustreSimFs lustre(inner, 1e9);
  lustre.write_text("f", "12345678");
  (void)lustre.read_file("f");
  (void)lustre.read_file("f");
  EXPECT_EQ(lustre.bytes_written(), 8u);
  EXPECT_EQ(lustre.bytes_read(), 16u);
  EXPECT_EQ(lustre.write_ops(), 1u);
  EXPECT_EQ(lustre.read_ops(), 2u);
  lustre.reset_counters();
  EXPECT_EQ(lustre.bytes_written(), 0u);
}

TEST(LustreSim, DelegatesSemantics) {
  MemFs inner("scratch");
  LustreSimFs lustre(inner, 1e9);
  lustre.write_text("a/f", "x");
  EXPECT_TRUE(inner.exists("a/f"));  // decorator writes through
  lustre.rename("a/f", "b/f");
  EXPECT_TRUE(lustre.exists("b/f"));
  EXPECT_EQ(lustre.list("b/*").size(), 1u);
  EXPECT_TRUE(lustre.remove("b/f"));
  EXPECT_THROW(LustreSimFs(inner, 0.0), std::invalid_argument);
}

class PosixFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("mfw_posixfs_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::filesystem::path root_;
};

TEST_F(PosixFsTest, WriteReadListRemove) {
  PosixFs fs(root_, "disk");
  fs.write_text("tiles/a.ncl", "alpha");
  fs.write_text("tiles/b.ncl", "beta");
  fs.write_text("other/c.txt", "gamma");
  EXPECT_TRUE(fs.exists("tiles/a.ncl"));
  EXPECT_EQ(fs.read_text("tiles/a.ncl"), "alpha");
  EXPECT_EQ(fs.file_size("tiles/b.ncl"), 4u);
  const auto tiles = fs.list("tiles/*.ncl");
  ASSERT_EQ(tiles.size(), 2u);
  EXPECT_EQ(tiles[0].path, "tiles/a.ncl");
  EXPECT_TRUE(fs.remove("tiles/a.ncl"));
  EXPECT_FALSE(fs.remove("tiles/a.ncl"));
  EXPECT_THROW(fs.read_file("tiles/a.ncl"), std::runtime_error);
}

TEST_F(PosixFsTest, PersistsAcrossInstances) {
  {
    PosixFs fs(root_, "disk");
    fs.write_text("models/ricc.hdfl", "weights");
  }
  PosixFs reopened(root_, "disk");
  EXPECT_EQ(reopened.read_text("models/ricc.hdfl"), "weights");
}

TEST_F(PosixFsTest, RewriteBumpsMtimeMonotonically) {
  PosixFs fs(root_);
  fs.write_text("f", "one");
  const auto m1 = fs.list("f").front().mtime;
  fs.write_text("f", "two");
  const auto m2 = fs.list("f").front().mtime;
  EXPECT_GT(m2, m1);
}

TEST_F(PosixFsTest, RenameMovesAcrossDirectories) {
  PosixFs fs(root_);
  fs.write_text("tiles/x.ncl", "data");
  fs.rename("tiles/x.ncl", "outbox/x.ncl");
  EXPECT_FALSE(fs.exists("tiles/x.ncl"));
  EXPECT_EQ(fs.read_text("outbox/x.ncl"), "data");
  EXPECT_THROW(fs.rename("missing", "y"), std::runtime_error);
}

TEST_F(PosixFsTest, RejectsPathEscape) {
  PosixFs fs(root_);
  EXPECT_THROW(fs.write_text("../escape", "x"), std::invalid_argument);
  EXPECT_THROW(fs.read_file("a/../../b"), std::invalid_argument);
}

TEST(Binary, PrimitivesRoundTrip) {
  BinaryWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f32(3.5f);
  w.f64(-2.25);
  w.str("hello");
  const auto buffer = w.take();
  BinaryReader r(buffer);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_FLOAT_EQ(r.f32(), 3.5f);
  EXPECT_DOUBLE_EQ(r.f64(), -2.25);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.done());
}

TEST(Binary, TruncationDetected) {
  BinaryWriter w;
  w.u32(7);
  const auto buffer = w.take();
  BinaryReader r(buffer);
  (void)r.u16();
  EXPECT_THROW(r.u32(), FormatError);
}

TEST(Binary, PatchU32) {
  BinaryWriter w;
  w.u32(0);
  w.str("x");
  w.patch_u32(0, 99);
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.u32(), 99u);
  EXPECT_THROW(w.patch_u32(1000, 1), FormatError);
}

TEST(Binary, SkipAndRaw) {
  BinaryWriter w;
  w.u32(1);
  w.u32(2);
  w.u32(3);
  BinaryReader r(w.buffer());
  r.skip(4);
  const auto view = r.raw(4);
  EXPECT_EQ(view.size(), 4u);
  EXPECT_EQ(r.u32(), 3u);
  EXPECT_EQ(r.remaining(), 0u);
}

}  // namespace
}  // namespace mfw::storage
