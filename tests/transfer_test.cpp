// Tests for the transfer substrate: DownloadService behaviour (worker
// scaling, launch latency, file landing, daytime filter) and the
// Globus-Transfer-like TransferService (parallel streams, checksum verify,
// events, failure paths).
#include <gtest/gtest.h>

#include "flow/event_bus.hpp"
#include "flow/events.hpp"
#include "storage/memfs.hpp"
#include "transfer/download.hpp"
#include "transfer/transfer_service.hpp"

namespace mfw::transfer {
namespace {

DownloadConfig small_config() {
  DownloadConfig config;
  config.workers = 3;
  config.products = {modis::ProductKind::kMod02};
  config.span = modis::DaySpan{2022, 1, 1};
  config.max_files_per_product = 6;
  config.seed = 5;
  return config;
}

struct DownloadFixture {
  sim::SimEngine engine;
  modis::ArchiveService archive{2022};
  sim::FlowLink wan{engine, "wan", 120.0 * 1024 * 1024};
  storage::MemFs fs{"defiant"};
};

TEST(Download, LandsAllRequestedFiles) {
  DownloadFixture fx;
  DownloadService service(fx.engine, fx.archive, fx.wan, fx.fs, small_config());
  bool done = false;
  service.start([&](const DownloadReport& report) {
    done = true;
    EXPECT_EQ(report.files.size(), 6u);
    EXPECT_GT(report.total_bytes, 0u);
    EXPECT_GT(report.launch_latency(), 0.0);
    EXPECT_GT(report.finished_at, report.transfers_started_at);
  });
  fx.engine.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(fx.fs.list("staging/*.hdf").size(), 6u);
}

TEST(Download, LaunchLatencyMatchesConfiguredComponents) {
  DownloadFixture fx;
  auto config = small_config();
  config.endpoint_launch = 3.4;
  config.listing_latency = 2.2;
  DownloadService service(fx.engine, fx.archive, fx.wan, fx.fs, config);
  double launch = -1;
  service.start([&](const DownloadReport& r) { launch = r.launch_latency(); });
  fx.engine.run();
  EXPECT_NEAR(launch, 5.6, 1e-9);
}

TEST(Download, MoreWorkersFinishFaster) {
  auto run_with = [](int workers) {
    DownloadFixture fx;
    auto config = small_config();
    config.workers = workers;
    config.max_files_per_product = 12;
    DownloadService service(fx.engine, fx.archive, fx.wan, fx.fs, config);
    double elapsed = 0;
    service.start([&](const DownloadReport& r) { elapsed = r.elapsed(); });
    fx.engine.run();
    return elapsed;
  };
  EXPECT_LT(run_with(6), run_with(3) * 0.8);
}

TEST(Download, DaytimeFilterReducesFiles) {
  DownloadFixture fx;
  auto config = small_config();
  config.max_files_per_product.reset();
  config.daytime_only = true;
  DownloadService service(fx.engine, fx.archive, fx.wan, fx.fs, config);
  std::size_t files = 0;
  service.start([&](const DownloadReport& r) { files = r.files.size(); });
  fx.engine.run();
  EXPECT_GT(files, 50u);
  EXPECT_LT(files, 288u);
}

TEST(Download, MaterializeWritesRealGranules) {
  DownloadFixture fx;
  auto config = small_config();
  config.max_files_per_product = 2;
  config.materialize = true;
  config.geometry = modis::GranuleGeometry{64, 48, 4};
  DownloadService service(fx.engine, fx.archive, fx.wan, fx.fs, config);
  service.start(nullptr);
  fx.engine.run();
  const auto files = fx.fs.list("staging/*.hdf");
  ASSERT_EQ(files.size(), 2u);
  // Parse one file back to prove real content landed.
  const auto granule = modis::Mod02Granule::from_hdfl(
      storage::HdflFile::deserialize(fx.fs.read_file(files[0].path)));
  EXPECT_EQ(granule.spec.geometry.rows, 64);
}

TEST(Download, StartTwiceThrows) {
  DownloadFixture fx;
  DownloadService service(fx.engine, fx.archive, fx.wan, fx.fs, small_config());
  service.start(nullptr);
  EXPECT_THROW(service.start(nullptr), std::logic_error);
}

TEST(Download, ActivityPeaksAtWorkerCount) {
  DownloadFixture fx;
  DownloadService service(fx.engine, fx.archive, fx.wan, fx.fs, small_config());
  service.start(nullptr);
  fx.engine.run();
  int peak = 0;
  for (const auto& [t, n] : service.activity()) peak = std::max(peak, n);
  EXPECT_EQ(peak, 3);
  EXPECT_EQ(service.activity().back().second, 0);
}

TEST(Download, PublishesTypedPerFileEventsOnBus) {
  DownloadFixture fx;
  flow::EventBus bus(fx.engine);
  std::vector<flow::FileEvent> events;
  bus.subscribe(flow::topics::kDownloadFile, [&](const util::YamlNode& node) {
    const auto event = flow::FileEvent::from_yaml(node);
    ASSERT_TRUE(event.has_value());
    events.push_back(*event);
  });
  DownloadService service(fx.engine, fx.archive, fx.wan, fx.fs, small_config());
  service.set_event_bus(&bus);
  DownloadReport report;
  service.start([&](const DownloadReport& r) { report = r; });
  fx.engine.run();
  ASSERT_EQ(events.size(), report.files.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, report.files[i].id);
    EXPECT_EQ(events[i].path, report.files[i].path);
    EXPECT_EQ(events[i].bytes, report.files[i].bytes);
    EXPECT_NEAR(events[i].finished_at, report.files[i].finished_at, 1e-6);
  }
}

TEST(Download, FileObserverSeesEachStoredFile) {
  DownloadFixture fx;
  DownloadService service(fx.engine, fx.archive, fx.wan, fx.fs, small_config());
  std::size_t observed = 0;
  double last_at = -1.0;
  service.set_file_observer([&](const DownloadedFile& file) {
    ++observed;
    // The observer fires synchronously at store time, in completion order.
    EXPECT_GE(file.finished_at, last_at);
    last_at = file.finished_at;
    EXPECT_TRUE(fx.fs.exists(file.path));
  });
  DownloadReport report;
  service.start([&](const DownloadReport& r) { report = r; });
  fx.engine.run();
  EXPECT_EQ(observed, report.files.size());
}

TEST(Download, RejectsBadConfig) {
  DownloadFixture fx;
  auto config = small_config();
  config.workers = 0;
  EXPECT_THROW(
      DownloadService(fx.engine, fx.archive, fx.wan, fx.fs, config),
      std::invalid_argument);
  config = small_config();
  config.products.clear();
  EXPECT_THROW(
      DownloadService(fx.engine, fx.archive, fx.wan, fx.fs, config),
      std::invalid_argument);
}

struct TransferFixture {
  sim::SimEngine engine;
  sim::FlowLink link{engine, "hpc", 1.2e9};
  storage::MemFs src{"defiant"};
  storage::MemFs dst{"orion"};
  TransferService service{engine, link};
};

TEST(Download, ReportStatistics) {
  DownloadFixture fx;
  DownloadService service(fx.engine, fx.archive, fx.wan, fx.fs, small_config());
  DownloadReport report;
  service.start([&](const DownloadReport& r) { report = r; });
  fx.engine.run();
  EXPECT_GT(report.mean_file_bps(), 0.0);
  EXPECT_GE(report.stddev_file_bps(), 0.0);
  EXPECT_GT(report.aggregate_bps(), 0.0);
  // Aggregate over 3 workers exceeds the mean single-file rate.
  EXPECT_GT(report.aggregate_bps(), report.mean_file_bps());
  for (const auto& f : report.files) {
    EXPECT_EQ(f.attempts, 1);
    EXPECT_GT(f.mean_bps, 0.0);
  }
}

TEST(Transfer, MovesFilesWithChecksums) {
  TransferFixture fx;
  for (int i = 0; i < 5; ++i)
    fx.src.write_text("outbox/f" + std::to_string(i) + ".ncl",
                      std::string(1000 + i, 'x'));
  TransferRequest request;
  request.source = &fx.src;
  request.destination = &fx.dst;
  request.pattern = "outbox/*.ncl";
  request.dest_prefix = "aicca";
  request.parallel_streams = 2;
  std::vector<TransferEventKind> events;
  const auto id = fx.service.submit(
      request, [&](const TransferEvent& e) { events.push_back(e.kind); });
  fx.engine.run();
  const auto& status = fx.service.status(id);
  EXPECT_EQ(status.done_files, 5u);
  EXPECT_FALSE(status.failed);
  EXPECT_EQ(fx.dst.list("aicca/*.ncl").size(), 5u);
  EXPECT_EQ(fx.dst.read_text("aicca/f0.ncl"), std::string(1000, 'x'));
  ASSERT_GE(events.size(), 7u);  // started + 5 files + succeeded
  EXPECT_EQ(events.front(), TransferEventKind::kStarted);
  EXPECT_EQ(events.back(), TransferEventKind::kSucceeded);
}

TEST(Transfer, ExplicitPathList) {
  TransferFixture fx;
  fx.src.write_text("a.ncl", "data-a");
  fx.src.write_text("b.ncl", "data-b");
  TransferRequest request;
  request.source = &fx.src;
  request.destination = &fx.dst;
  request.paths = {"a.ncl"};
  request.dest_prefix = "landing";
  fx.service.submit(request, nullptr);
  fx.engine.run();
  EXPECT_TRUE(fx.dst.exists("landing/a.ncl"));
  EXPECT_FALSE(fx.dst.exists("landing/b.ncl"));
}

TEST(Transfer, LargerTransfersTakeLonger) {
  TransferFixture fx;
  fx.src.write_text("small.bin", std::string(1000, 'a'));
  fx.src.write_text("big.bin", std::string(1000000, 'b'));
  double small_done = -1, big_done = -1;
  TransferRequest request;
  request.source = &fx.src;
  request.destination = &fx.dst;
  request.paths = {"small.bin"};
  request.dest_prefix = "d";
  fx.service.submit(request, [&](const TransferEvent& e) {
    if (e.kind == TransferEventKind::kSucceeded) small_done = e.time;
  });
  fx.engine.run();
  TransferRequest big;
  big.source = &fx.src;
  big.destination = &fx.dst;
  big.paths = {"big.bin"};
  big.dest_prefix = "d";
  const double t0 = fx.engine.now();
  fx.service.submit(big, [&](const TransferEvent& e) {
    if (e.kind == TransferEventKind::kSucceeded) big_done = e.time - t0;
  });
  fx.engine.run();
  EXPECT_GT(big_done, small_done);
}

TEST(Transfer, MissingSourceFileFailsTask) {
  TransferFixture fx;
  fx.src.write_text("f.ncl", "x");
  TransferRequest request;
  request.source = &fx.src;
  request.destination = &fx.dst;
  request.paths = {"f.ncl"};
  request.dest_prefix = "d";
  bool failed = false;
  // Remove the file between submit and flow completion.
  const auto id = fx.service.submit(request, [&](const TransferEvent& e) {
    if (e.kind == TransferEventKind::kFailed) failed = true;
  });
  fx.src.remove("f.ncl");
  fx.engine.run();
  EXPECT_TRUE(failed);
  EXPECT_TRUE(fx.service.status(id).failed);
}

TEST(Transfer, RejectsMalformedRequests) {
  TransferFixture fx;
  TransferRequest request;  // no endpoints
  EXPECT_THROW(fx.service.submit(request, nullptr), std::invalid_argument);
  request.source = &fx.src;
  request.destination = &fx.dst;
  EXPECT_THROW(fx.service.submit(request, nullptr), std::invalid_argument);
  request.pattern = "*.none";
  EXPECT_THROW(fx.service.submit(request, nullptr), std::invalid_argument);
  EXPECT_THROW(fx.service.status(TransferTaskId{999}), std::invalid_argument);
}

}  // namespace
}  // namespace mfw::transfer
