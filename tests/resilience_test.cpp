// Failure-injection tests: transient download failures with retry/backoff,
// node crashes with task requeue, and silent corruption caught by transfer
// checksums.
#include <gtest/gtest.h>

#include "compute/cluster.hpp"
#include "flow/event_bus.hpp"
#include "flow/events.hpp"
#include "storage/faulty_fs.hpp"
#include "storage/memfs.hpp"
#include "transfer/download.hpp"
#include "transfer/transfer_service.hpp"
#include "util/log.hpp"

namespace mfw {
namespace {

class ResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Logger::instance().set_level(util::LogLevel::kOff);
  }
  void TearDown() override {
    util::Logger::instance().set_level(util::LogLevel::kInfo);
  }
};

// ---------------------------------------------------------------- download

struct DownloadRig {
  sim::SimEngine engine;
  modis::ArchiveService archive{2022};
  sim::FlowLink wan{engine, "wan", 23.5 * 1024 * 1024};
  storage::MemFs fs{"defiant"};
};

transfer::DownloadConfig flaky_config(double failure_rate) {
  transfer::DownloadConfig config;
  config.workers = 3;
  config.products = {modis::ProductKind::kMod02};
  config.span = modis::DaySpan{2022, 1, 1};
  config.max_files_per_product = 10;
  config.transient_failure_rate = failure_rate;
  config.max_attempts = 5;
  config.seed = 77;
  return config;
}

TEST_F(ResilienceTest, DownloadRetriesTransientFailures) {
  DownloadRig rig;
  transfer::DownloadService service(rig.engine, rig.archive, rig.wan, rig.fs,
                                    flaky_config(0.35));
  transfer::DownloadReport report;
  service.start([&](const transfer::DownloadReport& r) { report = r; });
  rig.engine.run();
  EXPECT_EQ(report.files.size(), 10u);  // everything eventually lands
  EXPECT_GT(report.retries, 0u);        // and retries happened
  EXPECT_TRUE(report.failed.empty());
  // Retried files record their attempt counts.
  int max_attempts = 0;
  for (const auto& f : report.files) max_attempts = std::max(max_attempts, f.attempts);
  EXPECT_GT(max_attempts, 1);
  EXPECT_EQ(rig.fs.list("staging/*.hdf").size(), 10u);
}

TEST_F(ResilienceTest, DownloadRetriesCostTime) {
  auto elapsed_with = [](double rate) {
    DownloadRig rig;
    transfer::DownloadService service(rig.engine, rig.archive, rig.wan, rig.fs,
                                      flaky_config(rate));
    double elapsed = 0;
    service.start(
        [&](const transfer::DownloadReport& r) { elapsed = r.elapsed(); });
    rig.engine.run();
    return elapsed;
  };
  EXPECT_GT(elapsed_with(0.4), elapsed_with(0.0));
}

TEST_F(ResilienceTest, DownloadGivesUpAfterMaxAttempts) {
  DownloadRig rig;
  auto config = flaky_config(1.0);  // every attempt fails
  config.max_attempts = 3;
  transfer::DownloadService service(rig.engine, rig.archive, rig.wan, rig.fs,
                                    config);
  transfer::DownloadReport report;
  service.start([&](const transfer::DownloadReport& r) { report = r; });
  rig.engine.run();
  EXPECT_TRUE(report.files.empty());
  EXPECT_EQ(report.failed.size(), 10u);
  EXPECT_EQ(report.retries, 10u * 2u);  // 2 retries per file before giving up
}

TEST_F(ResilienceTest, DownloadGiveUpsPublishFailedEvents) {
  DownloadRig rig;
  flow::EventBus bus(rig.engine);
  std::size_t stored = 0;
  std::vector<flow::FileEvent> abandoned;
  bus.subscribe(flow::topics::kDownloadFile,
                [&](const util::YamlNode&) { ++stored; });
  bus.subscribe(flow::topics::kDownloadFailed, [&](const util::YamlNode& node) {
    const auto event = flow::FileEvent::from_yaml(node);
    ASSERT_TRUE(event.has_value());
    abandoned.push_back(*event);
  });
  auto config = flaky_config(1.0);
  config.max_attempts = 3;
  transfer::DownloadService service(rig.engine, rig.archive, rig.wan, rig.fs,
                                    config);
  service.set_event_bus(&bus);
  service.start(nullptr);
  rig.engine.run();
  EXPECT_EQ(stored, 0u);
  ASSERT_EQ(abandoned.size(), 10u);
  for (const auto& event : abandoned) {
    EXPECT_TRUE(event.path.empty());  // never landed
    EXPECT_EQ(event.attempts, 3);
  }
}

// ------------------------------------------------------------- node crash

TEST_F(ResilienceTest, NodeFailureRequeuesOntoSurvivors) {
  sim::SimEngine engine;
  compute::ClusterExecutor exec(engine, compute::defiant_law_factory());
  const int doomed = exec.add_node(8);
  const int survivor = exec.add_node(8);
  int completed = 0;
  for (int i = 0; i < 40; ++i) {
    compute::SimTaskDesc desc;
    desc.cpu_seconds = 0.2;
    desc.shared_demand = 40.0;
    desc.payload = 40.0;
    exec.submit(desc, [&](const compute::SimTaskResult&) { ++completed; });
  }
  // Crash the first node mid-run.
  engine.schedule_at(10.0, [&] { EXPECT_TRUE(exec.fail_node(doomed)); });
  engine.run();
  EXPECT_EQ(completed, 40);
  EXPECT_GT(exec.requeued(), 0u);
  EXPECT_NEAR(exec.completed_payload(), 40 * 40.0, 1e-6);
  // Every task finishing after the crash ran on the survivor.
  for (const auto& r : exec.results()) {
    if (r.finished_at > 10.0) EXPECT_EQ(r.node, survivor);
  }
}

TEST_F(ResilienceTest, AllNodesFailedTasksWaitForNewNode) {
  sim::SimEngine engine;
  compute::ClusterExecutor exec(engine, compute::defiant_law_factory());
  const int only = exec.add_node(4);
  int completed = 0;
  for (int i = 0; i < 8; ++i) {
    compute::SimTaskDesc desc;
    desc.shared_demand = 50.0;
    exec.submit(desc, [&](const compute::SimTaskResult&) { ++completed; });
  }
  engine.schedule_at(1.0, [&] { exec.fail_node(only); });
  engine.run();
  EXPECT_EQ(completed, 0);
  EXPECT_EQ(exec.node_count(), 0u);
  EXPECT_EQ(exec.queued(), 8u);  // everything requeued, waiting
  // Recovery: a replacement node drains the queue.
  exec.add_node(4);
  engine.run();
  EXPECT_EQ(completed, 8);
}

TEST_F(ResilienceTest, FailUnknownNodeIsNoop) {
  sim::SimEngine engine;
  compute::ClusterExecutor exec(engine, compute::defiant_law_factory());
  EXPECT_FALSE(exec.fail_node(123));
}

// ------------------------------------------------------ corruption + CRC

TEST_F(ResilienceTest, FaultyFsCorruptsAndCounts) {
  storage::MemFs inner("x");
  storage::FaultyFs faulty(inner, storage::FaultConfig{1.0, 0.0, 3});
  inner.write_text("f", "hello world");
  const auto data = faulty.read_file("f");
  EXPECT_NE(std::string(reinterpret_cast<const char*>(data.data()), data.size()),
            "hello world");
  EXPECT_EQ(faulty.corrupted_reads(), 1u);
}

TEST_F(ResilienceTest, FaultyFsWriteFailures) {
  storage::MemFs inner("x");
  storage::FaultyFs faulty(inner, storage::FaultConfig{0.0, 1.0, 3});
  EXPECT_THROW(faulty.write_text("f", "x"), std::runtime_error);
  EXPECT_EQ(faulty.failed_writes(), 1u);
  EXPECT_FALSE(inner.exists("f"));
}

TEST_F(ResilienceTest, ChecksumCatchesCorruptionAndRetrySucceeds) {
  sim::SimEngine engine;
  sim::FlowLink link(engine, "hpc", 1e9);
  storage::MemFs src("defiant");
  storage::MemFs dst_inner("orion");
  // Half the verification reads come back corrupted; retries must win.
  storage::FaultyFs dst(dst_inner, storage::FaultConfig{0.5, 0.0, 9});
  transfer::TransferService service(engine, link);
  for (int i = 0; i < 6; ++i)
    src.write_text("out/f" + std::to_string(i), std::string(5000, 'd'));
  transfer::TransferRequest request;
  request.source = &src;
  request.destination = &dst;
  request.pattern = "out/*";
  request.dest_prefix = "aicca";
  request.max_retries = 10;
  const auto id = service.submit(request, nullptr);
  engine.run();
  const auto& status = service.status(id);
  EXPECT_FALSE(status.failed);
  EXPECT_EQ(status.done_files, 6u);
  EXPECT_GT(status.retries, 0u);
  // The *landed* bytes (inner store) are intact — corruption was read-side.
  for (const auto& info : dst_inner.list("aicca/*"))
    EXPECT_EQ(dst_inner.read_text(info.path), std::string(5000, 'd'));
}

TEST_F(ResilienceTest, ChecksumFailureExhaustsRetriesAndFails) {
  sim::SimEngine engine;
  sim::FlowLink link(engine, "hpc", 1e9);
  storage::MemFs src("defiant");
  storage::MemFs dst_inner("orion");
  storage::FaultyFs dst(dst_inner, storage::FaultConfig{1.0, 0.0, 9});
  transfer::TransferService service(engine, link);
  src.write_text("out/f", "data");
  transfer::TransferRequest request;
  request.source = &src;
  request.destination = &dst;
  request.paths = {"out/f"};
  request.dest_prefix = "aicca";
  request.max_retries = 2;
  bool failed = false;
  const auto id = service.submit(request, [&](const transfer::TransferEvent& e) {
    if (e.kind == transfer::TransferEventKind::kFailed) failed = true;
  });
  engine.run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(service.status(id).retries, 2u);
}

}  // namespace
}  // namespace mfw
