// Tests for the downstream AICCA analytics module, including an end-to-end
// check against the materialized pipeline's Orion output.
#include <gtest/gtest.h>

#include "analysis/aicca.hpp"
#include "pipeline/eoml_workflow.hpp"
#include "preprocess/tile_io.hpp"
#include "storage/memfs.hpp"
#include "util/log.hpp"

namespace mfw::analysis {
namespace {

// Builds a labelled tile file with hand-chosen records.
void write_labelled_file(storage::FileSystem& fs, const std::string& path,
                         int slot, const std::vector<TileRecord>& tiles) {
  preprocess::TilerResult result;
  result.daytime = true;
  for (const auto& record : tiles) {
    preprocess::Tile tile;
    tile.tile_size = 4;
    tile.channels = 1;
    tile.data.assign(16, 0.5f);
    tile.center_lat = record.latitude;
    tile.center_lon = record.longitude;
    tile.cloud_fraction = record.cloud_fraction;
    tile.mean_optical_thickness = record.optical_thickness;
    tile.mean_cloud_top_pressure = record.cloud_top_pressure;
    tile.mean_water_path = record.water_path;
    result.tiles.push_back(std::move(tile));
  }
  modis::GranuleId id{modis::ProductKind::kMod02, modis::Satellite::kTerra,
                      2022, 1, slot};
  preprocess::write_tile_file(fs, path, id, result);
  std::vector<std::int32_t> labels;
  for (const auto& record : tiles) labels.push_back(record.label);
  preprocess::append_labels(fs, path, labels);
}

TileRecord make_record(int label, float lat, float cf, float cot) {
  TileRecord record;
  record.label = label;
  record.latitude = lat;
  record.cloud_fraction = cf;
  record.optical_thickness = cot;
  record.cloud_top_pressure = 500.0f;
  record.water_path = 100.0f;
  return record;
}

TEST(AiccaArchive, LoadsRecordsAndHistogram) {
  storage::MemFs fs("orion");
  write_labelled_file(fs, "aicca/a.ncl", 0,
                      {make_record(0, 10.0f, 0.5f, 5.0f),
                       make_record(1, -40.0f, 0.8f, 20.0f)});
  write_labelled_file(fs, "aicca/b.ncl", 5,
                      {make_record(1, 55.0f, 0.9f, 30.0f)});
  const auto archive = AiccaArchive::load(fs, "aicca/*.ncl");
  EXPECT_EQ(archive.tile_count(), 3u);
  EXPECT_EQ(archive.file_count(), 2u);
  const auto histogram = archive.class_histogram(3);
  EXPECT_EQ(histogram[0], 1u);
  EXPECT_EQ(histogram[1], 2u);
  EXPECT_EQ(histogram[2], 0u);
  EXPECT_THROW(archive.class_histogram(1), std::out_of_range);
  EXPECT_THROW(archive.class_histogram(0), std::invalid_argument);
}

TEST(AiccaArchive, ClassStatsAggregateCorrectly) {
  storage::MemFs fs("orion");
  write_labelled_file(fs, "aicca/a.ncl", 0,
                      {make_record(2, 10.0f, 0.4f, 10.0f),
                       make_record(2, -30.0f, 0.6f, 30.0f)});
  const auto archive = AiccaArchive::load(fs, "aicca/*.ncl");
  const auto stats = archive.class_stats();
  ASSERT_EQ(stats.size(), 1u);
  const auto& entry = stats.at(2);
  EXPECT_EQ(entry.count, 2u);
  EXPECT_NEAR(entry.mean_cloud_fraction, 0.5, 1e-6);
  EXPECT_NEAR(entry.mean_optical_thickness, 20.0, 1e-5);
  EXPECT_NEAR(entry.mean_abs_latitude, 20.0, 1e-5);
}

TEST(AiccaArchive, ZonalCountsBucketByLatitude) {
  storage::MemFs fs("orion");
  write_labelled_file(fs, "aicca/a.ncl", 0,
                      {make_record(0, -89.9f, 0.5f, 5.0f),
                       make_record(0, 0.1f, 0.5f, 5.0f),
                       make_record(1, 89.9f, 0.5f, 5.0f)});
  const auto archive = AiccaArchive::load(fs, "aicca/*.ncl");
  const auto zonal = archive.zonal_class_counts(2, 15.0);
  ASSERT_EQ(zonal.size(), 12u);
  EXPECT_EQ(zonal.front()[0], 1u);   // south pole band, class 0
  EXPECT_EQ(zonal[6][0], 1u);        // [0, 15) band
  EXPECT_EQ(zonal.back()[1], 1u);    // north pole band, class 1
  EXPECT_THROW(archive.zonal_class_counts(2, 0.0), std::invalid_argument);
}

TEST(AiccaArchive, SkipsManifestOnlyFiles) {
  storage::MemFs fs("orion");
  modis::GranuleId id{modis::ProductKind::kMod02, modis::Satellite::kTerra,
                      2022, 1, 7};
  preprocess::write_tile_manifest(fs, "aicca/manifest.ncl", id, 12);
  write_labelled_file(fs, "aicca/full.ncl", 8,
                      {make_record(0, 0.0f, 0.5f, 5.0f)});
  const auto archive = AiccaArchive::load(fs, "aicca/*.ncl");
  EXPECT_EQ(archive.tile_count(), 1u);
  EXPECT_EQ(archive.skipped_manifests(), 1u);
  EXPECT_FALSE(archive.report(42).empty());
}

TEST(AiccaArchive, EndToEndFromMaterializedPipeline) {
  util::Logger::instance().set_level(util::LogLevel::kError);
  pipeline::EomlConfig config;
  config.max_files = 4;
  config.daytime_only = true;
  config.preprocess_nodes = 2;
  config.workers_per_node = 4;
  config.materialize = true;
  config.geometry = modis::GranuleGeometry{64, 48, 6};
  config.tiler.tile_size = 16;
  config.tiler.channels = 6;
  pipeline::EomlWorkflow workflow(config);
  const auto report = workflow.run();

  const auto archive = AiccaArchive::load(workflow.orion_fs(), "aicca/*.ncl");
  EXPECT_EQ(archive.tile_count(), report.total_tiles);
  // Pseudo-labels land in [0, 42).
  const auto histogram = archive.class_histogram(42);
  std::size_t total = 0;
  for (auto count : histogram) total += count;
  EXPECT_EQ(total, report.total_tiles);
  // Physical aggregates are plausible: cloud fraction respects the tiler's
  // selection threshold.
  for (const auto& record : archive.records()) {
    EXPECT_GE(record.cloud_fraction, 0.3f);
    EXPECT_LE(record.cloud_fraction, 1.0f);
    EXPECT_GE(record.latitude, -90.0f);
    EXPECT_LE(record.latitude, 90.0f);
  }
  util::Logger::instance().set_level(util::LogLevel::kInfo);
}

TEST(AiccaArchive, ZonalBandsClampPolesIntoOutermostBands) {
  storage::MemFs fs("orion");
  TileRecord north = make_record(0, 90.0f, 0.5f, 5.0f);
  TileRecord south = make_record(1, -90.0f, 0.5f, 5.0f);
  write_labelled_file(fs, "aicca/poles.ncl", 0, {north, south});
  const auto archive = AiccaArchive::load(fs, "aicca/*.ncl");
  const auto zonal = archive.zonal_class_counts(2, 15.0);
  ASSERT_EQ(zonal.size(), 12u);
  // Latitude exactly +90 computes band 12 and must clamp into band 11;
  // exactly -90 is band 0.
  EXPECT_EQ(zonal[11][0], 1u);
  EXPECT_EQ(zonal[0][1], 1u);
  std::size_t total = 0;
  for (const auto& band : zonal)
    for (auto count : band) total += count;
  EXPECT_EQ(total, 2u);
}

TEST(AiccaArchive, ZonalCountsRejectBadBandWidthAndSkipForeignLabels) {
  storage::MemFs fs("orion");
  write_labelled_file(fs, "aicca/a.ncl", 0,
                      {make_record(7, 10.0f, 0.5f, 5.0f),
                       make_record(1, 20.0f, 0.5f, 5.0f)});
  const auto archive = AiccaArchive::load(fs, "aicca/*.ncl");
  EXPECT_THROW(archive.zonal_class_counts(2, 0.0), std::invalid_argument);
  EXPECT_THROW(archive.zonal_class_counts(2, -15.0), std::invalid_argument);
  // Labels outside [0, num_classes) are skipped, not counted elsewhere.
  const auto zonal = archive.zonal_class_counts(2, 15.0);
  std::size_t total = 0;
  for (const auto& band : zonal)
    for (auto count : band) total += count;
  EXPECT_EQ(total, 1u);
}

TEST(AiccaArchive, OutOfRangeLabelsThrowFromHistogram) {
  storage::MemFs fs("orion");
  write_labelled_file(fs, "aicca/a.ncl", 0,
                      {make_record(5, 10.0f, 0.5f, 5.0f)});
  const auto archive = AiccaArchive::load(fs, "aicca/*.ncl");
  // num_classes too small for the stored label -> out_of_range; invalid
  // num_classes -> invalid_argument.
  EXPECT_THROW(archive.class_histogram(5), std::out_of_range);
  EXPECT_THROW(archive.class_histogram(-3), std::invalid_argument);
  EXPECT_NO_THROW(archive.class_histogram(6));
}

TEST(AiccaArchive, EmptyArchiveStatsAndReport) {
  storage::MemFs fs("orion");
  const auto archive = AiccaArchive::load(fs, "aicca/*.ncl");
  EXPECT_EQ(archive.tile_count(), 0u);
  EXPECT_EQ(archive.file_count(), 0u);
  EXPECT_TRUE(archive.class_stats().empty());
  const auto histogram = archive.class_histogram(42);
  for (auto count : histogram) EXPECT_EQ(count, 0u);
  const auto report = archive.report(42);
  EXPECT_NE(report.find("0 labelled tiles"), std::string::npos);
  const auto zonal = archive.zonal_class_counts(42);
  for (const auto& band : zonal)
    for (auto count : band) EXPECT_EQ(count, 0u);
}

}  // namespace
}  // namespace mfw::analysis
